//! Observability walkthrough: run the full pipeline with one shared
//! `MetricsRegistry`, drive a fig9-style closed-loop load, and dump the
//! resulting snapshot — per-stage serve latencies (cache resolve / embed /
//! ANN probe / rank), train-loop timings, cache hit accounting — as both
//! the human-readable table and the line-JSON the tooling consumes.
//!
//! Run with: `cargo run --release --example obs_report`

use std::sync::Arc;

use zoomer_core::data::TaobaoConfig;
use zoomer_core::obs::MetricsRegistry;
use zoomer_core::serving::{run_load, LoadTestSpec, Query};
use zoomer_core::train::TrainerConfig;
use zoomer_core::{PipelineConfig, ZoomerPipeline};

fn main() {
    let seed = 77;
    let registry = Arc::new(MetricsRegistry::enabled());

    println!("== Observability report (fig9-style closed loop) ==");
    let mut pipeline = ZoomerPipeline::new(PipelineConfig {
        data: TaobaoConfig {
            num_users: 300,
            num_queries: 300,
            num_items: 800,
            num_sessions: 2_500,
            ..TaobaoConfig::default_with_seed(seed)
        },
        trainer: TrainerConfig { epochs: 1, ..Default::default() },
        seed,
        metrics: Some(Arc::clone(&registry)),
        ..Default::default()
    });
    let report = pipeline.train();
    println!("trained to AUC {:.3} in {} steps", report.final_auc, report.steps);

    let requests: Vec<Query> =
        pipeline.data().logs.iter().take(2_000).map(|l| Query::new(l.user, l.query)).collect();
    let server = pipeline.into_server().expect("serving build");
    let warm: Vec<u32> = requests.iter().flat_map(|q| [q.user, q.query]).collect();
    server.warm_cache(&warm).expect("warm cache");

    let spec = LoadTestSpec::closed().num_threads(4).batch_size(16);
    let load = run_load(&server, &requests, &spec).expect("load run");
    println!(
        "\nclosed loop, batch 16: {} requests at {:.0} req/s (mean {:.3} ms)",
        load.completed,
        load.achieved_qps(),
        load.latency.mean_ms
    );
    println!("per-stage latency (ms per handle_batch call):");
    for stage in &load.stages {
        println!(
            "  {:<14} p50 {:.4}  p95 {:.4}  p99 {:.4}  ({} samples)",
            stage.stage, stage.p50_ms, stage.p95_ms, stage.p99_ms, stage.count
        );
    }

    // The full registry snapshot covers everything the run touched:
    // train.* from the training loop, serve.* and ann.* from the load,
    // cache.* ingested from the neighbor cache.
    let snapshot = server.metrics_snapshot();
    println!("\n-- snapshot (text) --\n{}", snapshot.to_text());
    println!("-- snapshot (line JSON) --\n{}", snapshot.to_json_lines());
}
