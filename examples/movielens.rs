//! MovieLens scenario (paper Table II): train Zoomer and the GNN baselines
//! on the user–tag–movie tri-partite graph with 1-hop aggregation and an
//! 80/20 split, reporting AUC / MAE / RMSE.
//!
//! Run with: `cargo run --release --example movielens`

use zoomer_core::data::{split_examples, MovieLensConfig, MovieLensData};
use zoomer_core::model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_core::tensor::seeded_rng;
use zoomer_core::train::eval::evaluate_auc;
use zoomer_core::train::{train, TrainerConfig};

fn main() {
    let seed = 25;
    println!("== MovieLens-style benchmark (Table II protocol) ==");
    let data = MovieLensData::generate(MovieLensConfig {
        seed,
        num_users: 400,
        num_movies: 500,
        num_tags: 40,
        ratings_per_user: 16,
        ..Default::default()
    });
    println!(
        "graph: {} users, {} tags, {} movies, {} examples",
        data.config.num_users,
        data.config.num_tags,
        data.config.num_movies,
        data.examples.len()
    );
    let split = split_examples(data.examples.clone(), 0.8, seed);
    let dense_dim = data.graph.features().dense_dim();

    println!("{:<10} {:>8} {:>8} {:>8}", "model", "AUC", "MAE", "RMSE");
    for preset in ["gce-gnn", "fgnn", "stamp", "mccf", "han", "zoomer"] {
        let mut config = ModelConfig::preset(preset, seed, dense_dim).expect("preset");
        config.hops = 1; // paper: MovieLens uses one-hop aggregation
        let mut model = UnifiedCtrModel::new(config);
        let _ = train(
            &mut model,
            &data.graph,
            &split,
            &TrainerConfig { epochs: 2, ..Default::default() },
        );
        let mut rng = seeded_rng(seed);
        let metrics = evaluate_auc(&mut model, &data.graph, &split.test, &mut rng);
        println!(
            "{:<10} {:>8.4} {:>8.4} {:>8.4}",
            model.name(),
            metrics.auc(),
            metrics.mae(),
            metrics.rmse()
        );
    }
}
