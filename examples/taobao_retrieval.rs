//! Taobao-style retrieval scenario: compare Zoomer against a focal-blind
//! baseline (GraphSAGE) on the same behavior graph, then inspect how the ROI
//! sampler narrows a user's neighborhood for two different intents — the
//! paper's Fig 2 story, reproduced on synthetic logs.
//!
//! Run with: `cargo run --release --example taobao_retrieval`

use zoomer_core::data::{split_examples, TaobaoConfig, TaobaoData};
use zoomer_core::model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_core::sampler::{FocalBiasedSampler, FocalContext, NeighborSampler};
use zoomer_core::tensor::seeded_rng;
use zoomer_core::train::{train, TrainerConfig};

fn main() {
    let seed = 7;
    println!("== Taobao retrieval: Zoomer vs GraphSAGE ==");
    let data = TaobaoData::generate(TaobaoConfig {
        num_users: 250,
        num_queries: 250,
        num_items: 500,
        num_sessions: 3_000,
        ..TaobaoConfig::default_with_seed(seed)
    });
    let split = split_examples(data.ctr_examples(), 0.9, seed);
    let dense_dim = data.graph.features().dense_dim();
    let trainer = TrainerConfig { epochs: 2, ..Default::default() };

    for preset in ["zoomer", "graphsage"] {
        let mut model =
            UnifiedCtrModel::new(ModelConfig::preset(preset, seed, dense_dim).expect("preset"));
        let report = train(&mut model, &data.graph, &split, &trainer);
        println!(
            "{:<10} sampler={:<18} AUC={:.4}  ({} steps, {:.1}s)",
            model.name(),
            model.sampler_name(),
            report.final_auc,
            report.steps,
            report.elapsed.as_secs_f64()
        );
    }

    // ROI inspection: the same user under two different query intents gets
    // two different regions of interest.
    println!("\n== ROI under shifting intents (Fig 2) ==");
    let user = data.logs[0].user;
    let sampler = FocalBiasedSampler::default();
    let mut rng = seeded_rng(seed);
    let mut previous: Option<Vec<u32>> = None;
    for log in data.logs.iter().filter(|l| l.user == user).take(2) {
        let focal = FocalContext::for_request(&data.graph, user, log.query);
        let roi = sampler.sample(&data.graph, user, &focal, 8, &mut rng);
        println!("query {:>5} → ROI neighbors {:?}", log.query, roi);
        if let Some(prev) = &previous {
            let overlap = roi.iter().filter(|n| prev.contains(n)).count();
            println!(
                "  overlap with previous intent: {overlap}/{} — the ROI follows the focal",
                roi.len()
            );
        }
        previous = Some(roi);
    }
}
