//! Distributed training scenario (paper §VI): train Zoomer with the
//! worker/parameter-server architecture — dense parameters hash-sharded
//! across PS shards with server-side Adam, multiple workers pulling and
//! pushing asynchronously — then checkpoint the result and restore it into a
//! fresh model.
//!
//! Run with: `cargo run --release --example distributed_training`

use zoomer_core::data::{split_examples, TaobaoConfig, TaobaoData};
use zoomer_core::model::{load_checkpoint, save_checkpoint, ModelConfig, UnifiedCtrModel};
use zoomer_core::tensor::seeded_rng;
use zoomer_core::train::eval::evaluate_auc;
use zoomer_core::train::ps::{train_distributed, PsTrainConfig};

fn main() {
    let seed = 61;
    println!("== Worker/PS distributed training ==");
    let data = TaobaoData::generate(TaobaoConfig {
        num_users: 250,
        num_queries: 250,
        num_items: 500,
        num_sessions: 2_500,
        ..TaobaoConfig::default_with_seed(seed)
    });
    let split = split_examples(data.ctr_examples(), 0.9, seed);
    let dd = data.graph.features().dense_dim();
    let model_config = ModelConfig::zoomer(seed, dd);

    for workers in [1usize, 4] {
        let config = PsTrainConfig { num_workers: workers, num_ps_shards: 4, epochs: 1, seed };
        let (mut model, report) = train_distributed(&model_config, &data.graph, &split, &config);
        let mut rng = seeded_rng(seed);
        let sample: Vec<_> = split.test.iter().copied().take(500).collect();
        let auc = evaluate_auc(&mut model, &data.graph, &sample, &mut rng).auc();
        println!(
            "{workers} worker(s): {} steps in {:.1}s ({:.0} steps/s), AUC {:.4}",
            report.steps,
            report.elapsed.as_secs_f64(),
            report.steps as f64 / report.elapsed.as_secs_f64().max(1e-9),
            auc
        );
        println!(
            "  PS shards hold {:?} params; pushes per shard {:?}",
            report.shard_param_counts, report.shard_push_counts
        );

        if workers == 4 {
            // Checkpoint the PS-trained model and restore into a fresh one.
            let bytes = save_checkpoint(&model);
            println!("  checkpoint: {} KiB", bytes.len() / 1024);
            let mut restored = UnifiedCtrModel::new(model_config.clone());
            load_checkpoint(&mut restored, &bytes).expect("restore");
            let mut rng = seeded_rng(seed);
            let auc2 = evaluate_auc(&mut restored, &data.graph, &sample, &mut rng).auc();
            println!("  restored-model AUC: {auc2:.4} (should match {auc:.4})");
        }
    }
}
