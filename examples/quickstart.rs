//! Quickstart: the whole Zoomer pipeline in ~30 lines.
//!
//! Generates a small Taobao-like behavior log, builds the heterogeneous
//! graph, trains the Zoomer model (focal-biased ROI sampling + multi-level
//! attention), evaluates AUC and HitRate@K, then serves a retrieval request.
//!
//! Run with: `cargo run --release --example quickstart`

use zoomer_core::data::TaobaoConfig;
use zoomer_core::serving::Query;
use zoomer_core::train::TrainerConfig;
use zoomer_core::{PipelineConfig, ZoomerPipeline};

fn main() {
    let seed = 42;
    let config = PipelineConfig {
        data: TaobaoConfig {
            num_users: 300,
            num_queries: 300,
            num_items: 600,
            num_sessions: 4_000,
            ..TaobaoConfig::default_with_seed(seed)
        },
        model_preset: "zoomer".to_string(),
        trainer: TrainerConfig { epochs: 2, ..Default::default() },
        seed,
        ..Default::default()
    };

    println!("== Zoomer quickstart (seed {seed}) ==");
    let mut pipeline = ZoomerPipeline::new(config);
    let stats = zoomer_core::graph::GraphStats::compute(&pipeline.data().graph);
    println!("graph: {}", stats.summary());
    println!(
        "examples: {} train / {} test",
        pipeline.split().train.len(),
        pipeline.split().test.len()
    );

    println!("training…");
    let report = pipeline.train();
    println!(
        "trained {} steps in {:.1}s ({:.0} steps/s), test AUC = {:.4}",
        report.steps,
        report.elapsed.as_secs_f64(),
        report.steps_per_sec(),
        report.final_auc
    );

    let eval = pipeline.evaluate(&[100, 200, 300]);
    println!("AUC  = {:.4}", eval.auc);
    for (k, hr) in &eval.hit_rates {
        println!("HitRate@{k} = {hr:.4}");
    }

    println!("standing up the online server…");
    let data_snapshot = pipeline.data().logs[0].clone();
    let server = pipeline.into_server().expect("serving build");
    let query = Query::new(data_snapshot.user, data_snapshot.query);
    let retrieved = &server.handle_batch(&[query]).expect("serve")[0].items;
    println!(
        "request (user {}, query {}) → {} items, first 5: {:?}",
        data_snapshot.user,
        data_snapshot.query,
        retrieved.len(),
        &retrieved[..5.min(retrieved.len())]
    );
}
