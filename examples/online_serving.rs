//! Online serving scenario (paper §VII-E): freeze a trained model, build the
//! ANN inverted index, warm the neighbor caches, and drive the server with an
//! open-loop load generator at increasing QPS — printing the latency curve
//! the paper plots in Fig 9.
//!
//! Run with: `cargo run --release --example online_serving`

use std::sync::Arc;

use zoomer_core::data::TaobaoConfig;
use zoomer_core::serving::{run_load, FrozenModel, LoadTestSpec, OnlineServer, ServingConfig};
use zoomer_core::train::TrainerConfig;
use zoomer_core::{PipelineConfig, ZoomerPipeline};

fn main() {
    let seed = 33;
    println!("== Online serving (Fig 9 protocol) ==");
    let mut pipeline = ZoomerPipeline::new(PipelineConfig {
        data: TaobaoConfig {
            num_users: 300,
            num_queries: 300,
            num_items: 800,
            num_sessions: 2_500,
            ..TaobaoConfig::default_with_seed(seed)
        },
        trainer: TrainerConfig { epochs: 1, ..Default::default() },
        seed,
        ..Default::default()
    });
    let report = pipeline.train();
    println!("trained to AUC {:.3}", report.final_auc);

    // Freeze and stand the server up by hand to show the pieces.
    let requests: Vec<(u32, u32)> =
        pipeline.data().logs.iter().take(400).map(|l| (l.user, l.query)).collect();
    let items = pipeline.data().item_nodes();
    let graph = Arc::new(
        zoomer_core::graph::read_snapshot(zoomer_core::graph::write_snapshot(
            &pipeline.data().graph,
        ))
        .expect("graph snapshot roundtrip"),
    );
    let frozen = FrozenModel::from_model(pipeline.model_mut(), &graph);
    let server = OnlineServer::builder()
        .graph(graph)
        .frozen(frozen)
        .item_pool(&items)
        .config(ServingConfig { cache_k: 30, top_k: 100, ..Default::default() })
        .seed(seed)
        .build()
        .expect("serving build");

    // Warm caches for the nodes the requests will touch (the paper's
    // asynchronous cache updating, done up front here).
    let warm: Vec<u32> = requests.iter().flat_map(|&(u, q)| [u, q]).collect();
    server.warm_cache(&warm).expect("warm cache");
    println!("warmed {} cache entries (k = 30)", server.cache().len());

    println!("\n{:>8} {:>10} {:>10} {:>10} {:>10}", "QPS", "mean ms", "p50 ms", "p95 ms", "p99 ms");
    for qps in [100.0, 500.0, 1000.0, 2000.0, 5000.0] {
        let report = run_load(&server, &requests, &LoadTestSpec::open(qps).num_threads(4))
            .expect("load run");
        let lat = &report.latency;
        println!(
            "{:>8.0} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            qps, lat.mean_ms, lat.p50_ms, lat.p95_ms, lat.p99_ms
        );
    }
    println!("\ncache hit rate: {:.1}%", server.cache().stats().hit_rate() * 100.0);
}
