//! Online serving scenario (paper §VII-E): freeze a trained model, build the
//! ANN inverted index, warm the neighbor caches, and drive the server with an
//! open-loop load generator at increasing QPS — printing the latency curve
//! the paper plots in Fig 9.
//!
//! Run with: `cargo run --release --example online_serving`

use std::sync::Arc;
use std::time::Duration;

use zoomer_core::data::TaobaoConfig;
use zoomer_core::graph::ShardingConfig;
use zoomer_core::serving::{
    run_load, BackendKind, FrozenModel, LoadTestSpec, OnlineServer, Query, ServingConfig,
    ShardedServer, ShedPolicy,
};
use zoomer_core::train::TrainerConfig;
use zoomer_core::{PipelineConfig, ZoomerPipeline};

fn main() {
    let seed = 33;
    println!("== Online serving (Fig 9 protocol) ==");
    let mut pipeline = ZoomerPipeline::new(PipelineConfig {
        data: TaobaoConfig {
            num_users: 300,
            num_queries: 300,
            num_items: 800,
            num_sessions: 2_500,
            ..TaobaoConfig::default_with_seed(seed)
        },
        trainer: TrainerConfig { epochs: 1, ..Default::default() },
        seed,
        ..Default::default()
    });
    let report = pipeline.train();
    println!("trained to AUC {:.3}", report.final_auc);

    // Freeze and stand the server up by hand to show the pieces.
    let requests: Vec<Query> =
        pipeline.data().logs.iter().take(400).map(|l| Query::new(l.user, l.query)).collect();
    let items = pipeline.data().item_nodes();
    let graph = Arc::new(
        zoomer_core::graph::read_snapshot(zoomer_core::graph::write_snapshot(
            &pipeline.data().graph,
        ))
        .expect("graph snapshot roundtrip"),
    );
    let frozen = FrozenModel::from_model(pipeline.model_mut(), &graph);
    let server = OnlineServer::builder()
        .graph(Arc::clone(&graph))
        .frozen(frozen)
        .item_pool(&items)
        .config(ServingConfig { cache_k: 30, top_k: 100, ..Default::default() })
        .seed(seed)
        .build()
        .expect("serving build");

    // Warm caches for the nodes the requests will touch (the paper's
    // asynchronous cache updating, done up front here).
    let warm: Vec<u32> = requests.iter().flat_map(|q| [q.user, q.query]).collect();
    server.warm_cache(&warm).expect("warm cache");
    println!("warmed {} cache entries (k = 30)", server.cache().len());

    println!("\n{:>8} {:>10} {:>10} {:>10} {:>10}", "QPS", "mean ms", "p50 ms", "p95 ms", "p99 ms");
    for qps in [100.0, 500.0, 1000.0, 2000.0, 5000.0] {
        let report = run_load(&server, &requests, &LoadTestSpec::open(qps).num_threads(4))
            .expect("load run");
        let lat = &report.latency;
        println!(
            "{:>8.0} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            qps, lat.mean_ms, lat.p50_ms, lat.p95_ms, lat.p99_ms
        );
    }
    println!("\ncache hit rate: {:.1}%", server.cache().stats().hit_rate() * 100.0);

    // Overload: the same pool offered far past capacity, but through a
    // bounded admission queue with a per-batch deadline armed. The server
    // sheds the excess and degrades instead of queueing without bound —
    // admitted requests stay near the budget, refusals are counted, and
    // nothing blocks or panics.
    println!("\n== Overload (bounded queue, 10 ms deadline) ==");
    let guarded = OnlineServer::builder()
        .graph(Arc::clone(&graph))
        .frozen(FrozenModel::from_model(pipeline.model_mut(), &graph))
        .item_pool(&items)
        .config(ServingConfig {
            cache_k: 30,
            top_k: 100,
            deadline: Some(Duration::from_millis(10)),
            ..Default::default()
        })
        .seed(seed)
        .build()
        .expect("serving build");
    guarded.warm_cache(&warm).expect("warm cache");
    let flood = LoadTestSpec::open(200_000.0)
        .num_threads(4)
        .batch_size(8)
        .queue_capacity(32)
        .shed(ShedPolicy::RejectNew);
    let report = run_load(&guarded, &requests, &flood).expect("overload run");
    println!(
        "offered {} | completed {} | shed {} ({:.1}%) | errors {} | degraded {}",
        report.offered,
        report.completed,
        report.shed,
        report.shed_rate() * 100.0,
        report.errors,
        report.degraded
    );
    println!(
        "admitted latency: p50 {:.3} ms, p99 {:.3} ms (budget 10 ms)",
        report.latency.p50_ms, report.latency.p99_ms
    );

    // Retrieval is pluggable: the same builder can serve from the relevance
    // proximity graph (beam search under the frozen relevance score) instead
    // of the default IVF index — only the config line changes.
    println!("\n== Proximity-graph backend ==");
    let proximity = OnlineServer::builder()
        .graph(Arc::clone(&graph))
        .frozen(FrozenModel::from_model(pipeline.model_mut(), &graph))
        .item_pool(&items)
        .config(ServingConfig {
            cache_k: 30,
            top_k: 100,
            backend: BackendKind::Proximity,
            graph_degree: 12,
            beam_width: 32,
            ..Default::default()
        })
        .seed(seed)
        .build()
        .expect("serving build");
    proximity.warm_cache(&warm).expect("warm cache");
    let report = run_load(&proximity, &requests, &LoadTestSpec::open(1000.0).num_threads(4))
        .expect("load run");
    println!(
        "backend {} | 1000 QPS: p50 {:.3} ms, p99 {:.3} ms",
        proximity.backend().kind().name(),
        report.latency.p50_ms,
        report.latency.p99_ms
    );

    // Memory-tier serving: the quantized backend stores the scan-side item
    // embeddings as int8 codes (4x smaller than f32), probes the same IVF
    // lists, and re-ranks a `rerank_factor x top_k` shortlist with exact
    // f32 dots — so recall matches the f32 index at equal nprobe while the
    // store that dominates billion-tier memory shrinks 4x.
    println!("\n== Int8-quantized backend ==");
    let quantized = OnlineServer::builder()
        .graph(Arc::clone(&graph))
        .frozen(FrozenModel::from_model(pipeline.model_mut(), &graph))
        .item_pool(&items)
        .config(ServingConfig {
            cache_k: 30,
            top_k: 100,
            backend: BackendKind::Quantized,
            rerank_factor: 4,
            ..Default::default()
        })
        .seed(seed)
        .build()
        .expect("serving build");
    quantized.warm_cache(&warm).expect("warm cache");
    if let Some(q) = quantized.backend().as_quantized() {
        let mem = q.memory_footprint();
        println!(
            "scan store: {} B codes (+{} B params) vs {} B f32 rerank rows ({:.1}x smaller)",
            mem.code_bytes,
            mem.param_bytes,
            mem.rerank_bytes,
            mem.compression_ratio()
        );
    }
    let report = run_load(&quantized, &requests, &LoadTestSpec::open(1000.0).num_threads(4))
        .expect("load run");
    println!(
        "backend {} | 1000 QPS: p50 {:.3} ms, p99 {:.3} ms",
        quantized.backend().kind().name(),
        report.latency.p50_ms,
        report.latency.p99_ms
    );

    // Scatter-gather: the same builder, one more config line, and the item
    // pool splits across shard-local indexes behind a merging router. A
    // `ShardedServer` serves the same `handle_batch` contract (bit-identical
    // at one shard — see `tests/sharded_equivalence.rs`), so the load
    // harness drives it through the same `QueryService` entry point. The
    // TCP front door over this tier is the `zoomer-serve` binary.
    println!("\n== Sharded scatter-gather (4 shards x 2 replicas) ==");
    let sharded = ShardedServer::build(
        OnlineServer::builder()
            .graph(Arc::clone(&graph))
            .frozen(FrozenModel::from_model(pipeline.model_mut(), &graph))
            .item_pool(&items)
            .config(ServingConfig {
                cache_k: 30,
                top_k: 100,
                sharding: ShardingConfig { num_shards: 4, replicas_per_shard: 2 },
                ..Default::default()
            })
            .seed(seed),
    )
    .expect("sharded build");
    sharded.warm_cache(&warm).expect("warm cache");
    let report = run_load(&sharded, &requests, &LoadTestSpec::open(1000.0).num_threads(4))
        .expect("load run");
    println!(
        "{} shards | 1000 QPS: p50 {:.3} ms, p99 {:.3} ms",
        sharded.num_shards(),
        report.latency.p50_ms,
        report.latency.p99_ms
    );
}
