//! End-to-end integration: logs → graph → training → evaluation → frozen
//! snapshot → ANN serving, across every crate in the workspace.

use std::sync::Arc;

use zoomer_core::data::{TaobaoConfig, TaobaoData};
use zoomer_core::graph::{read_snapshot, write_snapshot, GraphStats, NodeType};
use zoomer_core::serving::{FrozenModel, OnlineServer, Query, ServingConfig};
use zoomer_core::train::TrainerConfig;
use zoomer_core::{PipelineConfig, ZoomerPipeline};

fn tiny_pipeline(seed: u64) -> ZoomerPipeline {
    ZoomerPipeline::new(PipelineConfig {
        data: TaobaoConfig::tiny(seed),
        trainer: TrainerConfig { epochs: 1, eval_sample: 150, ..Default::default() },
        seed,
        ..Default::default()
    })
}

#[test]
fn full_pipeline_trains_and_serves() {
    let mut pipeline = tiny_pipeline(201);
    let stats = GraphStats::compute(&pipeline.data().graph);
    assert!(stats.num_nodes > 0 && stats.num_edges > 0);

    let report = pipeline.train();
    assert!(report.steps > 0);
    assert!(report.final_auc > 0.45, "AUC collapsed: {}", report.final_auc);

    let eval = pipeline.evaluate(&[10, 40]);
    assert!(eval.auc > 0.45);
    assert!(eval.hit_rates[0].1 <= eval.hit_rates[1].1);

    let request = pipeline.data().logs[0].clone();
    let server = pipeline.into_server().expect("serving build");
    let retrieved = server.handle_batch(&[Query::new(request.user, request.query)]).expect("serve");
    assert!(!retrieved[0].items.is_empty());
}

#[test]
fn graph_survives_snapshot_into_serving() {
    // Build data, snapshot the graph to bytes, reload, and serve from the
    // reloaded copy — the ODPS → HDFS → graph-engine handoff of §VI.
    let data = TaobaoData::generate(TaobaoConfig::tiny(202));
    let bytes = write_snapshot(&data.graph);
    let reloaded = read_snapshot(bytes).expect("snapshot readable");
    assert_eq!(reloaded.num_nodes(), data.graph.num_nodes());
    assert_eq!(reloaded.num_edges(), data.graph.num_edges());

    let dd = reloaded.features().dense_dim();
    let mut model =
        zoomer_core::model::UnifiedCtrModel::new(zoomer_core::model::ModelConfig::zoomer(202, dd));
    let frozen = FrozenModel::from_model(&mut model, &reloaded);
    let items = data.item_nodes();
    let server = OnlineServer::builder()
        .graph(Arc::new(reloaded))
        .frozen(frozen)
        .item_pool(&items)
        .config(ServingConfig::default())
        .seed(202)
        .build()
        .expect("serving build");
    let log = &data.logs[0];
    let result = &server.handle_batch(&[Query::new(log.user, log.query)]).expect("serve")[0];
    assert!(!result.items.is_empty());
    for &item in &result.items {
        assert_eq!(data.graph.node_type(item), NodeType::Item);
    }
}

#[test]
fn pipeline_metrics_cover_training_and_serving() {
    use zoomer_core::obs::MetricsRegistry;

    let registry = Arc::new(MetricsRegistry::enabled());
    let mut pipeline = ZoomerPipeline::new(PipelineConfig {
        data: TaobaoConfig::tiny(205),
        trainer: TrainerConfig { epochs: 1, eval_sample: 100, ..Default::default() },
        seed: 205,
        metrics: Some(Arc::clone(&registry)),
        ..Default::default()
    });
    let report = pipeline.train();
    let request = pipeline.data().logs[0].clone();
    let server = pipeline.into_server().expect("serving build");
    let _ = server.handle_batch(&[Query::new(request.user, request.query)]).expect("serve");

    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("train.steps"), Some(report.steps as u64), "train loop recorded");
    assert!(snap.histogram("train.step_ns").is_some_and(|h| h.count > 0));
    assert_eq!(snap.counter("serve.requests"), Some(1));
    for stage in
        ["serve.stage.cache_resolve_ns", "serve.stage.embed_ns", "serve.stage.ann_probe_ns"]
    {
        let hist = snap.histogram(stage).unwrap_or_else(|| panic!("{stage} missing"));
        assert_eq!(hist.count, 1, "{stage} timed once");
    }
}

#[test]
fn retrieval_results_are_items_only_and_deterministic() {
    let mut pipeline = tiny_pipeline(203);
    let _ = pipeline.train();
    let log = pipeline.data().logs[5].clone();
    let server = pipeline.into_server().expect("serving build");
    let a = server.handle_batch(&[Query::new(log.user, log.query)]).expect("serve");
    let b = server.handle_batch(&[Query::new(log.user, log.query)]).expect("serve");
    assert_eq!(a, b, "same request must return the same ranking");
}

#[test]
fn movielens_pipeline_spans_crates() {
    use zoomer_core::data::{split_examples, MovieLensConfig, MovieLensData};
    use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
    use zoomer_core::train::{train, TrainerConfig};

    let data = MovieLensData::generate(MovieLensConfig::tiny(204));
    let split = split_examples(data.examples.clone(), 0.8, 204);
    let dd = data.graph.features().dense_dim();
    let mut config = ModelConfig::zoomer(204, dd);
    config.hops = 1;
    let mut model = UnifiedCtrModel::new(config);
    let report = train(
        &mut model,
        &data.graph,
        &split,
        &TrainerConfig { epochs: 1, eval_sample: 150, ..Default::default() },
    );
    assert!(report.final_auc > 0.45, "MovieLens AUC collapsed: {}", report.final_auc);
}
