//! Cross-crate property-based tests: invariants that must hold on *random*
//! graphs, weights, and term sets — not just hand-built fixtures.

use proptest::prelude::*;
use zoomer_graph::{
    read_snapshot, write_snapshot, AliasTable, EdgeType, GraphBuilder, HeteroGraph, MinHasher,
    NodeType,
};
use zoomer_sampler::{build_roi, FocalBiasedSampler, FocalContext, UniformSampler};
use zoomer_tensor::seeded_rng;

/// Build a random heterogeneous graph from proptest-drawn structure.
fn random_graph(n_nodes: usize, edges: &[(usize, usize)], seed: u64) -> HeteroGraph {
    let mut rng = seeded_rng(seed);
    let mut b = GraphBuilder::new(4);
    use rand::Rng;
    for i in 0..n_nodes {
        let ty = match i % 3 {
            0 => NodeType::User,
            1 => NodeType::Query,
            _ => NodeType::Item,
        };
        let dense: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let fields: Vec<u32> = (0..(i % 4)).map(|f| f as u32 * 7).collect();
        let terms: Vec<u32> = (0..(i % 5)).map(|t| t as u32 + i as u32).collect();
        b.add_node(ty, fields, terms, &dense);
    }
    for &(s, d) in edges {
        let et = match (s + d) % 3 {
            0 => EdgeType::Click,
            1 => EdgeType::Session,
            _ => EdgeType::Similarity,
        };
        b.add_undirected_edge(
            (s % n_nodes) as u32,
            (d % n_nodes) as u32,
            et,
            rng.gen_range(0.1..2.0),
        );
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_roundtrip_on_random_graphs(
        n in 1usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..120),
        seed in 0u64..1000,
    ) {
        let g = random_graph(n, &edges, seed);
        let g2 = read_snapshot(write_snapshot(&g)).expect("roundtrip");
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for node in 0..g.num_nodes() as u32 {
            prop_assert_eq!(g2.node_type(node), g.node_type(node));
            prop_assert_eq!(g2.dense_feature(node), g.dense_feature(node));
            for et in EdgeType::ALL {
                prop_assert_eq!(g2.neighbors(node, et), g.neighbors(node, et));
            }
        }
    }

    #[test]
    fn alias_table_matches_weights(
        weights in prop::collection::vec(0.0f32..10.0, 1..12),
        seed in 0u64..100,
    ) {
        let total: f32 = weights.iter().sum();
        prop_assume!(total > 0.1);
        let table = AliasTable::new(&weights);
        let mut rng = seeded_rng(seed);
        let draws = 30_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = (w / total) as f64;
            let observed = counts[i] as f64 / draws as f64;
            prop_assert!(
                (expected - observed).abs() < 0.03,
                "outcome {i}: expected {expected:.3}, got {observed:.3}"
            );
        }
    }

    #[test]
    fn roi_invariants_on_random_graphs(
        n in 2usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30), 1..80),
        hops in 0usize..3,
        k in 1usize..6,
        seed in 0u64..500,
    ) {
        let g = random_graph(n, &edges, seed);
        let ego = (seed as usize % n) as u32;
        let focal = FocalContext::from_nodes(&g, &[ego]);
        let mut rng = seeded_rng(seed);
        for sampler in [&FocalBiasedSampler::default() as &dyn zoomer_sampler::NeighborSampler, &UniformSampler] {
            let roi = build_roi(&g, ego, &focal, sampler, hops, k, &mut rng);
            prop_assert_eq!(roi.id, ego);
            prop_assert!(roi.depth() <= hops);
            // Size bound: Σ k^i for i in 0..=hops.
            let bound: usize = (0..=hops).map(|i| k.pow(i as u32)).sum();
            prop_assert!(roi.size() <= bound, "size {} > bound {bound}", roi.size());
            for id in roi.node_ids() {
                prop_assert!((id as usize) < n, "ROI contains invalid node {id}");
            }
        }
    }

    #[test]
    fn minhash_tracks_exact_jaccard(
        a in prop::collection::hash_set(0u32..200, 1..40),
        b in prop::collection::hash_set(0u32..200, 1..40),
    ) {
        let hasher = MinHasher::new(256, 7);
        let av: Vec<u32> = { let mut v: Vec<u32> = a.iter().copied().collect(); v.sort_unstable(); v };
        let bv: Vec<u32> = { let mut v: Vec<u32> = b.iter().copied().collect(); v.sort_unstable(); v };
        let exact = zoomer_tensor::similarity::jaccard_exact(
            &av.iter().map(|&x| x as u64).collect::<Vec<_>>(),
            &bv.iter().map(|&x| x as u64).collect::<Vec<_>>(),
        );
        let est = MinHasher::estimate_jaccard(&hasher.signature(&av), &hasher.signature(&bv));
        prop_assert!((est - exact).abs() < 0.15, "est {est:.3} vs exact {exact:.3}");
    }

    #[test]
    fn focal_sampler_never_exceeds_k_or_duplicates(
        n in 2usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 1..60),
        k in 1usize..8,
        seed in 0u64..200,
    ) {
        let g = random_graph(n, &edges, seed);
        let ego = (seed as usize % n) as u32;
        let focal = FocalContext::from_nodes(&g, &[ego]);
        let mut rng = seeded_rng(seed);
        use zoomer_sampler::NeighborSampler;
        for sampler in [FocalBiasedSampler::default(), FocalBiasedSampler::stochastic(0.3)] {
            let picked = sampler.sample(&g, ego, &focal, k, &mut rng);
            prop_assert!(picked.len() <= k);
            let mut dedup = picked.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), picked.len(), "duplicates in sample");
        }
    }
}
