//! Matrix test: every model preset × real generated data. Each preset must
//! train without numeric blowups, emit probabilities, and expose working
//! tower embeddings.

use zoomer_core::data::{split_examples, TaobaoConfig, TaobaoData};
use zoomer_core::model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_core::tensor::seeded_rng;

const PRESETS: [&str; 16] = [
    "zoomer",
    "gcn",
    "zoomer-fe",
    "zoomer-fs",
    "zoomer-es",
    "graphsage",
    "gat",
    "han",
    "pinsage",
    "pinnersage",
    "pixie",
    "stamp",
    "gce-gnn",
    "fgnn",
    "mccf",
    "multisage",
];

#[test]
fn every_preset_trains_and_predicts() {
    let data = TaobaoData::generate(TaobaoConfig::tiny(301));
    let split = split_examples(data.ctr_examples(), 0.9, 301);
    let dd = data.graph.features().dense_dim();
    for preset in PRESETS {
        let mut model = UnifiedCtrModel::new(ModelConfig::preset(preset, 301, dd).expect("preset"));
        let mut rng = seeded_rng(301);
        let mut losses = Vec::new();
        for ex in split.train.iter().take(60) {
            let loss = model.train_step(&data.graph, ex, &mut rng);
            assert!(loss.is_finite(), "{preset}: non-finite loss");
            losses.push(loss);
        }
        for ex in split.test.iter().take(20) {
            let p = model.predict(&data.graph, ex, &mut rng);
            assert!((0.0..=1.0).contains(&p), "{preset}: p = {p}");
        }
        let ex = split.test[0];
        let uq = model.uq_embedding(&data.graph, ex.user, ex.query, &mut rng);
        let item = model.item_embedding(&data.graph, ex.item);
        assert_eq!(uq.len(), model.config().embed_dim, "{preset}");
        assert_eq!(item.len(), model.config().embed_dim, "{preset}");
        assert!(uq.iter().all(|x| x.is_finite()), "{preset}: uq has NaN");
    }
}

#[test]
fn fanout_sweep_runs_for_sampler_equipped_models() {
    // Fig 11 sweeps K; every sampler-equipped method must accept any K.
    let data = TaobaoData::generate(TaobaoConfig::tiny(302));
    let split = split_examples(data.ctr_examples(), 0.9, 302);
    let dd = data.graph.features().dense_dim();
    for preset in ["zoomer", "graphsage", "pinsage", "pinnersage", "pixie"] {
        for k in [1, 5, 30] {
            let mut model =
                UnifiedCtrModel::new(ModelConfig::preset(preset, 302, dd).expect("preset"));
            model.set_fanout(k);
            let mut rng = seeded_rng(302);
            for ex in split.train.iter().take(10) {
                let loss = model.train_step(&data.graph, ex, &mut rng);
                assert!(loss.is_finite(), "{preset} k={k}");
            }
        }
    }
}

#[test]
fn zoomer_one_hop_matches_movielens_protocol() {
    let data = TaobaoData::generate(TaobaoConfig::tiny(303));
    let split = split_examples(data.ctr_examples(), 0.9, 303);
    let dd = data.graph.features().dense_dim();
    let mut config = ModelConfig::zoomer(303, dd);
    config.hops = 1;
    let mut model = UnifiedCtrModel::new(config);
    let mut rng = seeded_rng(303);
    for ex in split.train.iter().take(30) {
        assert!(model.train_step(&data.graph, ex, &mut rng).is_finite());
    }
}

#[test]
fn training_is_deterministic_given_seeds() {
    let data = TaobaoData::generate(TaobaoConfig::tiny(304));
    let split = split_examples(data.ctr_examples(), 0.9, 304);
    let dd = data.graph.features().dense_dim();
    let run = || {
        let mut model =
            UnifiedCtrModel::new(ModelConfig::preset("zoomer", 304, dd).expect("preset"));
        let mut rng = seeded_rng(304);
        split
            .train
            .iter()
            .take(40)
            .map(|ex| model.train_step(&data.graph, ex, &mut rng))
            .collect::<Vec<f32>>()
    };
    assert_eq!(run(), run(), "identical seeds must give identical losses");
}
