#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
# Run from the repo root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== zoomer-lint (panic-freedom gate, hard failure) =="
cargo run --release --offline -q -p zoomer-lint

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace --offline -q

echo "== fault-injection suite (overload, degraded modes, injected panics) =="
cargo test --offline -q -p zoomer-serving --test fault_injection

echo "== backend parity suite (IVF bit-identity, three-backend equivalence) =="
cargo test --offline -q -p zoomer-serving --test backend_parity

echo "== kernel bench (smoke mode: every kernel executes, baseline file untouched) =="
ZOOMER_BENCH_SCALE=smoke cargo bench --offline -q -p zoomer-bench --bench kernels

echo "== observability overhead bench (smoke mode: gating exercised, budget advisory) =="
ZOOMER_BENCH_SCALE=smoke cargo bench --offline -q -p zoomer-bench --bench obs_overhead

echo "CI OK"
