#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
# Run from the repo root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release (matches the tier-1 verify command) =="
cargo build --release --offline -q

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== zoomer-lint (panic-freedom + cross-file concurrency gate, hard failure) =="
# Both phases run here: per-file rules (L001-L005) and the cross-file
# concurrency/contract pass (L006-L009, metrics manifest, baseline). The
# machine-readable report is kept as a CI artifact; human lines go to
# stderr so the log still shows any findings.
cargo run --release --offline -q -p zoomer-lint -- --json . > lint-report.json

echo "== cargo clippy (workspace, all targets, deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace, ci profile: overflow-checks + debug assertions) =="
cargo test --workspace --offline -q --profile ci

echo "== fault-injection suite (overload, degraded modes, injected panics) =="
cargo test --offline -q -p zoomer-serving --test fault_injection --profile ci

echo "== backend parity suite (IVF bit-identity, three-backend equivalence) =="
cargo test --offline -q -p zoomer-serving --test backend_parity --profile ci

echo "== snapshot round-trip suite (v1 + zero-copy v2, corruption rejection) =="
cargo test --offline -q -p zoomer-graph --profile ci snapshot

echo "== quantized retrieval suite (int8 kernels + rerank recall parity) =="
cargo test --offline -q -p zoomer-tensor --profile ci quant
cargo test --offline -q -p zoomer-serving --profile ci quantized

echo "== wire protocol suite (header/batch round-trips, malformed-frame rejection) =="
cargo test --offline -q -p zoomer-serving --test wire_roundtrip --profile ci

echo "== sharded equivalence suite (N=1 bit-identity, merge recovery, reply loss) =="
cargo test --offline -q -p zoomer-serving --test sharded_equivalence --profile ci

echo "== front door suite (TCP round-trip, tenant fairness, connection cap) =="
cargo test --offline -q -p zoomer-serving --test front_door --profile ci

echo "== brownout ladder suite (rung domination proptest, per-rung counters) =="
cargo test --offline -q -p zoomer-serving --test brownout_ladder --profile ci

echo "== DOI cache suite (tiered eviction, adversarial scans, shed-refresh retry) =="
cargo test --offline -q -p zoomer-serving --profile ci cache

echo "== zoomer-serve loopback smoke (spawn, scatter a batch over TCP, assert merged top-k) =="
cargo build --release --offline -q --bin zoomer-serve
./target/release/zoomer-serve --smoke --users 60 --items 120 --sessions 300 --shards 4

echo "== kernel bench (smoke mode: every kernel executes, baseline file untouched) =="
ZOOMER_BENCH_SCALE=smoke cargo bench --offline -q -p zoomer-bench --bench kernels

echo "== observability overhead bench (smoke mode: gating exercised, budget advisory) =="
ZOOMER_BENCH_SCALE=smoke cargo bench --offline -q -p zoomer-bench --bench obs_overhead

echo "== backends bench (smoke mode: recall/latency harness executes, baseline untouched) =="
ZOOMER_BENCH_SCALE=smoke cargo bench --offline -q -p zoomer-bench --bench backends

echo "CI OK"
