//! `zoomer-serve` — the sharded scatter-gather retrieval server behind a
//! real TCP front door.
//!
//! ```text
//! zoomer-serve --addr 127.0.0.1:7470 --shards 4 --replicas 2   # serve forever
//! zoomer-serve --smoke                                          # loopback self-test
//! ```
//!
//! The server regenerates its dataset from `--seed` (deterministic, same
//! as the `zoomer` CLI), partitions the item pool across `--shards`
//! scatter-gather shards, and speaks the length-prefixed binary protocol
//! in `zoomer_serving::wire` (see DESIGN.md § "Sharded serving & wire
//! protocol"). `--tenant-capacity` bounds admissions per fairness window;
//! 0 disables shedding.
//!
//! `--smoke` binds an ephemeral loopback port, round-trips a batch through
//! a real socket, and cross-checks the reply against the in-process answer
//! — the CI gate that the wire path and the serving path cannot drift.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use zoomer_core::data::{TaobaoConfig, TaobaoData};
use zoomer_core::graph::ShardingConfig;
use zoomer_core::model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_core::obs::MetricsRegistry;
use zoomer_core::serving::{
    FrontDoor, OnlineServer, Query, ResponseStatus, ServingConfig, ShardedServer, WireClient,
    DEFAULT_MAX_CONNS,
};

fn usage() -> &'static str {
    "usage: zoomer-serve [options]\n\
     options:\n\
       --addr HOST:PORT       listen address (default 127.0.0.1:7470)\n\
       --seed S               dataset/model seed (default 42)\n\
       --users N --items N    dataset size (defaults 500 / 1000)\n\
       --sessions N           behavior logs to generate (default 4000)\n\
       --shards N             scatter-gather shards (default 4)\n\
       --replicas N           worker threads per shard (default 2)\n\
       --tenant-capacity N    fair-admission window capacity, 0 = off (default 0)\n\
       --max-conns N          concurrent connection cap, 0 = off (default 1024)\n\
       --smoke                loopback self-test: serve, dial, verify, exit"
}

struct Opts {
    addr: String,
    seed: u64,
    users: usize,
    items: usize,
    sessions: usize,
    shards: usize,
    replicas: usize,
    tenant_capacity: usize,
    max_conns: usize,
    smoke: bool,
}

fn parse(argv: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        addr: "127.0.0.1:7470".to_string(),
        seed: 42,
        users: 500,
        items: 1000,
        sessions: 4000,
        shards: 4,
        replicas: 2,
        tenant_capacity: 0,
        max_conns: DEFAULT_MAX_CONNS,
        smoke: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        if key == "--smoke" {
            opts.smoke = true;
            i += 1;
            continue;
        }
        let value = argv.get(i + 1).ok_or_else(|| format!("missing value for {key}"))?;
        let int = |v: &str| v.parse::<usize>().map_err(|_| format!("{key} expects an integer"));
        match key {
            "--addr" => opts.addr = value.clone(),
            "--seed" => {
                opts.seed = value.parse().map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--users" => opts.users = int(value)?,
            "--items" => opts.items = int(value)?,
            "--sessions" => opts.sessions = int(value)?,
            "--shards" => opts.shards = int(value)?,
            "--replicas" => opts.replicas = int(value)?,
            "--tenant-capacity" => opts.tenant_capacity = int(value)?,
            "--max-conns" => opts.max_conns = int(value)?,
            _ => return Err(format!("unknown option {key}\n{}", usage())),
        }
        i += 2;
    }
    Ok(opts)
}

fn build(opts: &Opts) -> Result<(Arc<ShardedServer>, Vec<Query>), String> {
    let data = TaobaoData::generate(TaobaoConfig {
        num_users: opts.users,
        num_items: opts.items,
        num_sessions: opts.sessions,
        ..TaobaoConfig::default_with_seed(opts.seed)
    });
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(opts.seed, dd));
    let frozen = model.freeze(&data.graph);
    let items = data.item_nodes();
    let sample: Vec<Query> =
        data.logs.iter().take(32).map(|l| Query::new(l.user, l.query)).collect();
    let builder = OnlineServer::builder()
        .graph(Arc::new(data.graph))
        .frozen(frozen)
        .item_pool(&items)
        .config(ServingConfig {
            sharding: ShardingConfig { num_shards: opts.shards, replicas_per_shard: opts.replicas },
            ..ServingConfig::default()
        })
        .seed(opts.seed)
        .metrics(Arc::new(MetricsRegistry::enabled()));
    let server = ShardedServer::build(builder).map_err(|e| format!("build server: {e}"))?;
    Ok((Arc::new(server), sample))
}

/// Loopback self-test: serve on an ephemeral port, dial it, and verify the
/// socket answer matches the in-process answer row for row.
fn smoke(opts: &Opts) -> Result<(), String> {
    let (server, sample) = build(opts)?;
    let door = Arc::new(
        FrontDoor::new(Arc::clone(&server), opts.tenant_capacity).with_max_conns(opts.max_conns),
    );
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| format!("local addr: {e}"))?;
    let accept_door = Arc::clone(&door);
    std::thread::spawn(move || accept_door.serve(listener));

    let mut client = WireClient::connect(&addr.to_string()).map_err(|e| format!("dial: {e}"))?;
    let rows = client.retrieve(&sample, 0).map_err(|e| format!("retrieve: {e}"))?;
    let direct = server.handle_batch(&sample).map_err(|e| format!("direct serve: {e}"))?;
    if rows.len() != sample.len() {
        return Err(format!("smoke: sent {} queries, got {} rows", sample.len(), rows.len()));
    }
    for (i, (row, want)) in rows.iter().zip(&direct).enumerate() {
        if row.status != ResponseStatus::Ok {
            return Err(format!("smoke: row {i} was shed with the gate disabled"));
        }
        if &row.retrieval != want {
            return Err(format!("smoke: row {i} diverged from the in-process answer"));
        }
    }
    println!(
        "smoke ok: {} rows over {} ({} shards × {} replicas)",
        rows.len(),
        addr,
        opts.shards,
        opts.replicas
    );
    Ok(())
}

fn serve(opts: &Opts) -> Result<(), String> {
    let (server, _) = build(opts)?;
    let door = FrontDoor::new(server, opts.tenant_capacity).with_max_conns(opts.max_conns);
    let listener = TcpListener::bind(&opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    println!(
        "zoomer-serve listening on {} ({} shards × {} replicas, tenant capacity {})",
        opts.addr, opts.shards, opts.replicas, opts.tenant_capacity
    );
    door.serve(listener);
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&argv) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let run = if opts.smoke { smoke(&opts) } else { serve(&opts) };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("zoomer-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
