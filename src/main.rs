//! `zoomer` — command-line front end for the Zoomer reproduction.
//!
//! ```text
//! zoomer generate --sessions 5000 --out graph.bin     # behavior logs → graph snapshot
//! zoomer inspect --graph graph.bin                    # graph statistics
//! zoomer train   --preset zoomer --steps 20000 \
//!                --checkpoint model.ckpt              # train + checkpoint
//! zoomer serve   --checkpoint model.ckpt --requests 500 --qps 1000 --batch 16
//! zoomer presets                                      # list model presets
//! ```
//!
//! The CLI regenerates the dataset from `--seed` (deterministic), so the
//! graph snapshot and checkpoint are all the state that needs to move
//! between invocations.

use std::process::ExitCode;
use std::sync::Arc;

use zoomer_core::data::{split_examples, TaobaoConfig, TaobaoData};
use zoomer_core::graph::{read_snapshot, write_snapshot, GraphStats};
use zoomer_core::model::{
    load_checkpoint, save_checkpoint, CtrModel, ModelConfig, UnifiedCtrModel,
};
use zoomer_core::obs::MetricsRegistry;
use zoomer_core::serving::{
    run_load, FrozenModel, LoadTestSpec, OnlineServer, Query, ServingConfig,
};
use zoomer_core::train::{train, TrainerConfig};

const PRESETS: &[&str] = &[
    "zoomer",
    "gcn",
    "zoomer-fe",
    "zoomer-fs",
    "zoomer-es",
    "graphsage",
    "gat",
    "han",
    "pinsage",
    "pinnersage",
    "pixie",
    "stamp",
    "gce-gnn",
    "fgnn",
    "mccf",
    "multisage",
];

fn usage() -> &'static str {
    "usage: zoomer <command> [options]\n\
     commands:\n\
       generate  --sessions N --users N --items N --seed S --out FILE\n\
       inspect   --graph FILE\n\
       train     --preset NAME --steps N --seed S [--checkpoint FILE]\n\
       serve     --seed S [--checkpoint FILE] --requests N --qps Q [--batch B]\n\
       presets\n\
     run `cargo doc --open` for the library API."
}

/// Minimal `--key value` parser (keeps the dependency set lean).
struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = &argv[i];
            if !key.starts_with("--") {
                return Err(format!("unexpected argument {key:?}"));
            }
            let value = argv.get(i + 1).ok_or_else(|| format!("missing value for {key}"))?;
            pairs.push((key[2..].to_string(), value.clone()));
            i += 2;
        }
        Ok(Self { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer, got {v:?}")),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer, got {v:?}")),
        }
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got {v:?}")),
        }
    }
}

fn data_config(args: &Args) -> Result<TaobaoConfig, String> {
    let seed = args.get_u64("seed", 42)?;
    Ok(TaobaoConfig {
        num_users: args.get_usize("users", 500)?,
        num_queries: args.get_usize("queries", 500)?,
        num_items: args.get_usize("items", 1000)?,
        num_sessions: args.get_usize("sessions", 4000)?,
        ..TaobaoConfig::default_with_seed(seed)
    })
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.get("out").unwrap_or("graph.bin").to_string();
    let data = TaobaoData::generate(data_config(args)?);
    let stats = GraphStats::compute(&data.graph);
    println!("{}", stats.summary());
    let bytes = write_snapshot(&data.graph);
    std::fs::write(&out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    println!("snapshot written to {out} ({} KiB)", bytes.len() / 1024);
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let path = args.get("graph").ok_or("--graph FILE required")?;
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let graph = read_snapshot(bytes.into()).map_err(|e| format!("parse {path}: {e}"))?;
    let stats = GraphStats::compute(&graph);
    println!("{}", stats.summary());
    println!("degree histogram (power-of-two buckets): {:?}", stats.degree_histogram);
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let preset = args.get("preset").unwrap_or("zoomer");
    if !PRESETS.contains(&preset) {
        return Err(format!("unknown preset {preset:?}; run `zoomer presets`"));
    }
    let seed = args.get_u64("seed", 42)?;
    let steps = args.get_usize("steps", 10_000)?;
    let data = TaobaoData::generate(data_config(args)?);
    let split = split_examples(data.ctr_examples(), 0.9, seed);
    let dd = data.graph.features().dense_dim();
    let config = ModelConfig::preset(preset, seed, dd).expect("validated above");
    let mut model = UnifiedCtrModel::new(config);
    println!(
        "training {} ({} sampler) for {} steps on {} examples…",
        model.name(),
        model.sampler_name(),
        steps,
        split.train.len()
    );
    let report = train(
        &mut model,
        &data.graph,
        &split,
        &TrainerConfig { epochs: 1, max_steps_per_epoch: Some(steps), seed, ..Default::default() },
    );
    println!(
        "done: {} steps in {:.1}s ({:.0} steps/s), test AUC = {:.4}",
        report.steps,
        report.elapsed.as_secs_f64(),
        report.steps_per_sec(),
        report.final_auc
    );
    if let Some(path) = args.get("checkpoint") {
        let bytes = save_checkpoint(&model);
        std::fs::write(path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
        println!("checkpoint written to {path} ({} KiB)", bytes.len() / 1024);
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let seed = args.get_u64("seed", 42)?;
    let requests = args.get_usize("requests", 500)?;
    let qps = args.get_f64("qps", 1000.0)?;
    let batch = args.get_usize("batch", 1)?;
    if batch == 0 {
        return Err("--batch must be at least 1".to_string());
    }
    let data = TaobaoData::generate(data_config(args)?);
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, dd));
    if let Some(path) = args.get("checkpoint") {
        let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        load_checkpoint(&mut model, &bytes).map_err(|e| format!("load {path}: {e}"))?;
        println!("restored checkpoint from {path}");
    } else {
        println!("no --checkpoint given: serving an untrained model");
    }
    let items = data.item_nodes();
    let graph =
        Arc::new(read_snapshot(write_snapshot(&data.graph)).map_err(|e| format!("snapshot: {e}"))?);
    let frozen = FrozenModel::from_model(&mut model, &graph);
    let server = OnlineServer::builder()
        .graph(graph)
        .frozen(frozen)
        .item_pool(&items)
        .config(ServingConfig::default())
        .seed(seed)
        .metrics(Arc::new(MetricsRegistry::enabled()))
        .build()
        .map_err(|e| format!("build server: {e}"))?;
    let reqs: Vec<Query> =
        data.logs.iter().cycle().take(requests).map(|l| Query::new(l.user, l.query)).collect();
    let warm: Vec<u32> = reqs.iter().flat_map(|q| [q.user, q.query]).collect();
    server.warm_cache(&warm).map_err(|e| format!("warm cache: {e}"))?;
    let spec = LoadTestSpec::open(qps).num_threads(4).batch_size(batch);
    let report = run_load(&server, &reqs, &spec).map_err(|e| format!("load test: {e}"))?;
    let lat = &report.latency;
    println!(
        "{} requests at {:.0} QPS (batch {}): mean {:.3} ms, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.completed,
        report.offered_qps().unwrap_or(qps),
        batch,
        lat.mean_ms,
        lat.p50_ms,
        lat.p95_ms,
        lat.p99_ms
    );
    if !report.stages.is_empty() {
        println!("per-stage latency (ms):");
        for stage in &report.stages {
            println!(
                "  {:<14} p50 {:.4}  p95 {:.4}  p99 {:.4}  ({} samples)",
                stage.stage, stage.p50_ms, stage.p95_ms, stage.p99_ms, stage.count
            );
        }
    }
    println!("cache hit rate: {:.1}%", server.cache().stats().hit_rate() * 100.0);
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        return Err(usage().to_string());
    };
    let args = Args::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&args),
        "inspect" => cmd_inspect(&args),
        "train" => cmd_train(&args),
        "serve" => cmd_serve(&args),
        "presets" => {
            for p in PRESETS {
                println!("{p}");
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
