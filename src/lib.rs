//! Meta-crate for the Zoomer reproduction: re-exports the whole public API
//! of [`zoomer_core`]. Depend on this crate (or on `zoomer-core` directly)
//! to use the library; the workspace-level `tests/` directory holds the
//! cross-crate integration suite.

pub use zoomer_core::*;
