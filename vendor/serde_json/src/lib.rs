//! Vendored minimal stand-in for `serde_json`: a [`Value`] tree, the
//! [`json!`] macro (object/array literals with expression values, including
//! nested literals), and pretty serialization. Only what the bench harness
//! uses to emit result JSON.

use std::fmt::Write as _;

/// Serialization error (the stub serializer is infallible; the type exists
/// so `to_string_pretty(..)` keeps its `Result` signature).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// An order-preserving string-keyed object.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

#[derive(Clone, Debug, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

// References to scalars, as produced by iterating collections in `json!`
// call sites (e.g. `for name in &presets` yields `&&str`).
macro_rules! from_ref_scalar {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self {
                Value::from(*v)
            }
        }
    )*};
}
from_ref_scalar!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, &str);

impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) if !v.is_finite() => out.push_str("null"),
        Number::Float(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    Ok(out)
}

pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, true);
    Ok(out)
}

/// Build a [`Value`] from a JSON-ish literal. Supports `null`, nested
/// `{ "key": value }` objects (keys must be string literals), `[a, b, c]`
/// arrays of expressions, and any expression convertible `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __json_map = $crate::Map::new();
        $crate::json_object_entries!(__json_map; $($body)*);
        $crate::Value::Object(__json_map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($map:ident;) => {};
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $( $crate::json_object_entries!($map; $($rest)*); )?
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $( $crate::json_object_entries!($map; $($rest)*); )?
    };
    ($map:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::from($value));
        $crate::json_object_entries!($map; $($rest)*);
    };
    ($map:ident; $key:literal : $value:expr $(,)?) => {
        $map.insert($key.to_string(), $crate::Value::from($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_round_trip() {
        let label = "hello \"world\"".to_string();
        let xs = vec![1.5f64, 2.0];
        let v = json!({
            "name": label,
            "nested": {"a": 1, "b": [1, 2, 3]},
            "xs": &xs,
            "ok": true,
            "none": null,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"name":"hello \"world\"","nested":{"a":1,"b":[1,2,3]},"xs":[1.5,2.0],"ok":true,"none":null}"#
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"k": 1});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": 1\n}");
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("x".into(), json!(1)).is_none());
        assert_eq!(m.insert("x".into(), json!(2)), Some(json!(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("x"), Some(&json!(2)));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let v = json!({"bad": f64::NAN});
        assert_eq!(to_string(&v).unwrap(), r#"{"bad":null}"#);
    }
}
