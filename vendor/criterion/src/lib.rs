//! Vendored minimal stand-in for `criterion`: the `criterion_group!` /
//! `criterion_main!` macros, benchmark groups, and a [`Bencher`] that
//! measures mean wall-clock time per iteration. No statistics beyond the
//! mean — enough to compile and run the microbenchmarks offline.

use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Times closures: a warm-up phase, then timed batches until the
/// measurement budget is spent.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    min_samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size batches so each takes roughly 1/min_samples of the budget.
        let budget = self.measurement.as_secs_f64();
        let batch = ((budget / self.min_samples as f64 / per_iter.max(1e-9)) as u64).max(1);
        let started = Instant::now();
        let mut iters: u64 = 0;
        while started.elapsed() < self.measurement || iters < self.min_samples as u64 {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        let nanos = started.elapsed().as_nanos() as f64 / iters as f64;
        println!("    time: {:>12.1} ns/iter  ({} iterations)", nanos, iters);
    }
}

/// Top-level benchmark driver, configured fluently like the real crate.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            min_samples: self.sample_size,
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup { criterion: self, name }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("  bench: {}", id.id);
        let mut b = self.bencher();
        f(&mut b);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("  bench: {}/{}", self.name, id.id);
        let mut b = self.criterion.bencher();
        f(&mut b);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        println!("  bench: {}/{}", self.name, id.id);
        let mut b = self.criterion.bencher();
        f(&mut b, input);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
