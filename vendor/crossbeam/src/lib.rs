//! Vendored minimal stand-in for `crossbeam`: an MPMC channel with the same
//! disconnect semantics as `crossbeam-channel` (send fails once every
//! receiver is gone; recv drains remaining messages then fails once every
//! sender is gone), built on `Mutex<VecDeque>` + condvars.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// Sending half; cloneable (multi-producer).
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable (multi-consumer).
    pub struct Receiver<T>(Arc<Shared<T>>);

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// Every sender is gone and the buffer is drained.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out receiving on an empty channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity; the value is handed back.
        Full(T),
        /// Every receiver is gone; the value is handed back.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Channel holding at most `cap` in-flight messages (`cap == 0` is
    /// treated as 1: this stub has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.0.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => {
                        inner.queue.push_back(value);
                        self.0.not_empty.notify_one();
                        return Ok(());
                    }
                }
            }
        }

        /// Non-blocking send: hands the value back instead of waiting when
        /// the channel is full or the receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            match self.0.cap {
                Some(cap) if inner.queue.len() >= cap => Err(TrySendError::Full(value)),
                _ => {
                    inner.queue.push_back(value);
                    self.0.not_empty.notify_one();
                    Ok(())
                }
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocking receive with a deadline: drains a buffered message if one
        /// arrives within `timeout`, otherwise reports
        /// [`RecvTimeoutError::Timeout`] (or `Disconnected` once every sender
        /// is gone and the buffer is empty — same semantics as
        /// `crossbeam-channel`).
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now().checked_add(timeout);
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = match deadline {
                    // A timeout large enough to overflow Instant is "wait
                    // forever": keep waiting in bounded slices.
                    None => Duration::from_secs(1),
                    Some(at) => match at.checked_duration_since(Instant::now()) {
                        Some(left) if !left.is_zero() => left,
                        _ => return Err(RecvTimeoutError::Timeout),
                    },
                };
                let (guard, _timed_out) = self
                    .0
                    .not_empty
                    .wait_timeout(inner, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.0.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = channel::bounded(4);
        let n = 200;
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for v in rx {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        let producer = thread::spawn(move || {
            for i in 0..n {
                tx.send(i).unwrap();
            }
        });
        producer.join().unwrap();
        let mut all: Vec<i32> = workers.into_iter().flat_map(|w| w.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
