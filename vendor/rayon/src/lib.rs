//! Vendored minimal stand-in for `rayon`: `par_iter()` / `into_par_iter()`
//! with `map`, `for_each`, and order-preserving `collect`, executed on
//! `std::thread::scope` with one contiguous chunk per hardware thread.
//! Not work-stealing — but order-preserving and panic-propagating, which is
//! all the workspace's embarrassingly-parallel loops need.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

fn worker_count(n: usize) -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1))
}

/// Run `f` over `items`, preserving order, on up to `worker_count` threads.
fn run_map<I, U, F>(items: Vec<I>, f: &F) -> Vec<U>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let mut out: Vec<U> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn map<U, F>(self, f: F) -> ParMap<I, F>
    where
        U: Send,
        F: Fn(I) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        run_map(self.items, &|item| f(item));
    }
}

/// A mapped parallel iterator; terminal ops execute the parallel run.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, U, F> ParMap<I, F>
where
    I: Send,
    U: Send,
    F: Fn(I) -> U + Sync,
{
    pub fn collect<C: FromParallelResults<U>>(self) -> C {
        C::from_results(run_map(self.items, &self.f))
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = self.f;
        run_map(self.items, &|item| g(f(item)));
    }
}

/// Order-preserving collection of parallel results.
pub trait FromParallelResults<T> {
    fn from_results(results: Vec<T>) -> Self;
}

impl<T> FromParallelResults<T> for Vec<T> {
    fn from_results(results: Vec<T>) -> Self {
        results
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize);

/// `par_iter()` for slices (and anything derefing to them, e.g. `Vec`).
pub trait IntoParallelRefIterator<T> {
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_range() {
        let squares: Vec<usize> = (0usize..37).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 37);
        assert_eq!(squares[6], 36);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let xs = vec![1u32; 250];
        xs.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 250);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        let xs: Vec<u32> = (0..64).collect();
        let _: Vec<u32> =
            xs.par_iter().map(|&x| if x == 63 { panic!("boom") } else { x }).collect();
    }
}
