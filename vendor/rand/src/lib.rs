//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors the tiny slice of the `rand` 0.8 API it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`) and [`seq::SliceRandom`]. Semantics match the
//! real crate's contracts (half-open/inclusive ranges, uniform floats in
//! `[0, 1)`), though the exact value streams differ — all in-repo consumers
//! only rely on determinism for a fixed seed, never on reference streams.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a fixed-width seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (same construction the
    /// real crate uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, sb) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = sb;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    use crate::RngCore;

    /// The standard distribution: uniform over a type's natural domain
    /// (`[0, 1)` for floats, full range for integers).
    pub struct Standard;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 high bits -> uniform in [0, 1).
            (rng.next_u32() >> 8) as f32 * (1.0 / 16_777_216.0)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

use distributions::{Distribution, Standard};

/// Types uniformly samplable from a bounded interval. The single blanket
/// [`SampleRange`] impl below is what lets the compiler unify `0.5..1.0`
/// with the use site's float type instead of defaulting to `f64`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                debug_assert!(span > 0);
                let off = (rng.next_u64() as u128 % span) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit: $t = Standard.sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range that can be sampled from uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::RngCore;

    /// Slice helpers: Fisher–Yates shuffle and uniform choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-2.5f32..4.0);
            assert!((-2.5..4.0).contains(&b));
            let c = rng.gen_range(0u64..=5);
            assert!(c <= 5);
            let d: f32 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(11);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
