//! Vendored minimal stand-in for `parking_lot`: the same guard-returning API
//! (no `Result` poisoning at the call site), implemented over `std::sync`.
//! A poisoned std lock is transparently recovered — matching parking_lot's
//! behavior of not poisoning at all.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
