//! Vendored minimal stand-in for `rand_chacha`: a real ChaCha8 block cipher
//! driven as a deterministic RNG. Value streams are deterministic for a fixed
//! seed (which is all in-repo consumers rely on).

use rand::{RngCore, SeedableRng};

/// Re-export surface matching `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, keyed from a 32-byte seed, 64-bit block counter.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        let mut w = state;
        for _ in 0..4 {
            // Column round.
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = w[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        Self { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let v = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ones = 0u32;
        let draws = 1000;
        for _ in 0..draws {
            ones += rng.next_u64().count_ones();
        }
        let frac = ones as f64 / (draws as f64 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }
}
