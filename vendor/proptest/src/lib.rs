//! Vendored minimal stand-in for `proptest`: the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros, a [`strategy::Strategy`] trait
//! with `prop_map`, range/tuple/collection strategies, and a deterministic
//! per-test RNG. No shrinking and no persisted regressions — a failing case
//! panics with the case index so it can be replayed (the RNG is seeded from
//! the test name, so runs are reproducible).

/// Deterministic SplitMix64 generator seeded from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    pub fn unit_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as u32) as f32 * (1.0 / 16_777_216.0)
    }
}

/// Sentinel error payload used by `prop_assume!` to reject a case.
#[doc(hidden)]
pub const REJECT_SENTINEL: &str = "__proptest_case_rejected__";

/// Runner configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub mod strategy {
    use crate::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Derived strategy applying a function to generated values.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty, $unit:ident);*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.$unit() * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    start + rng.$unit() * (end - start)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, unit_f32; f64, unit_f64);

    /// `Just(v)`: always produce a clone of `v`.
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies, half-open `[min, max)`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self { min: exact, max: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { min: r.start, max: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self { min: *r.start(), max: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = HashSet::with_capacity(target);
            // Duplicates shrink the set; retry within a generous budget so a
            // small element domain still reaches the requested size.
            let mut attempts = 0usize;
            while out.len() < target && attempts < 20 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

mod bool_strategy {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// The `prop::bool::ANY` strategy: a fair coin.
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;

    pub mod bool {
        pub use crate::bool_strategy::{Any, ANY};
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(20).max(64);
                while __accepted < __config.cases {
                    if __attempts >= __max_attempts {
                        panic!(
                            "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name),
                            __accepted,
                            __config.cases
                        );
                    }
                    __attempts += 1;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(e)
                            if e.as_str() == $crate::REJECT_SENTINEL => {}
                        ::std::result::Result::Err(e) => panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            __accepted,
                            e
                        ),
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::REJECT_SENTINEL.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(xs in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn hash_set_reaches_target_size(s in prop::collection::hash_set(0u32..1000, 5..10)) {
            prop_assert!(s.len() >= 5 && s.len() < 10, "len {}", s.len());
        }

        #[test]
        fn prop_map_applies(v in (0u32..10).prop_map(|x| x * 3)) {
            prop_assert_eq!(v % 3, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_override_parses(b in prop::bool::ANY) {
            prop_assert!(b || !b);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_name("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
