//! Vendored minimal stand-in for `bytes`: reference-counted [`Bytes`] views,
//! a growable [`BytesMut`], and the little-endian subset of the `Buf` /
//! `BufMut` cursor traits the snapshot codec uses.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Cheaply cloneable view into shared immutable bytes.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    /// The real crate borrows the static data; this stub copies it once,
    /// which is equivalent for every consumer in the workspace.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self { data: Arc::new(data), start: 0, end }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// Read cursor over a byte source (little-endian getters only).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn chunk(&self) -> &[u8];

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("buffer underflow"));
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("buffer underflow"));
        self.advance(8);
        v
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        self.start += cnt;
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// Growable byte buffer with little-endian appenders.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write cursor (little-endian putters only).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(1.25);
        let mut r = w.freeze();
        assert_eq!(&r.copy_to_bytes(3)[..], b"HDR");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), 1.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_without_copying_tail() {
        let b = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 10);
        assert_eq!(&b[..3], &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(0..4);
    }
}
