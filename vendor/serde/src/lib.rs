//! Vendored no-op facade for `serde`. The workspace declares serde (with the
//! `derive` feature) but never derives or serializes through it directly —
//! JSON output goes through the vendored `serde_json` stub's own `Value`
//! type. The traits exist so `use serde::…` keeps compiling.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
