//! Single-process trainer with AUC-target early stopping and time accounting
//! (drives Table II/III, Fig 8, Fig 10–12).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::seq::SliceRandom;
use zoomer_data::{RetrievalExample, TrainTestSplit};
use zoomer_graph::HeteroGraph;
use zoomer_model::CtrModel;
use zoomer_obs::{MetricsRegistry, StageTimer};
use zoomer_tensor::seeded_rng;

use crate::eval::evaluate_auc;
use crate::schedule::LrSchedule;

/// Trainer parameters.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Maximum epochs over the training set (paper: 5).
    pub epochs: usize,
    /// Evaluate on (a sample of) the test set every this many steps;
    /// `None` evaluates once per epoch.
    pub eval_every: Option<usize>,
    /// Stop as soon as test AUC reaches this value (Fig 10's protocol:
    /// "achieving AUC equals 0.6 as a goal").
    pub auc_target: Option<f64>,
    /// Cap on test examples per evaluation (keeps eval cheap inside loops).
    pub eval_sample: usize,
    /// Cap on training examples per epoch (simulated-budget experiments).
    pub max_steps_per_epoch: Option<usize>,
    /// Learning-rate schedule applied to the model's base LR per global step.
    pub schedule: LrSchedule,
    /// Examples accumulated per optimizer step (paper: 1024). 1 = pure SGD.
    pub batch_size: usize,
    pub seed: u64,
    /// Observability registry: the loop records per-step (`train.step_ns`)
    /// and per-epoch (`train.epoch_ns`) time plus the running epoch loss
    /// (`train.epoch_loss` gauge) into it. `None` (default) records nothing.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            eval_every: None,
            auc_target: None,
            eval_sample: 500,
            max_steps_per_epoch: None,
            schedule: LrSchedule::Constant,
            batch_size: 1,
            seed: 0,
            metrics: None,
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    pub epochs_run: usize,
    pub steps: usize,
    pub elapsed: Duration,
    /// Mean train loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Test AUC after each evaluation point.
    pub auc_curve: Vec<f64>,
    /// Final test AUC (last evaluation).
    pub final_auc: f64,
    /// Whether the AUC target (if any) was reached.
    pub reached_target: bool,
}

impl TrainReport {
    /// Steps per second over the whole run.
    pub fn steps_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.steps as f64 / self.elapsed.as_secs_f64()
    }
}

/// Train `model` on the split; evaluates on a deterministic test sample.
pub fn train(
    model: &mut dyn CtrModel,
    graph: &HeteroGraph,
    split: &TrainTestSplit,
    config: &TrainerConfig,
) -> TrainReport {
    let mut rng = seeded_rng(config.seed);
    let mut order: Vec<usize> = (0..split.train.len()).collect();
    let eval_set: Vec<RetrievalExample> = balanced_eval_sample(&split.test, config.eval_sample);

    let start = Instant::now();
    let mut report = TrainReport {
        epochs_run: 0,
        steps: 0,
        elapsed: Duration::ZERO,
        epoch_losses: Vec::new(),
        auc_curve: Vec::new(),
        final_auc: 0.5,
        reached_target: false,
    };

    // Register observability handles once; each is a cheap Arc'd cell so the
    // per-step cost with a disabled registry is a single relaxed load.
    let obs = config.metrics.as_ref().map(|registry| {
        (
            registry.counter("train.steps"),
            registry.histogram("train.step_ns"),
            registry.histogram("train.epoch_ns"),
            registry.gauge("train.epoch_loss"),
        )
    });

    'outer: for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let epoch_timer = obs.as_ref().map(|(_, _, epoch_ns, _)| StageTimer::start(epoch_ns));
        let mut loss_sum = 0.0f64;
        let mut loss_count = 0usize;
        let steps_this_epoch = config.max_steps_per_epoch.unwrap_or(usize::MAX).min(order.len());
        let batch_size = config.batch_size.max(1);
        let taken: Vec<usize> = order.iter().take(steps_this_epoch).copied().collect();
        for (chunk_i, chunk) in taken.chunks(batch_size).enumerate() {
            let step = chunk_i * batch_size;
            if config.schedule != LrSchedule::Constant {
                let lr = model.base_learning_rate() * config.schedule.multiplier(report.steps);
                model.set_learning_rate(lr);
            }
            let step_timer = obs.as_ref().map(|(_, step_ns, _, _)| StageTimer::start(step_ns));
            let loss = if chunk.len() == 1 {
                model.train_step(graph, &split.train[chunk[0]], &mut rng)
            } else {
                let batch: Vec<RetrievalExample> = chunk.iter().map(|&i| split.train[i]).collect();
                model.train_batch(graph, &batch, &mut rng)
            };
            if let Some(t) = step_timer {
                t.stop();
            }
            if let Some((steps, _, _, _)) = obs.as_ref() {
                steps.add(chunk.len() as u64);
            }
            loss_sum += loss as f64;
            loss_count += 1;
            report.steps += chunk.len();
            if let Some(every) = config.eval_every {
                if step / every != (step + chunk.len()) / every {
                    let auc = eval_point(model, graph, &eval_set, config.seed);
                    report.auc_curve.push(auc);
                    report.final_auc = auc;
                    if let Some(target) = config.auc_target {
                        if auc >= target {
                            report.reached_target = true;
                            report.epochs_run += 1;
                            report.epoch_losses.push(loss_sum / loss_count.max(1) as f64);
                            if let Some((_, _, _, loss_gauge)) = obs.as_ref() {
                                loss_gauge.set(loss_sum / loss_count.max(1) as f64);
                            }
                            // epoch_timer drops here and records the partial epoch.
                            break 'outer;
                        }
                    }
                }
            }
        }
        report.epochs_run += 1;
        report.epoch_losses.push(loss_sum / loss_count.max(1) as f64);
        if let Some(t) = epoch_timer {
            t.stop();
        }
        if let Some((_, _, _, loss_gauge)) = obs.as_ref() {
            loss_gauge.set(loss_sum / loss_count.max(1) as f64);
        }
        let auc = eval_point(model, graph, &eval_set, config.seed);
        report.auc_curve.push(auc);
        report.final_auc = auc;
        if let Some(target) = config.auc_target {
            if auc >= target {
                report.reached_target = true;
                break;
            }
        }
    }
    report.elapsed = start.elapsed();
    report
}

fn eval_point(
    model: &mut dyn CtrModel,
    graph: &HeteroGraph,
    eval_set: &[RetrievalExample],
    seed: u64,
) -> f64 {
    let mut rng = seeded_rng(seed ^ 0xEBA1);
    evaluate_auc(model, graph, eval_set, &mut rng).auc()
}

/// Deterministic evaluation sample preserving both classes where possible.
fn balanced_eval_sample(test: &[RetrievalExample], cap: usize) -> Vec<RetrievalExample> {
    if test.len() <= cap {
        return test.to_vec();
    }
    let positives: Vec<&RetrievalExample> = test.iter().filter(|e| e.label > 0.5).collect();
    let negatives: Vec<&RetrievalExample> = test.iter().filter(|e| e.label <= 0.5).collect();
    let half = cap / 2;
    let take_pos = positives.len().min(half);
    let take_neg = negatives.len().min(cap - take_pos);
    positives
        .into_iter()
        .take(take_pos)
        .chain(negatives.into_iter().take(take_neg))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_data::{split_examples, TaobaoConfig, TaobaoData};
    use zoomer_model::{ModelConfig, UnifiedCtrModel};

    fn setup() -> (TaobaoData, TrainTestSplit) {
        let data = TaobaoData::generate(TaobaoConfig::tiny(51));
        let split = split_examples(data.ctr_examples(), 0.9, 51);
        (data, split)
    }

    #[test]
    fn training_improves_auc_over_untrained() {
        let (data, split) = setup();
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(3, dd));
        let config = TrainerConfig { epochs: 2, eval_sample: 150, ..Default::default() };
        let report = train(&mut model, &data.graph, &split, &config);
        assert_eq!(report.epochs_run, 2);
        assert!(report.steps > 0);
        assert!(report.final_auc > 0.55, "trained AUC should beat chance: {}", report.final_auc);
        // Loss should broadly decrease epoch over epoch.
        assert!(report.epoch_losses[1] <= report.epoch_losses[0] * 1.1);
    }

    #[test]
    fn auc_target_stops_early() {
        let (data, split) = setup();
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(4, dd));
        let config = TrainerConfig {
            epochs: 50,
            eval_every: Some(100),
            auc_target: Some(0.55),
            eval_sample: 100,
            ..Default::default()
        };
        let report = train(&mut model, &data.graph, &split, &config);
        assert!(report.reached_target, "target 0.55 should be reachable");
        assert!(report.epochs_run < 50, "should stop early");
    }

    #[test]
    fn max_steps_caps_epoch_length() {
        let (data, split) = setup();
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::graphsage(5, dd));
        let config = TrainerConfig {
            epochs: 2,
            max_steps_per_epoch: Some(30),
            eval_sample: 50,
            ..Default::default()
        };
        let report = train(&mut model, &data.graph, &split, &config);
        assert_eq!(report.steps, 60);
        assert!(report.steps_per_sec() > 0.0);
    }

    #[test]
    fn lr_schedule_is_applied_and_training_still_works() {
        let (data, split) = setup();
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::graphsage(7, dd));
        let config = TrainerConfig {
            epochs: 1,
            max_steps_per_epoch: Some(40),
            eval_sample: 50,
            schedule: crate::schedule::LrSchedule::Warmup { warmup_steps: 20 },
            ..Default::default()
        };
        let report = train(&mut model, &data.graph, &split, &config);
        assert_eq!(report.steps, 40);
        assert!(report.final_auc.is_finite());
    }

    #[test]
    fn minibatched_training_covers_all_examples() {
        let (data, split) = setup();
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::graphsage(8, dd));
        let config = TrainerConfig {
            epochs: 1,
            max_steps_per_epoch: Some(40),
            batch_size: 16,
            eval_sample: 50,
            ..Default::default()
        };
        let report = train(&mut model, &data.graph, &split, &config);
        assert_eq!(report.steps, 40, "all capped examples consumed");
        assert!(report.final_auc.is_finite());
    }

    #[test]
    fn enabled_registry_records_steps_and_loss() {
        let (data, split) = setup();
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::graphsage(9, dd));
        let registry = Arc::new(MetricsRegistry::enabled());
        let config = TrainerConfig {
            epochs: 2,
            max_steps_per_epoch: Some(20),
            batch_size: 4,
            eval_sample: 50,
            metrics: Some(Arc::clone(&registry)),
            ..Default::default()
        };
        let report = train(&mut model, &data.graph, &split, &config);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("train.steps"), Some(report.steps as u64));
        let step_ns = snap.histogram("train.step_ns").expect("step histogram registered");
        assert_eq!(step_ns.count, 10, "2 epochs x ceil(20/4) optimizer steps");
        assert!(step_ns.percentile(0.5) > 0);
        let epoch_ns = snap.histogram("train.epoch_ns").expect("epoch histogram registered");
        assert_eq!(epoch_ns.count, 2);
        let loss = snap.gauge("train.epoch_loss").expect("loss gauge registered");
        assert!((loss - report.epoch_losses[1]).abs() < 1e-12, "gauge holds last epoch loss");
    }

    #[test]
    fn balanced_sample_keeps_both_classes() {
        let (_, split) = setup();
        let s = balanced_eval_sample(&split.test, 20);
        assert!(s.len() <= 20);
        let pos = s.iter().filter(|e| e.label > 0.5).count();
        assert!(pos > 0 && pos < s.len(), "sample should keep both classes");
    }
}
