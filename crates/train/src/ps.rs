//! Worker / parameter-server training simulation.
//!
//! §VI: "ZOOMER trains the model using a worker-PS architecture. ZOOMER
//! partitions and stores the model parameters and the embeddings on multiple
//! parameter servers. … the workers retrieve and update parameters
//! asynchronously."
//!
//! Here the PS cluster is a set of hash-sharded, mutex-protected
//! [`ParamStore`]s (dense parameters, Adam state living server-side, as XDL
//! does) plus a table store for the sparse embeddings. Worker threads own
//! model replicas, pull parameters, compute gradients locally on their own
//! ROI samples, and push asynchronously — no barrier, so replicas genuinely
//! observe stale parameters, like the production system.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use zoomer_autograd::{Adam, Optimizer, ParamStore};
use zoomer_data::TrainTestSplit;
use zoomer_graph::HeteroGraph;
use zoomer_model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_tensor::Matrix;

/// A sparse embedding row on the PS: `(value, adagrad_accumulator)`.
type PsRow = (Vec<f32>, Vec<f32>);
/// Server-side sparse storage keyed by `(table name, row id)`.
type PsEmbeddings = HashMap<(String, u64), PsRow>;

/// The parameter-server cluster.
///
/// Lock poisoning is recovered (`PoisonError::into_inner`) rather than
/// propagated: a worker that panicked mid-push can at worst leave one
/// half-applied gradient — noise on the next optimizer step — which is far
/// cheaper than wedging every surviving trainer thread (zoomer-lint L003).
pub struct PsCluster {
    shards: Vec<Mutex<(ParamStore, Adam)>>,
    /// Sparse embedding rows; optimizer state lives server-side, as in XDL.
    embeddings: Mutex<PsEmbeddings>,
    push_counts: Vec<AtomicUsize>,
}

impl PsCluster {
    /// Partition a model's dense parameters across `num_shards` servers.
    pub fn new(init: &ParamStore, num_shards: usize, lr: f32, weight_decay: f32) -> Self {
        assert!(num_shards > 0);
        let mut stores: Vec<ParamStore> = (0..num_shards).map(|_| ParamStore::new()).collect();
        for (name, value) in init.iter() {
            stores[Self::shard_of(name, num_shards)].register(name, value.clone());
        }
        Self {
            shards: stores
                .into_iter()
                .map(|s| Mutex::new((s, Adam::new(lr).with_weight_decay(weight_decay))))
                .collect(),
            embeddings: Mutex::new(HashMap::new()),
            push_counts: (0..num_shards).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// FNV-based shard routing by parameter name.
    pub fn shard_of(name: &str, num_shards: usize) -> usize {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % num_shards as u64) as usize
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of dense parameters on each shard (balance check).
    pub fn shard_param_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).0.len())
            .collect()
    }

    /// Pushes received per shard.
    pub fn shard_push_counts(&self) -> Vec<usize> {
        self.push_counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Pull all dense parameters into a worker-local store.
    pub fn pull_dense_into(&self, store: &mut ParamStore) {
        for (i, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = i;
            for (name, value) in guard.0.iter() {
                store.set(name, value.clone());
            }
        }
    }

    /// Push dense gradients; the owning shard applies Adam server-side.
    pub fn push_dense(&self, grads: &HashMap<String, Matrix>) {
        // Group by shard to take each lock once.
        let n = self.shards.len();
        let mut by_shard: Vec<Vec<(&String, &Matrix)>> = vec![Vec::new(); n];
        for (name, g) in grads {
            by_shard[Self::shard_of(name, n)].push((name, g));
        }
        for (i, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut guard =
                self.shards[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let (store, adam) = &mut *guard;
            for (name, g) in group {
                adam.step(store, name, g);
            }
            self.push_counts[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Push sparse gradients: server-side lazy Adagrad on the stored rows
    /// (optimizer state is kept on the PS, as XDL does for embeddings).
    pub fn push_sparse(
        &self,
        grads: &HashMap<String, HashMap<u64, Vec<f32>>>,
        mut fallback_rows: impl FnMut(&str, u64) -> Vec<f32>,
        lr: f32,
    ) {
        // Three-phase update so the caller-supplied `fallback_rows` (which
        // may pull from a worker table or compute an init) never runs
        // under the embeddings lock: (1) collect missing keys under a
        // short lock, (2) materialize fallback rows unlocked, (3) relock
        // and apply. Keys inserted by a racing pusher between the phases
        // simply win — `or_insert` keeps the first row, same as before.
        let mut missing: Vec<(String, u64)> = Vec::new();
        {
            let emb = self.embeddings.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for (table, rows) in grads {
                for &id in rows.keys() {
                    if !emb.contains_key(&(table.clone(), id)) {
                        missing.push((table.clone(), id));
                    }
                }
            }
        }
        let fresh: Vec<_> = missing
            .into_iter()
            .map(|(table, id)| {
                let row = fallback_rows(&table, id);
                let acc = vec![0.0f32; row.len()];
                ((table, id), (row, acc))
            })
            .collect();
        let mut emb = self.embeddings.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (key, row_acc) in fresh {
            emb.entry(key).or_insert(row_acc);
        }
        for (table, rows) in grads {
            for (&id, g) in rows {
                let Some((row, accum)) = emb.get_mut(&(table.clone(), id)) else {
                    continue;
                };
                for ((w, &gg), a) in row.iter_mut().zip(g).zip(accum.iter_mut()) {
                    *a += gg * gg;
                    *w -= lr * gg / (a.sqrt() + 1e-8);
                }
            }
        }
    }

    /// Pull specific embedding rows back into a worker's tables.
    #[allow(clippy::type_complexity)]
    pub fn pull_rows(&self, keys: &[(String, u64)]) -> Vec<((String, u64), Option<Vec<f32>>)> {
        let emb = self.embeddings.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        keys.iter().map(|k| (k.clone(), emb.get(k).map(|(row, _)| row.clone()))).collect()
    }

    /// Total embedding rows stored server-side.
    pub fn num_embedding_rows(&self) -> usize {
        self.embeddings.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }
}

/// Distributed-training parameters.
#[derive(Clone, Debug)]
pub struct PsTrainConfig {
    pub num_workers: usize,
    pub num_ps_shards: usize,
    pub epochs: usize,
    pub seed: u64,
}

impl Default for PsTrainConfig {
    fn default() -> Self {
        Self { num_workers: 4, num_ps_shards: 4, epochs: 1, seed: 0 }
    }
}

/// Report from a distributed run.
#[derive(Clone, Debug)]
pub struct PsTrainReport {
    pub steps: usize,
    pub elapsed: Duration,
    pub shard_param_counts: Vec<usize>,
    pub shard_push_counts: Vec<usize>,
}

/// Train with `num_workers` threads against a PS cluster; returns a model
/// synced to the final PS state plus a report.
pub fn train_distributed(
    model_config: &ModelConfig,
    graph: &HeteroGraph,
    split: &TrainTestSplit,
    config: &PsTrainConfig,
) -> (UnifiedCtrModel, PsTrainReport) {
    let template = UnifiedCtrModel::new(model_config.clone());
    let ps = PsCluster::new(
        template.store(),
        config.num_ps_shards,
        model_config.lr,
        model_config.weight_decay,
    );
    let next_example = AtomicUsize::new(0);
    let total = split.train.len() * config.epochs;
    let steps_done = AtomicUsize::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..config.num_workers {
            let ps = &ps;
            let next_example = &next_example;
            let steps_done = &steps_done;
            let split = &split;
            let model_config = model_config.clone();
            scope.spawn(move || {
                let mut model = UnifiedCtrModel::new(model_config.clone());
                let mut rng = zoomer_tensor::rng::derive_rng(config.seed, &format!("worker-{w}"));
                loop {
                    let i = next_example.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let ex = &split.train[i % split.train.len()];
                    // Pull (stale between pull and push — async by design).
                    ps.pull_dense_into(model.store_mut());
                    // Local forward/backward.
                    let gamma = model.config().focal_gamma;
                    let (mut ctx, logit) = model.forward(graph, ex, &mut rng);
                    let loss = ctx.tape.focal_bce_with_logits(logit, ex.label, gamma);
                    let grads = ctx.tape.backward(loss);
                    let dense = ctx.dense_gradients(&grads);
                    let sparse = ctx.sparse_gradients(&grads);
                    // Push.
                    ps.push_dense(&dense);
                    {
                        let tables = model.tables_mut();
                        ps.push_sparse(
                            &sparse,
                            |table, id| tables.get_or_create_named(table).peek(id),
                            model_config.lr,
                        );
                    }
                    // Refresh local copies of the rows we just touched.
                    let keys: Vec<(String, u64)> = sparse
                        .iter()
                        .flat_map(|(t, rows)| rows.keys().map(move |&id| (t.clone(), id)))
                        .collect();
                    for ((table, id), row) in ps.pull_rows(&keys) {
                        if let Some(row) = row {
                            model.tables_mut().get_or_create_named(&table).set_row(id, row);
                        }
                    }
                    steps_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = start.elapsed();

    // Sync a fresh model to the final PS state for evaluation.
    let mut final_model = UnifiedCtrModel::new(model_config.clone());
    ps.pull_dense_into(final_model.store_mut());
    {
        let emb = ps.embeddings.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for ((table, id), (row, _)) in emb.iter() {
            final_model.tables_mut().get_or_create_named(table).set_row(*id, row.clone());
        }
    }
    let report = PsTrainReport {
        steps: steps_done.load(Ordering::Relaxed),
        elapsed,
        shard_param_counts: ps.shard_param_counts(),
        shard_push_counts: ps.shard_push_counts(),
    };
    (final_model, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_auc;
    use zoomer_data::{split_examples, TaobaoConfig, TaobaoData};
    use zoomer_tensor::seeded_rng;

    #[test]
    fn shard_routing_is_stable_and_total() {
        for name in ["tower.uq.w", "att.edge.l1", "comb.l2.b"] {
            let s = PsCluster::shard_of(name, 7);
            assert_eq!(s, PsCluster::shard_of(name, 7));
            assert!(s < 7);
        }
    }

    #[test]
    fn cluster_partitions_all_params() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(61));
        let dd = data.graph.features().dense_dim();
        let model = UnifiedCtrModel::new(ModelConfig::zoomer(1, dd));
        let ps = PsCluster::new(model.store(), 4, 0.05, 0.0);
        let counts = ps.shard_param_counts();
        assert_eq!(counts.iter().sum::<usize>(), model.store().len());
        assert!(counts.iter().all(|&c| c > 0), "empty shard: {counts:?}");
    }

    #[test]
    fn pull_roundtrips_values() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(62));
        let dd = data.graph.features().dense_dim();
        let model = UnifiedCtrModel::new(ModelConfig::zoomer(2, dd));
        let ps = PsCluster::new(model.store(), 3, 0.05, 0.0);
        let mut replica = UnifiedCtrModel::new(ModelConfig::zoomer(2, dd));
        // Perturb the replica then pull; it must match the original.
        replica.store_mut().get_mut("tower.uq.w").map_inplace(|x| x + 1.0);
        ps.pull_dense_into(replica.store_mut());
        assert!(replica.store().max_abs_diff(model.store()) < 1e-7);
    }

    #[test]
    fn push_applies_server_side_adam() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(63));
        let dd = data.graph.features().dense_dim();
        let model = UnifiedCtrModel::new(ModelConfig::zoomer(3, dd));
        let ps = PsCluster::new(model.store(), 2, 0.1, 0.0);
        let before = model.store().get("tower.uq.w").clone();
        let mut grads = HashMap::new();
        grads.insert("tower.uq.w".to_string(), Matrix::full(before.rows(), before.cols(), 1.0));
        ps.push_dense(&grads);
        let mut replica = UnifiedCtrModel::new(ModelConfig::zoomer(3, dd));
        ps.pull_dense_into(replica.store_mut());
        let after = replica.store().get("tower.uq.w");
        assert!(before.max_abs_diff(after) > 1e-3, "push had no effect");
        assert_eq!(ps.shard_push_counts().iter().sum::<usize>(), 1);
    }

    #[test]
    fn single_worker_ps_training_converges() {
        // One worker: deterministic ordering, so the convergence bar is
        // stable while still exercising the full pull/push/PS-optimizer path.
        let data = TaobaoData::generate(TaobaoConfig::tiny(64));
        let dd = data.graph.features().dense_dim();
        let split = split_examples(data.ctr_examples(), 0.9, 64);
        let mc = ModelConfig::zoomer(5, dd);
        let (mut model, report) = train_distributed(
            &mc,
            &data.graph,
            &split,
            &PsTrainConfig { num_workers: 1, num_ps_shards: 3, epochs: 2, seed: 9 },
        );
        assert_eq!(report.steps, split.train.len() * 2);
        let mut rng = seeded_rng(1);
        let sample: Vec<_> = split.test.iter().copied().take(200).collect();
        let auc = evaluate_auc(&mut model, &data.graph, &sample, &mut rng).auc();
        assert!(auc > 0.54, "PS-trained AUC too low: {auc}");
        assert!(ps_rows_nonzero(&report), "{report:?}");
    }

    #[test]
    fn multi_worker_training_makes_progress() {
        // Multi-worker interleaving is nondeterministic; assert structure
        // (all steps executed, every shard pushed to, params moved) and
        // above-chance AUC with a loose bar. Convergence-quality comparisons
        // live in the fig10 bench.
        let data = TaobaoData::generate(TaobaoConfig::tiny(65));
        let dd = data.graph.features().dense_dim();
        let split = split_examples(data.ctr_examples(), 0.9, 65);
        let mc = ModelConfig::zoomer(6, dd);
        let (mut model, report) = train_distributed(
            &mc,
            &data.graph,
            &split,
            &PsTrainConfig { num_workers: 3, num_ps_shards: 3, epochs: 1, seed: 10 },
        );
        assert_eq!(report.steps, split.train.len());
        assert!(report.shard_push_counts.iter().all(|&c| c > 0), "{report:?}");
        let template = UnifiedCtrModel::new(mc.clone());
        assert!(
            model.store().max_abs_diff(template.store()) > 1e-4,
            "dense parameters never moved"
        );
        let mut rng = seeded_rng(2);
        let sample: Vec<_> = split.test.iter().copied().take(200).collect();
        let auc = evaluate_auc(&mut model, &data.graph, &sample, &mut rng).auc();
        assert!(auc > 0.45, "multi-worker AUC collapsed: {auc}");
    }

    fn ps_rows_nonzero(report: &PsTrainReport) -> bool {
        report.shard_push_counts.iter().sum::<usize>() > 0
    }
}
