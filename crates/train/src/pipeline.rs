//! The three-stage asynchronous training pipeline.
//!
//! §VI: "ZOOMER overlaps the three stages of reading subgraphs, reading
//! embeddings, and the training computation in a fully asynchronous pipeline
//! to avoid IO bottleneck." This module provides a generic bounded
//! three-stage pipeline over crossbeam channels: stage 1 and stage 2 run on
//! their own threads; stage 3 runs on the caller thread (it owns the mutable
//! model), so all three stages overlap.

use crossbeam::channel::bounded;

/// Run `items` through `s1 → s2 → s3`, overlapping the stages.
/// Results are returned in input order. `s3` runs on the calling thread and
/// may capture mutable state (the model).
pub fn pipeline3<T, A, B, R>(
    items: Vec<T>,
    capacity: usize,
    s1: impl Fn(T) -> A + Send,
    s2: impl Fn(A) -> B + Send,
    mut s3: impl FnMut(B) -> R,
) -> Vec<R>
where
    T: Send,
    A: Send,
    B: Send,
{
    assert!(capacity > 0, "pipeline capacity must be positive");
    let n = items.len();
    let (tx1, rx1) = bounded::<A>(capacity);
    let (tx2, rx2) = bounded::<B>(capacity);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for item in items {
                if tx1.send(s1(item)).is_err() {
                    break; // downstream hung up
                }
            }
        });
        scope.spawn(move || {
            for a in rx1 {
                if tx2.send(s2(a)).is_err() {
                    break;
                }
            }
        });
        for b in rx2 {
            out.push(s3(b));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn preserves_order_and_values() {
        let out = pipeline3((0..100).collect::<Vec<i32>>(), 4, |x| x * 2, |x| x + 1, |x| x * 10);
        let expected: Vec<i32> = (0..100).map(|x| (x * 2 + 1) * 10).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out = pipeline3(Vec::<i32>::new(), 2, |x| x, |x| x, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn stage3_can_capture_mutable_state() {
        let mut sum = 0;
        let out = pipeline3(
            vec![1, 2, 3],
            2,
            |x| x,
            |x| x,
            |x| {
                sum += x;
                sum
            },
        );
        assert_eq!(out, vec![1, 3, 6]);
        assert_eq!(sum, 6);
    }

    #[test]
    fn stages_overlap_for_speedup() {
        // Three stages each sleeping D per item: serial = 3·n·D,
        // pipelined ≈ (n+2)·D. Require at least a 1.8× speedup.
        let d = Duration::from_millis(3);
        let n = 24;
        let serial_start = Instant::now();
        for _ in 0..n {
            std::thread::sleep(d);
            std::thread::sleep(d);
            std::thread::sleep(d);
        }
        let serial = serial_start.elapsed();

        let start = Instant::now();
        let _ = pipeline3(
            (0..n).collect::<Vec<u32>>(),
            4,
            |x| {
                std::thread::sleep(d);
                x
            },
            |x| {
                std::thread::sleep(d);
                x
            },
            |x| {
                std::thread::sleep(d);
                x
            },
        );
        let pipelined = start.elapsed();
        assert!(
            pipelined.as_secs_f64() < serial.as_secs_f64() / 1.8,
            "no overlap: serial {serial:?} vs pipelined {pipelined:?}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = pipeline3(vec![1], 0, |x| x, |x| x, |x: i32| x);
    }
}
