//! Training and evaluation harness for the Zoomer reproduction.
//!
//! This crate is the Rust counterpart of the paper's XDL-based distributed
//! training stack (§VI): a single-threaded [`trainer`] with AUC-target early
//! stopping and time accounting, an [`eval`] module computing the paper's
//! metrics (AUC / MAE / RMSE / HitRate@K), a worker/parameter-server
//! simulation ([`ps`]) with hash-sharded dense parameters and asynchronous
//! (stale) push/pull, and the three-stage asynchronous [`pipeline`] the paper
//! describes ("reading subgraphs, reading embeddings, and the training
//! computation in a fully asynchronous pipeline").

pub mod eval;
pub mod pipeline;
pub mod ps;
pub mod schedule;
pub mod trainer;

pub use eval::{evaluate_auc, evaluate_hitrate, evaluate_hitrate_frozen, EvalReport};
pub use pipeline::pipeline3;
pub use ps::{PsCluster, PsTrainConfig};
pub use schedule::{clip_global_norm, LrSchedule};
pub use trainer::{train, TrainReport, TrainerConfig};
