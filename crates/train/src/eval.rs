//! Evaluation: AUC/MAE/RMSE over test examples and HitRate@K retrieval.

use std::collections::HashMap;

use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use zoomer_data::RetrievalExample;
use zoomer_graph::{HeteroGraph, NodeId, Query};
use zoomer_model::{neutral_topk_neighbors, CtrModel, FrozenModel};
use zoomer_tensor::metrics::BinaryMetrics;
use zoomer_tensor::seeded_rng;

/// Neighbors sampled per node when embedding eval requests. Matches the
/// serving default (`ServingConfig::cache_k` = 30, the paper's production
/// cache depth), so eval rankings mirror what the online server computes.
pub const EVAL_NEIGHBOR_K: usize = 30;

/// Metric bundle for one model on one test set.
#[derive(Clone, Debug)]
pub struct EvalReport {
    pub auc: f64,
    pub mae: f64,
    pub rmse: f64,
    /// HitRate@K for each requested K, in request order.
    pub hit_rates: Vec<(usize, f64)>,
}

/// Score every test example and compute AUC / MAE / RMSE.
pub fn evaluate_auc(
    model: &mut dyn CtrModel,
    graph: &HeteroGraph,
    examples: &[RetrievalExample],
    rng: &mut ChaCha8Rng,
) -> BinaryMetrics {
    let mut metrics = BinaryMetrics::new();
    for ex in examples {
        let p = model.predict(graph, ex, rng);
        metrics.push(p, ex.label);
    }
    metrics
}

/// HitRate@K (§VII-A): for each positive test interaction, embed the
/// (user, query) request, rank all `item_pool` items by tower dot product,
/// and check whether the clicked item lands in the top K.
///
/// Freezes the model and delegates to [`evaluate_hitrate_frozen`], so eval
/// runs the same batched embedding path the online server uses. The `seed`
/// parameter is retained for API stability but unused: neighbor sampling is
/// deterministically seeded per node, exactly like serving cache entries.
pub fn evaluate_hitrate(
    model: &mut dyn CtrModel,
    graph: &HeteroGraph,
    positives: &[RetrievalExample],
    item_pool: &[NodeId],
    ks: &[usize],
    _seed: u64,
) -> Vec<(usize, f64)> {
    let frozen = model.freeze(graph);
    evaluate_hitrate_frozen(&frozen, graph, positives, item_pool, ks)
}

/// HitRate@K on a frozen snapshot: item tower and request embeddings each
/// run as stacked batched matmuls ([`FrozenModel::item_embeddings`],
/// [`FrozenModel::embed_requests`]) — the identical entry points the online
/// server calls — then ranking fans out across requests with rayon.
pub fn evaluate_hitrate_frozen(
    frozen: &FrozenModel,
    graph: &HeteroGraph,
    positives: &[RetrievalExample],
    item_pool: &[NodeId],
    ks: &[usize],
) -> Vec<(usize, f64)> {
    assert!(!item_pool.is_empty(), "empty item pool");
    let item_embs = frozen.item_embeddings(item_pool);

    // Neutral top-k neighbors once per unique node, in parallel.
    let queries: Vec<Query> = positives.iter().map(|ex| Query::new(ex.user, ex.query)).collect();
    let mut unique: Vec<NodeId> = queries.iter().flat_map(|q| [q.user, q.query]).collect();
    unique.sort_unstable();
    unique.dedup();
    let computed: Vec<(NodeId, Vec<NodeId>)> = unique
        .par_iter()
        .map(|&n| (n, neutral_topk_neighbors(graph, n, EVAL_NEIGHBOR_K)))
        .collect();
    let neighbors: HashMap<NodeId, Vec<NodeId>> = computed.into_iter().collect();
    let neighbor_slices: Vec<(&[NodeId], &[NodeId])> = queries
        .iter()
        .map(|q| (neighbors[&q.user].as_slice(), neighbors[&q.query].as_slice()))
        .collect();

    // One stacked forward pass over the whole positive set.
    let uq = frozen.embed_requests(graph, &queries, &neighbor_slices);

    let max_k = ks.iter().copied().max().unwrap_or(0).min(item_pool.len());
    // Ranking is pure math → rayon.
    let rows: Vec<usize> = (0..positives.len()).collect();
    let reqs: Vec<(Vec<u64>, u64)> = rows
        .par_iter()
        .map(|&r| {
            let q = uq.row(r);
            let mut scored: Vec<(NodeId, f32)> = item_pool
                .iter()
                .enumerate()
                .map(|(j, &id)| {
                    let s: f32 = q.iter().zip(item_embs.row(j)).map(|(&a, &b)| a * b).sum();
                    (id, s)
                })
                .collect();
            // Partial top-k selection then sort the head.
            let pivot = max_k.saturating_sub(1).min(scored.len() - 1);
            scored.select_nth_unstable_by(pivot, |a, b| {
                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
            });
            scored.truncate(max_k);
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            (
                scored.into_iter().map(|(id, _)| id as u64).collect::<Vec<_>>(),
                positives[r].item as u64,
            )
        })
        .collect();
    ks.iter().map(|&k| (k, zoomer_tensor::hit_rate_at_k(&reqs, k))).collect()
}

/// Full evaluation: AUC-family metrics plus HitRate@K over the positives.
pub fn full_eval(
    model: &mut dyn CtrModel,
    graph: &HeteroGraph,
    test: &[RetrievalExample],
    item_pool: &[NodeId],
    ks: &[usize],
    seed: u64,
) -> EvalReport {
    let mut rng = seeded_rng(seed);
    let metrics = evaluate_auc(model, graph, test, &mut rng);
    let positives: Vec<RetrievalExample> = test.iter().filter(|e| e.label > 0.5).copied().collect();
    let hit_rates = if positives.is_empty() || item_pool.is_empty() || ks.is_empty() {
        ks.iter().map(|&k| (k, 0.0)).collect()
    } else {
        evaluate_hitrate(model, graph, &positives, item_pool, ks, seed ^ 0x417)
    };
    EvalReport { auc: metrics.auc(), mae: metrics.mae(), rmse: metrics.rmse(), hit_rates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_data::{TaobaoConfig, TaobaoData};
    use zoomer_model::{ModelConfig, UnifiedCtrModel};

    fn setup() -> (TaobaoData, UnifiedCtrModel) {
        let data = TaobaoData::generate(TaobaoConfig::tiny(41));
        let dd = data.graph.features().dense_dim();
        let model = UnifiedCtrModel::new(ModelConfig::zoomer(9, dd));
        (data, model)
    }

    #[test]
    fn auc_eval_is_within_bounds() {
        let (data, mut model) = setup();
        let examples = data.ctr_examples();
        let mut rng = seeded_rng(1);
        let m = evaluate_auc(&mut model, &data.graph, &examples[..100], &mut rng);
        assert_eq!(m.len(), 100);
        let auc = m.auc();
        assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn hitrate_is_monotone_in_k() {
        let (data, mut model) = setup();
        let positives: Vec<RetrievalExample> =
            data.ctr_examples().into_iter().filter(|e| e.label > 0.5).take(20).collect();
        let items = data.item_nodes();
        let hr = evaluate_hitrate(&mut model, &data.graph, &positives, &items, &[5, 20, 80], 3);
        assert_eq!(hr.len(), 3);
        assert!(hr[0].1 <= hr[1].1 && hr[1].1 <= hr[2].1, "{hr:?}");
        // With K = whole pool, every positive is a hit.
        let all = evaluate_hitrate(&mut model, &data.graph, &positives, &items, &[items.len()], 3);
        assert!((all[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hitrate_is_seed_independent_and_deterministic() {
        let (data, mut model) = setup();
        let positives: Vec<RetrievalExample> =
            data.ctr_examples().into_iter().filter(|e| e.label > 0.5).take(12).collect();
        let items = data.item_nodes();
        let a = evaluate_hitrate(&mut model, &data.graph, &positives, &items, &[10], 3);
        let b = evaluate_hitrate(&mut model, &data.graph, &positives, &items, &[10], 99);
        assert_eq!(a, b, "neighbor sampling must be per-node deterministic");
        // And the frozen entry point is the same computation.
        let frozen = model.freeze(&data.graph);
        let c = evaluate_hitrate_frozen(&frozen, &data.graph, &positives, &items, &[10]);
        assert_eq!(a, c);
    }

    #[test]
    fn full_eval_handles_empty_positives() {
        let (data, mut model) = setup();
        let negatives: Vec<RetrievalExample> =
            data.ctr_examples().into_iter().filter(|e| e.label < 0.5).take(10).collect();
        let items = data.item_nodes();
        let r = full_eval(&mut model, &data.graph, &negatives, &items, &[10], 4);
        assert_eq!(r.hit_rates, vec![(10, 0.0)]);
        assert_eq!(r.auc, 0.5); // single class
    }
}
