//! Learning-rate schedules and gradient clipping — the training-stability
//! tooling a production trainer (XDL) ships with.

use zoomer_tensor::Matrix;

/// A learning-rate schedule: maps the global step to a multiplier on the
/// base learning rate.
#[derive(Clone, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant multiplier 1.
    Constant,
    /// Linear warmup over `warmup_steps`, then constant.
    Warmup { warmup_steps: usize },
    /// Linear warmup then inverse-square-root decay (Transformer-style).
    WarmupInverseSqrt { warmup_steps: usize },
    /// Step decay: multiply by `factor` every `every` steps.
    StepDecay { every: usize, factor: f32 },
}

impl LrSchedule {
    /// Multiplier at `step` (0-based).
    pub fn multiplier(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Warmup { warmup_steps } => {
                if warmup_steps == 0 {
                    1.0
                } else {
                    ((step + 1) as f32 / warmup_steps as f32).min(1.0)
                }
            }
            LrSchedule::WarmupInverseSqrt { warmup_steps } => {
                let w = warmup_steps.max(1) as f32;
                let s = (step + 1) as f32;
                (s / w).min((w / s).sqrt())
            }
            LrSchedule::StepDecay { every, factor } => {
                step.checked_div(every).map_or(1.0, |periods| factor.powi(periods as i32))
            }
        }
    }
}

/// Clip a set of gradients to a global L2 norm; returns the pre-clip norm.
/// Gradients are scaled in place only when the norm exceeds `max_norm`.
pub fn clip_global_norm<'a>(grads: impl IntoIterator<Item = &'a mut Matrix>, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut mats: Vec<&'a mut Matrix> = grads.into_iter().collect();
    let total: f32 =
        mats.iter().map(|m| m.as_slice().iter().map(|&x| x * x).sum::<f32>()).sum::<f32>().sqrt();
    if total > max_norm {
        let scale = max_norm / total;
        for m in &mut mats {
            m.map_inplace(|x| x * scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_everywhere() {
        for step in [0, 10, 1_000_000] {
            assert_eq!(LrSchedule::Constant.multiplier(step), 1.0);
        }
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::Warmup { warmup_steps: 10 };
        assert!((s.multiplier(0) - 0.1).abs() < 1e-6);
        assert!((s.multiplier(4) - 0.5).abs() < 1e-6);
        assert_eq!(s.multiplier(9), 1.0);
        assert_eq!(s.multiplier(100), 1.0);
    }

    #[test]
    fn inverse_sqrt_peaks_at_warmup_end() {
        let s = LrSchedule::WarmupInverseSqrt { warmup_steps: 100 };
        let peak = s.multiplier(99);
        assert!(s.multiplier(10) < peak);
        assert!(s.multiplier(400) < peak);
        // At 4× warmup, multiplier should be 1/2.
        assert!((s.multiplier(399) - 0.5).abs() < 0.01);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay { every: 100, factor: 0.5 };
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(99), 1.0);
        assert_eq!(s.multiplier(100), 0.5);
        assert_eq!(s.multiplier(250), 0.25);
    }

    #[test]
    fn clip_rescales_only_when_needed() {
        let mut a = Matrix::from_vec(1, 2, vec![3.0, 0.0]);
        let mut b = Matrix::from_vec(1, 2, vec![0.0, 4.0]);
        // Global norm = 5; clip at 10 → untouched.
        let n = clip_global_norm([&mut a, &mut b], 10.0);
        assert!((n - 5.0).abs() < 1e-6);
        assert_eq!(a.as_slice(), &[3.0, 0.0]);
        // Clip at 1 → scaled to norm 1.
        let n = clip_global_norm([&mut a, &mut b], 1.0);
        assert!((n - 5.0).abs() < 1e-6);
        let total: f32 =
            a.as_slice().iter().chain(b.as_slice()).map(|&x| x * x).sum::<f32>().sqrt();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "max_norm must be positive")]
    fn zero_max_norm_panics() {
        let mut a = Matrix::zeros(1, 1);
        let _ = clip_global_norm([&mut a], 0.0);
    }
}
