//! Front-door integration suite: real loopback TCP through the length-
//! prefixed wire protocol into a live [`ShardedServer`] (wired into
//! `ci.sh`).
//!
//! Covers the acceptance criterion end-to-end: a noisy tenant offering 5×
//! its fair share cannot push a well-behaved tenant's shed rate above 5% —
//! measured through the socket, not by poking the gate directly.

use std::net::TcpListener;
use std::sync::{Arc, OnceLock};

use zoomer_data::{TaobaoConfig, TaobaoData};
use zoomer_graph::{HeteroGraph, NodeId};
use zoomer_model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_serving::wire::write_frame;
use zoomer_serving::{
    BackendKind, FrontDoor, FrozenModel, OnlineServer, Query, ResponseStatus, ServingConfig,
    ShardedServer, ShardingConfig, WireClient,
};

struct Fixture {
    graph: Arc<HeteroGraph>,
    frozen: FrozenModel,
    pool: Vec<NodeId>,
    logs: Vec<(NodeId, NodeId)>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = TaobaoData::generate(TaobaoConfig::tiny(71));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(23, dd));
        let frozen = model.freeze(&data.graph);
        let pool = data.item_nodes();
        let logs: Vec<(NodeId, NodeId)> =
            data.logs.iter().take(60).map(|l| (l.user, l.query)).collect();
        assert!(!logs.is_empty());
        Fixture { graph: Arc::new(data.graph), frozen, pool, logs }
    })
}

/// A sharded server behind a listening front door; returns the door and
/// the address to dial. The accept loop runs on a leaked thread — it ends
/// when the test process does.
fn front_door(tenant_capacity: usize) -> (Arc<FrontDoor>, String) {
    front_door_with(tenant_capacity, 0)
}

/// As [`front_door`], with a concurrent-connection cap (0 = unlimited).
fn front_door_with(tenant_capacity: usize, max_conns: usize) -> (Arc<FrontDoor>, String) {
    let fix = fixture();
    let builder = OnlineServer::builder()
        .graph(Arc::clone(&fix.graph))
        .frozen(fix.frozen.clone())
        .item_pool(&fix.pool)
        .config(ServingConfig {
            top_k: 10,
            backend: BackendKind::Ivf,
            sharding: ShardingConfig { num_shards: 2, replicas_per_shard: 2 },
            ..Default::default()
        })
        .seed(71);
    let server = Arc::new(ShardedServer::build(builder).expect("sharded build"));
    let door = Arc::new(FrontDoor::new(server, tenant_capacity).with_max_conns(max_conns));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let accept_door = Arc::clone(&door);
    std::thread::spawn(move || accept_door.serve(listener));
    (door, addr)
}

fn query(i: usize, tenant: u32) -> Query {
    let logs = &fixture().logs;
    let (user, q) = logs[i % logs.len()];
    Query::new(user, q).with_tenant(tenant)
}

/// Loopback smoke: what comes back through the socket is exactly what the
/// sharded server answers in-process.
#[test]
fn tcp_round_trip_matches_in_process_serving() {
    let (door, addr) = front_door(0);
    let mut client = WireClient::connect(&addr).expect("connect");
    let queries: Vec<Query> = (0..6).map(|i| query(i, 1)).collect();
    let rows = client.retrieve(&queries, 0).expect("retrieve");
    let direct = door.server().handle_batch(&queries).expect("direct serve");
    assert_eq!(rows.len(), queries.len());
    for (row, want) in rows.iter().zip(&direct) {
        assert_eq!(row.status, ResponseStatus::Ok);
        assert_eq!(&row.retrieval, want, "socket answer diverged from in-process answer");
    }
}

/// One connection serves many frames; a batch after a batch still answers.
#[test]
fn connection_serves_multiple_frames() {
    let (_door, addr) = front_door(0);
    let mut client = WireClient::connect(&addr).expect("connect");
    for round in 0..5 {
        let queries: Vec<Query> = (0..3).map(|i| query(round * 3 + i, 2)).collect();
        let rows = client.retrieve(&queries, 0).expect("retrieve");
        assert_eq!(rows.len(), 3, "round {round} lost rows");
    }
}

/// A malformed frame costs an error reply, not the connection: the same
/// stream serves a well-formed request immediately after.
#[test]
fn malformed_frame_keeps_the_connection_alive() {
    use std::io::Write as _;
    use std::net::TcpStream;
    let (_door, addr) = front_door(0);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    // A framed payload of garbage: the length prefix parses, the body does
    // not decode as a request.
    write_frame(&mut stream, &[0xDE, 0xAD, 0xBE, 0xEF]).expect("write garbage frame");
    stream.flush().expect("flush");
    let reply =
        zoomer_serving::wire::read_frame(&mut stream).expect("read").expect("an error frame");
    match zoomer_serving::wire::decode_response(&reply) {
        Err(zoomer_serving::WireError::Remote(msg)) => {
            assert!(!msg.is_empty(), "error frame must carry a message");
        }
        other => panic!("expected a remote error frame, got {other:?}"),
    }
    // Connection is still usable: a well-formed request right after.
    let request = zoomer_serving::RequestFrame { deadline_us: 0, queries: vec![query(0, 3)] };
    write_frame(&mut stream, &zoomer_serving::wire::encode_request(&request))
        .expect("write after garbage");
    let reply =
        zoomer_serving::wire::read_frame(&mut stream).expect("read").expect("a response frame");
    let frame = zoomer_serving::wire::decode_response(&reply).expect("decode after garbage");
    assert_eq!(frame.rows.len(), 1);
    assert_eq!(frame.rows[0].status, ResponseStatus::Ok);
}

/// The acceptance criterion, through the socket: a noisy tenant at 5× its
/// fair share cannot push a well-behaved tenant's shed rate above 5%.
#[test]
fn noisy_tenant_cannot_starve_fair_tenant_over_tcp() {
    const NOISY: u32 = 10;
    const FAIR: u32 = 20;
    let (door, addr) = front_door(40);
    let mut client = WireClient::connect(&addr).expect("connect");
    let mut fair_offered = 0u32;
    let mut fair_shed = 0u32;
    let mut noisy_shed = 0u32;
    for round in 0..200usize {
        // 5 noisy arrivals per fair arrival: 5× share vs 0.5× share.
        let mut batch: Vec<Query> = (0..5).map(|i| query(round * 5 + i, NOISY)).collect();
        if round % 2 == 0 {
            batch.push(query(round, FAIR));
            fair_offered += 1;
        }
        let rows = client.retrieve(&batch, 0).expect("retrieve");
        for (q, row) in batch.iter().zip(&rows) {
            if row.status == ResponseStatus::Shed {
                if q.tenant == FAIR {
                    fair_shed += 1;
                } else {
                    noisy_shed += 1;
                }
                assert!(row.retrieval.degraded, "shed rows are flagged degraded");
                assert!(row.retrieval.items.is_empty(), "shed rows carry no items");
            }
        }
    }
    let fair_rate = f64::from(fair_shed) / f64::from(fair_offered);
    assert!(
        fair_rate < 0.05,
        "well-behaved tenant shed {:.1}% over TCP (shed {fair_shed}/{fair_offered})",
        fair_rate * 100.0
    );
    assert!(noisy_shed > 0, "the noisy tenant must actually be shed");
    let snap = door.server().metrics_snapshot();
    assert_eq!(
        snap.counter("serve.tenant.shed").unwrap_or(0),
        u64::from(fair_shed + noisy_shed),
        "gate counters must match observed shed rows"
    );
}

/// Connections beyond `max_conns` get a typed rejection — every row
/// `ResponseStatus::Rejected`, then the stream closes — counted as
/// `serve.frontdoor.conn_rejected`; the slot frees once an in-cap
/// connection hangs up.
#[test]
fn over_cap_connection_is_rejected_with_typed_status() {
    use std::time::{Duration, Instant};
    let (door, addr) = front_door_with(0, 1);
    // Occupy the single slot and prove it serves.
    let mut first = WireClient::connect(&addr).expect("connect first");
    let rows = first.retrieve(&[query(0, 1)], 0).expect("first retrieve");
    assert_eq!(rows[0].status, ResponseStatus::Ok);

    // The next connection is over the cap: its first request is answered
    // all-Rejected, row for row, and then the connection closes.
    let mut second = WireClient::connect(&addr).expect("connect second");
    let batch: Vec<Query> = (0..3).map(|i| query(i, 2)).collect();
    let rows = second.retrieve(&batch, 0).expect("rejected reply");
    assert_eq!(rows.len(), batch.len());
    for row in &rows {
        assert_eq!(row.status, ResponseStatus::Rejected);
        assert!(row.retrieval.items.is_empty(), "rejected rows carry no items");
        assert!(row.retrieval.degraded, "rejected rows are flagged degraded");
    }
    assert!(second.retrieve(&batch, 0).is_err(), "rejected connection must be closed");
    let snap = door.server().metrics_snapshot();
    assert_eq!(snap.counter("serve.frontdoor.conn_rejected"), Some(1));

    // Hanging up the in-cap connection frees the slot for new dials.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = WireClient::connect(&addr).expect("reconnect");
        if let Ok(rows) = retry.retrieve(&[query(1, 1)], 0) {
            if rows[0].status == ResponseStatus::Ok {
                break;
            }
        }
        assert!(Instant::now() < deadline, "connection slot never freed after hangup");
        std::thread::sleep(Duration::from_millis(10));
    }
}
