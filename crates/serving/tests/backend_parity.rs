//! Backend parity suite (wired into `ci.sh`).
//!
//! Two guarantees the `SearchBackend` refactor must not bend:
//!
//! 1. **IVF bit-identity** — routing the IVF index through `IvfBackend` /
//!    the enum-dispatched `Backend` is a pure delegation: ids and score
//!    bits match the pre-refactor `IvfIndex` entry points exactly, on the
//!    plain batch path and the deadline path alike (proptest-pinned).
//! 2. **Backend equivalence** — at recall=1 settings (IVF probing every
//!    list, a pool-wide proximity beam) every backend agrees with the
//!    `ExactSearch` oracle item-for-item, score-bit-for-score-bit.

use std::sync::OnceLock;

use proptest::prelude::*;
use zoomer_serving::{
    Backend, BackendKind, Deadline, ExactSearch, IvfBackend, IvfIndex, ProximityGraph,
    SearchBackend,
};
use zoomer_tensor::{seeded_rng, Matrix};

use rand::Rng;

const DIM: usize = 8;
const POOL: usize = 120;
const NPROBE: usize = 3;

fn random_items(n: usize, dim: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
    let mut rng = seeded_rng(seed);
    (0..n as u64)
        .map(|id| (id * 3 + 7, (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()))
        .collect()
}

fn query_matrix(n: usize, dim: usize, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    Matrix::from_vec(n, dim, (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
}

/// The same item pool indexed three ways: the raw pre-refactor `IvfIndex`,
/// the `IvfBackend` wrapper, and the enum-dispatched `Backend::Ivf`.
fn ivf_trio() -> &'static (IvfIndex, IvfBackend, Backend) {
    static TRIO: OnceLock<(IvfIndex, IvfBackend, Backend)> = OnceLock::new();
    TRIO.get_or_init(|| {
        let items = random_items(POOL, DIM, 901);
        let raw = IvfIndex::build(&items, 10, 4, 901);
        let wrapped = IvfBackend::new(IvfIndex::build(&items, 10, 4, 901), NPROBE, NPROBE);
        let dispatched =
            Backend::Ivf(IvfBackend::new(IvfIndex::build(&items, 10, 4, 901), NPROBE, NPROBE));
        (raw, wrapped, dispatched)
    })
}

fn bits(rows: &[Vec<(u64, f32)>]) -> Vec<Vec<(u64, u32)>> {
    rows.iter().map(|r| r.iter().map(|&(id, s)| (id, s.to_bits())).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `search_batch` through the wrapper and the enum returns the exact
    /// bits the pre-refactor `IvfIndex::search_batch` returns.
    #[test]
    fn ivf_backend_batch_is_bit_identical_to_the_raw_index(
        n_queries in 1usize..40,
        qseed in 0u64..500,
        k in 1usize..15,
    ) {
        let (raw, wrapped, dispatched) = ivf_trio();
        let queries = query_matrix(n_queries, DIM, qseed);
        let expect = bits(&raw.search_batch(&queries, k, NPROBE).expect("raw"));
        let got_wrapped = bits(&wrapped.search_batch(&queries, k).expect("wrapped"));
        let got_dispatched = bits(&dispatched.search_batch(&queries, k).expect("dispatched"));
        prop_assert_eq!(&expect, &got_wrapped, "IvfBackend diverged from IvfIndex");
        prop_assert_eq!(&expect, &got_dispatched, "Backend::Ivf diverged from IvfIndex");
    }

    /// The deadline path delegates identically: an unbounded probe through
    /// the trait returns the raw index's deadline results bit-for-bit and
    /// reports the full budget.
    #[test]
    fn ivf_backend_deadline_path_is_bit_identical_to_the_raw_index(
        n_queries in 1usize..24,
        qseed in 500u64..900,
        k in 1usize..15,
    ) {
        let (raw, _, dispatched) = ivf_trio();
        let queries = query_matrix(n_queries, DIM, qseed);
        let expect = raw
            .search_batch_deadline(&queries, k, NPROBE, &Deadline::none(), |_| {})
            .expect("raw");
        let got = dispatched
            .search_batch_deadline(&queries, k, &Deadline::none(), &mut |_| {})
            .expect("dispatched");
        prop_assert_eq!(bits(&expect.results), bits(&got.results));
        prop_assert_eq!(expect.effective_budget, got.effective_budget);
        prop_assert_eq!(expect.full_budget, got.full_budget);
        prop_assert!(!got.capped());
    }

    /// An exact-width scan through the trait matches the raw index's
    /// full-probe search.
    #[test]
    fn ivf_backend_exact_search_is_bit_identical(qseed in 900u64..1200) {
        let (raw, _, dispatched) = ivf_trio();
        let q: Vec<f32> = {
            let mut rng = seeded_rng(qseed);
            (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
        };
        let expect = raw.exact_search(&q, 10).expect("raw");
        let got = dispatched.exact_search(&q, 10).expect("dispatched");
        prop_assert_eq!(bits(&[expect]), bits(&[got]));
    }
}

/// Normalize a result row for cross-backend comparison: backends may order
/// equal-scored candidates differently (candidate-stream order is
/// backend-specific), so compare as sets ordered by (score bits desc, id).
fn normalized(rows: &[Vec<(u64, f32)>]) -> Vec<Vec<(u64, u32)>> {
    rows.iter()
        .map(|r| {
            let mut row: Vec<(u64, u32)> = r.iter().map(|&(id, s)| (id, s.to_bits())).collect();
            row.sort_by(|a, b| {
                let sa = f32::from_bits(a.1);
                let sb = f32::from_bits(b.1);
                sb.total_cmp(&sa).then(a.0.cmp(&b.0))
            });
            row
        })
        .collect()
}

#[test]
fn all_backends_agree_with_the_exact_oracle_at_recall_one_settings() {
    let items = random_items(POOL, DIM, 902);
    let oracle = ExactSearch::build(&items);
    // IVF probing every list is exact; a pool-wide beam visits the whole
    // (connected-by-construction) graph, so it is exact too.
    let backends: Vec<Backend> = vec![
        Backend::Ivf(IvfBackend::new(IvfIndex::build(&items, 10, 4, 902), POOL, POOL)),
        Backend::Exact(ExactSearch::build(&items)),
        Backend::Proximity(ProximityGraph::build(&items, 8, POOL)),
    ];
    let queries = query_matrix(30, DIM, 903);
    for k in [1usize, 10, POOL] {
        let expect = normalized(&oracle.search_batch(&queries, k).expect("oracle"));
        for backend in &backends {
            let got = normalized(&backend.search_batch(&queries, k).expect("backend"));
            assert_eq!(
                expect,
                got,
                "{} backend diverged from the exact oracle at k={k}",
                backend.name()
            );
        }
    }
    // Single-query exact scans agree as well (the server's widening path).
    for r in 0..queries.rows() {
        let expect = normalized(&[oracle.exact_search(queries.row(r), 10).expect("oracle")]);
        for backend in &backends {
            let got = normalized(&[backend.exact_search(queries.row(r), 10).expect("backend")]);
            assert_eq!(expect, got, "{} exact_search diverged, row {r}", backend.name());
        }
    }
}

#[test]
fn backend_kinds_report_their_names() {
    assert_eq!(BackendKind::Ivf.name(), "ivf");
    assert_eq!(BackendKind::Exact.name(), "exact");
    assert_eq!(BackendKind::Proximity.name(), "proximity");
}
