//! Sharded-vs-single-shard equivalence suite (wired into `ci.sh`).
//!
//! The scatter-gather contract: a [`ShardedServer`] with one shard is the
//! same server as a plain [`OnlineServer`] — not "close", bit-identical,
//! scores included (proptest-pinned, same spirit as `backend_parity.rs`).
//! At higher shard counts the exact backend must still produce the global
//! top-k (partition + merge loses nothing an exact scan would find), and
//! shard-reply faults must degrade the batch instead of erroring it.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use zoomer_data::{TaobaoConfig, TaobaoData};
use zoomer_graph::{HeteroGraph, NodeId};
use zoomer_model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_serving::{
    BackendKind, Deadline, FaultPlan, FaultSite, FrozenModel, OnlineServer, Query, SearchBackend,
    ServerBuilder, ServingConfig, ShardedServer, ShardingConfig,
};

struct Fixture {
    graph: Arc<HeteroGraph>,
    frozen: FrozenModel,
    pool: Vec<NodeId>,
    logs: Vec<(NodeId, NodeId)>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = TaobaoData::generate(TaobaoConfig::tiny(64));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(17, dd));
        let frozen = model.freeze(&data.graph);
        let pool = data.item_nodes();
        let logs: Vec<(NodeId, NodeId)> =
            data.logs.iter().take(100).map(|l| (l.user, l.query)).collect();
        assert!(!logs.is_empty());
        Fixture { graph: Arc::new(data.graph), frozen, pool, logs }
    })
}

fn builder(config: ServingConfig) -> ServerBuilder {
    let fix = fixture();
    OnlineServer::builder()
        .graph(Arc::clone(&fix.graph))
        .frozen(fix.frozen.clone())
        .item_pool(&fix.pool)
        .config(config)
        .seed(64)
}

fn config(backend: BackendKind, num_shards: usize) -> ServingConfig {
    ServingConfig {
        top_k: 12,
        backend,
        sharding: ShardingConfig { num_shards, replicas_per_shard: 2 },
        ..Default::default()
    }
}

/// Score-bit projection of a scored batch result.
fn score_bits(rows: &[zoomer_serving::ScoredRetrieval]) -> Vec<(Vec<(u64, u32)>, bool)> {
    rows.iter()
        .map(|r| (r.items.iter().map(|&(id, s)| (id, s.to_bits())).collect(), r.degraded))
        .collect()
}

fn queries_from(indices: &[usize], top_ks: &[u32]) -> Vec<Query> {
    let logs = &fixture().logs;
    indices
        .iter()
        .zip(top_ks)
        .map(|(&i, &k)| {
            let (user, query) = logs[i % logs.len()];
            Query::new(user, query).with_tenant(i as u32).with_top_k(k)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N=1 scatter-gather is bit-identical to the single-shard server:
    /// same ids, same score bits, same degraded flags, for any batch mix
    /// of default and per-request top-k.
    #[test]
    fn n1_sharded_is_bit_identical_to_single_shard(
        indices in prop::collection::vec(0usize..100, 1..10),
        top_ks in prop::collection::vec(0u32..13, 10),
    ) {
        static PAIR: OnceLock<(OnlineServer, ShardedServer)> = OnceLock::new();
        let (single, sharded) = PAIR.get_or_init(|| {
            let cfg = config(BackendKind::Ivf, 1);
            let single = builder(cfg).build().expect("single build");
            let sharded = ShardedServer::build(builder(cfg)).expect("sharded build");
            (single, sharded)
        });
        let queries = queries_from(&indices, &top_ks);
        let want = single
            .handle_batch_scored(&queries, Deadline::none())
            .expect("single serve");
        let got = sharded
            .handle_batch_scored(&queries, Deadline::none())
            .expect("sharded serve");
        prop_assert_eq!(score_bits(&want), score_bits(&got), "N=1 scatter-gather diverged");
    }
}

/// Every backend kind agrees at N=1 on a fixed batch (ids and scores).
#[test]
fn n1_equivalence_holds_for_every_backend() {
    for backend in
        [BackendKind::Ivf, BackendKind::Exact, BackendKind::Proximity, BackendKind::Quantized]
    {
        let cfg = config(backend, 1);
        let single = builder(cfg).build().expect("single build");
        let sharded = ShardedServer::build(builder(cfg)).expect("sharded build");
        let queries = queries_from(&[0, 1, 2, 3, 4, 5, 6, 7], &[0, 0, 5, 0, 9, 0, 0, 2]);
        let want = single.handle_batch_scored(&queries, Deadline::none()).expect("single");
        let got = sharded.handle_batch_scored(&queries, Deadline::none()).expect("sharded");
        assert_eq!(score_bits(&want), score_bits(&got), "backend {backend:?} diverged at N=1");
    }
}

/// With the exact backend, partitioning cannot lose candidates: the merged
/// top-k at N∈{2,4,8} equals the single-shard exact top-k.
#[test]
fn exact_backend_merge_recovers_the_global_topk() {
    let single = builder(config(BackendKind::Exact, 1)).build().expect("single build");
    let queries = queries_from(&[0, 3, 9, 14, 27, 33], &[0, 0, 0, 4, 0, 8]);
    let want = single.handle_batch(&queries).expect("single serve");
    for shards in [2usize, 4, 8] {
        let sharded =
            ShardedServer::build(builder(config(BackendKind::Exact, shards))).expect("build");
        assert_eq!(sharded.num_shards(), shards);
        let got = sharded.handle_batch(&queries).expect("sharded serve");
        assert_eq!(want, got, "exact scatter-gather lost candidates at N={shards}");
    }
}

/// Shard partitions are disjoint, cover the pool, and follow
/// `shard_of_node` — retrieval ownership matches graph-storage ownership.
#[test]
fn item_pool_partition_follows_shard_arithmetic() {
    let fix = fixture();
    let sharded = ShardedServer::build(builder(config(BackendKind::Exact, 4))).expect("build");
    let pool = &fix.pool;
    let total: usize = sharded.shards().iter().map(|s| s.backend().len()).sum();
    assert_eq!(total, pool.len(), "shards must cover the pool exactly once");
    for (idx, shard) in sharded.shards().iter().enumerate() {
        let owned: Vec<NodeId> =
            pool.iter().copied().filter(|&n| zoomer_graph::shard_of_node(n, 4) == idx).collect();
        assert_eq!(shard.backend().len(), owned.len(), "shard {idx} owns the wrong items");
    }
}

/// An injected panic in one shard's reply degrades the batch (the other
/// shard's answer still serves) and counts `serve.shard.replies_lost`.
#[test]
fn lost_shard_reply_degrades_instead_of_erroring() {
    let fault = Arc::new(
        FaultPlan::new(5)
            .action(FaultSite::ShardReply, 2, || panic!("injected shard-reply loss"))
            .build(),
    );
    let registry = Arc::new(zoomer_obs::MetricsRegistry::new());
    registry.set_enabled(true);
    let sharded = ShardedServer::build(
        builder(config(BackendKind::Exact, 2)).metrics(Arc::clone(&registry)).fault(fault),
    )
    .expect("build");
    let queries = queries_from(&[0, 1, 2], &[0, 0, 0]);
    let got = sharded.handle_batch(&queries).expect("one lost shard must not error the batch");
    assert_eq!(got.len(), queries.len());
    for row in &got {
        assert!(row.degraded, "a lossy merge must be marked degraded");
        assert!(!row.items.is_empty(), "the surviving shard still answers");
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.shard.replies_lost"), Some(1));
    assert_eq!(snap.counter("serve.shard.0.batches").unwrap_or(0), 1);
    assert_eq!(snap.counter("serve.shard.1.batches").unwrap_or(0), 1);
}

/// A reply delayed past the deadline's gather grace is lost; when every
/// shard's reply is lost the batch errors instead of hanging.
#[test]
fn reply_delay_past_the_gather_window_is_loss() {
    let fault = Arc::new(
        FaultPlan::new(3).delay(FaultSite::ShardReply, 1, Duration::from_millis(1500)).build(),
    );
    let mut cfg = config(BackendKind::Exact, 2);
    cfg.deadline = Some(Duration::from_millis(400));
    let sharded = ShardedServer::build(builder(cfg).fault(fault)).expect("build");
    let queries = queries_from(&[0, 1], &[0, 0]);
    let got = sharded.handle_batch(&queries);
    // Either every reply missed the window (typical) or the budget was
    // already spent before the scatter (slow machine) — both are the
    // deadline ladder, never a hang or a panic.
    match got {
        Err(e) => assert!(format!("{e}").contains("shard reply"), "unexpected error shape: {e}"),
        Ok(rows) => assert!(rows.iter().all(|r| r.degraded), "late replies must degrade"),
    }
}

/// Sharding rejects layouts the pool cannot fill, and zero-shard configs.
#[test]
fn degenerate_shard_layouts_are_rejected() {
    let Err(err) = ShardedServer::build(builder(ServingConfig {
        sharding: ShardingConfig { num_shards: 0, replicas_per_shard: 1 },
        ..Default::default()
    })) else {
        panic!("zero shards must be rejected");
    };
    assert!(format!("{err}").contains("sharding"));
    // 80 items cannot fill 4096 shards: some shard ends up empty.
    let Err(err) = ShardedServer::build(builder(ServingConfig {
        sharding: ShardingConfig { num_shards: 4096, replicas_per_shard: 1 },
        ..Default::default()
    })) else {
        panic!("empty shards must be rejected");
    };
    assert!(format!("{err}").contains("no items"));
}

/// Warm + repeated serves hit the partitioned caches, and the aggregated
/// stats see it.
#[test]
fn partitioned_cache_serves_repeats_without_re_missing() {
    let sharded = ShardedServer::build(builder(config(BackendKind::Ivf, 2))).expect("build");
    let queries = queries_from(&[0, 1, 2, 3], &[0, 0, 0, 0]);
    let first = sharded.handle_batch(&queries).expect("serve");
    let misses_after_first = sharded.aggregated_cache_stats().misses;
    let second = sharded.handle_batch(&queries).expect("serve again");
    let stats = sharded.aggregated_cache_stats();
    assert_eq!(first, second, "same batch must be deterministic");
    assert_eq!(stats.misses, misses_after_first, "second serve must not miss");
    assert!(stats.hits > 0);
}
