//! Fault-injection integration tests: overload and failure drills against a
//! real server, driven by the deterministic [`FaultPlan`] schedule.
//!
//! Each test injects one failure mode — an ANN latency spike, a worker
//! panic mid-load-test, a spent deadline — and asserts the server's
//! *documented* reaction: degrade or reject, count it in `serve.*` /
//! `load.*` metrics, and keep serving the next batch.

use std::sync::Arc;
use std::time::Duration;

use zoomer_data::{TaobaoConfig, TaobaoData};
use zoomer_model::{ModelConfig, UnifiedCtrModel};
use zoomer_obs::MetricsRegistry;
use zoomer_serving::{
    run_load, FaultInjector, FaultPlan, FaultSite, FrozenModel, LoadTestSpec, OnlineServer, Query,
    ServingConfig, ShedPolicy,
};

fn build_server(
    config: ServingConfig,
    fault: Option<Arc<FaultInjector>>,
) -> (TaobaoData, OnlineServer) {
    let data = TaobaoData::generate(TaobaoConfig::tiny(55));
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(11, dd));
    let frozen = FrozenModel::from_model(&mut model, &data.graph);
    let items = data.item_nodes();
    let mut builder = OnlineServer::builder()
        .graph(Arc::new(
            zoomer_graph::read_snapshot(zoomer_graph::write_snapshot(&data.graph))
                .expect("snapshot roundtrip"),
        ))
        .frozen(frozen)
        .item_pool(&items)
        .config(config)
        .seed(55)
        .metrics(Arc::new(MetricsRegistry::enabled()));
    if let Some(f) = fault {
        builder = builder.fault(f);
    }
    (data, builder.build().expect("server build"))
}

fn requests(data: &TaobaoData, n: usize) -> Vec<Query> {
    data.logs.iter().take(n).map(|l| Query::new(l.user, l.query)).collect()
}

#[test]
fn ann_latency_spike_triggers_degraded_fallback_and_server_recovers() {
    // Every 2nd batch hits a 20ms spike right before the ANN stage; the
    // deadline is 5ms, so those batches must answer from the inverted-index
    // fallback instead of erroring or blowing the budget on ANN work.
    let fault = Arc::new(
        FaultPlan::new(9).delay(FaultSite::AnnProbe, 2, Duration::from_millis(20)).build(),
    );
    let config =
        ServingConfig { top_k: 10, deadline: Some(Duration::from_millis(5)), ..Default::default() };
    let (data, server) = build_server(config, Some(Arc::clone(&fault)));
    let reqs = requests(&data, 8);

    let mut fallbacks = 0usize;
    for chunk in reqs.chunks(2) {
        let out = server.handle_batch(chunk).expect("an admitted batch must always answer");
        assert_eq!(out.len(), chunk.len(), "degraded batches still answer every request");
        let snap = server.metrics_snapshot();
        if snap.counter("serve.degraded.fallback").unwrap_or(0) > fallbacks as u64 {
            fallbacks = snap.counter("serve.degraded.fallback").unwrap_or(0) as usize;
        }
    }
    assert!(fault.injected(FaultSite::AnnProbe) >= 2, "period-2 rule must fire on 4 batches");
    let snap = server.metrics_snapshot();
    let degraded = snap.counter("serve.degraded.fallback").expect("counter registered");
    assert!(degraded > 0, "spiked batches must be served degraded");
    assert!(
        degraded < snap.counter("serve.requests").expect("counter registered"),
        "unspiked batches must be served normally"
    );
    // After the drill the server still serves a clean batch.
    let out = server.handle_batch(&reqs[..2]).expect("server must keep serving after faults");
    assert_eq!(out.len(), 2);
}

#[test]
fn ann_round_spike_caps_the_probe_width() {
    // A fresh server has no ANN cost history (EWMA 0), so the first bounded
    // batch takes the round-major probe; a 30ms delay injected at every
    // probe round overruns the 5ms budget and must cap nprobe mid-probe.
    let fault = Arc::new(
        FaultPlan::new(4).delay(FaultSite::AnnRound, 1, Duration::from_millis(30)).build(),
    );
    let config = ServingConfig {
        top_k: 10,
        nprobe: 4,
        deadline: Some(Duration::from_millis(5)),
        ..Default::default()
    };
    let (data, server) = build_server(config, Some(Arc::clone(&fault)));
    let out = server.handle_batch(&requests(&data, 2)).expect("capped batch still answers");
    assert_eq!(out.len(), 2);
    let snap = server.metrics_snapshot();
    assert_eq!(
        snap.counter("serve.degraded.budget_capped"),
        Some(1),
        "overrunning the budget mid-probe must cap nprobe"
    );
    assert_eq!(
        snap.counter("serve.degraded.nprobe_capped"),
        Some(1),
        "the legacy alias must mirror the canonical cap counter"
    );
    assert!(fault.injected(FaultSite::AnnRound) >= 1);
    assert!(fault.calls(FaultSite::AnnRound) < 4, "a capped probe must not have run all 4 rounds");
}

#[test]
fn beam_rung_spike_caps_the_beam_width() {
    // Same drill against the proximity-graph backend: its deadline probe
    // climbs a beam-width ladder (4 → 8 → 16 → 32 for beam_width 32) and
    // fires the AnnRound site at each rung. A 30ms delay per rung against a
    // 5ms budget must stop the ladder after rung 0 and count the cap under
    // the same degraded counter the IVF backend uses.
    let fault = Arc::new(
        FaultPlan::new(6).delay(FaultSite::AnnRound, 1, Duration::from_millis(30)).build(),
    );
    let config = ServingConfig {
        top_k: 10,
        backend: zoomer_serving::BackendKind::Proximity,
        graph_degree: 8,
        beam_width: 32,
        deadline: Some(Duration::from_millis(5)),
        ..Default::default()
    };
    let (data, server) = build_server(config, Some(Arc::clone(&fault)));
    let out = server.handle_batch(&requests(&data, 2)).expect("capped batch still answers");
    assert_eq!(out.len(), 2);
    let snap = server.metrics_snapshot();
    assert_eq!(
        snap.counter("serve.degraded.budget_capped"),
        Some(1),
        "overrunning the budget mid-ladder must cap the beam"
    );
    assert_eq!(
        snap.counter("serve.degraded.nprobe_capped"),
        Some(1),
        "the legacy alias must mirror the canonical cap counter"
    );
    assert!(fault.injected(FaultSite::AnnRound) >= 1);
    assert!(fault.calls(FaultSite::AnnRound) < 4, "a capped ladder must not have run all 4 rungs");
}

#[test]
fn zero_deadline_rejects_cleanly_and_is_counted() {
    let config = ServingConfig { top_k: 10, deadline: Some(Duration::ZERO), ..Default::default() };
    let (data, server) = build_server(config, None);
    let reqs = requests(&data, 3);
    for _ in 0..3 {
        let err = server.handle_batch(&reqs).expect_err("zero budget must reject");
        assert_eq!(err, zoomer_serving::ServingError::DeadlineExceeded { stage: "admission" });
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("serve.deadline_exceeded"), Some(3));
    assert_eq!(snap.counter("serve.batches"), Some(0));
}

#[test]
fn injected_worker_panic_is_contained_and_reported_by_the_load_harness() {
    // Every 5th batch panics at the cache-resolve boundary. The load workers
    // must contain the panic, tally its requests as errors, and finish the
    // run with the partition invariant intact.
    let fault = Arc::new(
        FaultPlan::new(2)
            .action(FaultSite::CacheResolve, 5, || panic!("injected fault: worker down"))
            .build(),
    );
    let (data, server) =
        build_server(ServingConfig { top_k: 10, ..Default::default() }, Some(fault));
    let reqs = requests(&data, 60);
    let report = run_load(&server, &reqs, &LoadTestSpec::closed().batch_size(4).num_threads(2))
        .expect("run survives injected panics");
    assert!(report.panics > 0, "period-5 panic rule must fire during 15 batches");
    assert!(report.errors > 0, "panicked batches' requests must be tallied as errors");
    assert_eq!(report.completed + report.errors + report.shed, report.offered);
    assert!(report.completed > 0, "non-panicked batches must complete");
    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("load.panics"), Some(report.panics as u64));
    // The server itself is untouched: once the injected schedule moves past
    // the panic call, batches serve normally again (checked by `completed`
    // covering batches issued *after* panicked ones in the same run).
}

#[test]
fn same_seed_injects_the_same_fault_schedule() {
    let run = |seed: u64| -> (u64, u64, u64) {
        let fault = Arc::new(
            FaultPlan::new(seed)
                .delay(FaultSite::AnnProbe, 3, Duration::from_micros(10))
                .delay(FaultSite::Embed, 4, Duration::from_micros(10))
                .build(),
        );
        let (data, server) = build_server(
            ServingConfig { top_k: 10, ..Default::default() },
            Some(Arc::clone(&fault)),
        );
        let reqs = requests(&data, 24);
        for chunk in reqs.chunks(2) {
            server.handle_batch(chunk).expect("serve");
        }
        (
            fault.injected(FaultSite::AnnProbe),
            fault.injected(FaultSite::Embed),
            fault.injected_total(),
        )
    };
    assert_eq!(run(11), run(11), "same seed must produce the same injected counts");
    assert_eq!(run(11).2, 12 / 3 + 12 / 4, "12 batches at periods 3 and 4");
}

#[test]
fn overload_with_deadline_sheds_and_metrics_round_trip() {
    // The full overload demo in miniature: a tight queue, a deadline, and
    // far-beyond-capacity offered load. The run must shed, never block, and
    // every new counter must survive the text and JSON snapshot paths.
    let config = ServingConfig {
        top_k: 10,
        deadline: Some(Duration::from_millis(50)),
        ..Default::default()
    };
    let (data, server) = build_server(config, None);
    let reqs = requests(&data, 80);
    let spec =
        LoadTestSpec::open(500_000.0).queue_capacity(4).shed(ShedPolicy::RejectNew).batch_size(4);
    let report = run_load(&server, &reqs, &spec).expect("overload run");
    assert!(report.shed > 0, "overload far beyond capacity must shed");
    assert_eq!(report.completed + report.errors + report.shed, report.offered);

    let snap = server.metrics_snapshot();
    for name in [
        "serve.deadline_exceeded",
        "serve.degraded.fallback",
        "serve.degraded.budget_capped",
        "serve.degraded.nprobe_capped",
        "load.shed",
        "load.errors",
        "load.panics",
    ] {
        assert!(snap.counter(name).is_some(), "{name} must be registered");
        assert!(snap.to_text().contains(name), "{name} missing from text rendering");
    }
    assert_eq!(snap.counter("load.shed"), Some(report.shed as u64));
    let round =
        zoomer_obs::Snapshot::from_json_lines(&snap.to_json_lines()).expect("json round trip");
    for name in ["serve.deadline_exceeded", "load.shed", "load.errors", "load.panics"] {
        assert_eq!(round.counter(name), snap.counter(name), "{name} lost in JSON round trip");
    }
}
