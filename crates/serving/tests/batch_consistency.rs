//! Property-based consistency: `handle_batch` over any request mix must be
//! observationally identical to issuing the same requests one at a time,
//! regardless of batch composition, duplicates, or cache state.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use zoomer_data::{TaobaoConfig, TaobaoData};
use zoomer_graph::NodeId;
use zoomer_model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_serving::{IvfIndex, OnlineServer, Query, ServingConfig};
use zoomer_tensor::{seeded_rng, Matrix};

use rand::Rng;

static SERVER: OnceLock<(OnlineServer, Vec<(NodeId, NodeId)>)> = OnceLock::new();

static INDEX: OnceLock<IvfIndex> = OnceLock::new();

/// A small IVF index shared across the parallel-search property cases.
fn ivf_index() -> &'static IvfIndex {
    INDEX.get_or_init(|| {
        let mut rng = seeded_rng(91);
        let items: Vec<(u64, Vec<f32>)> = (0..600u64)
            .map(|id| (id, (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect()))
            .collect();
        IvfIndex::build(&items, 12, 4, 91)
    })
}

/// One shared server (cache state is irrelevant by design — that is the
/// property under test) plus the request universe drawn from the logs.
fn server_and_logs() -> &'static (OnlineServer, Vec<(NodeId, NodeId)>) {
    SERVER.get_or_init(|| {
        let data = TaobaoData::generate(TaobaoConfig::tiny(57));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(13, dd));
        let frozen = model.freeze(&data.graph);
        let items = data.item_nodes();
        let logs: Vec<(NodeId, NodeId)> =
            data.logs.iter().take(120).map(|l| (l.user, l.query)).collect();
        assert!(!logs.is_empty());
        let server = OnlineServer::builder()
            .graph(Arc::new(data.graph))
            .frozen(frozen)
            .item_pool(&items)
            .config(ServingConfig { top_k: 20, ..Default::default() })
            .seed(57)
            .build()
            .expect("server build");
        (server, logs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn handle_batch_matches_sequential_handles(
        indices in prop::collection::vec(0usize..120, 1..12)
    ) {
        let (server, logs) = server_and_logs();
        let reqs: Vec<Query> = indices
            .iter()
            .map(|&i| {
                let (user, query) = logs[i % logs.len()];
                Query::new(user, query)
            })
            .collect();
        let batched = server.handle_batch(&reqs).expect("serve batch");
        prop_assert_eq!(batched.len(), reqs.len());
        for (i, q) in reqs.iter().enumerate() {
            let single = server.handle_batch(&[*q]).expect("serve");
            prop_assert_eq!(
                &batched[i],
                &single[0],
                "row {} of batch {:?} diverged from a one-request batch",
                i,
                reqs
            );
        }
    }

    #[test]
    fn repeated_batches_are_stable(
        indices in prop::collection::vec(0usize..120, 1..10)
    ) {
        // The second run hits warm cache entries where the first may have
        // missed; results must not depend on that.
        let (server, logs) = server_and_logs();
        let reqs: Vec<Query> = indices
            .iter()
            .map(|&i| {
                let (user, query) = logs[i % logs.len()];
                Query::new(user, query)
            })
            .collect();
        let first = server.handle_batch(&reqs).expect("serve batch");
        let second = server.handle_batch(&reqs).expect("serve batch");
        prop_assert_eq!(first, second);
    }

    /// Kernel-PR property: splitting a query batch across any number of
    /// parallel chunks — including chunk counts that leave a ragged final
    /// chunk or exceed the row count — returns exactly the per-query
    /// results, ids and scores bit-for-bit.
    #[test]
    fn search_batch_is_chunk_invariant(
        n_queries in 1usize..48,
        chunks in 2usize..64,
        qseed in 0u64..1000,
        k in 1usize..12,
        nprobe in 1usize..6,
    ) {
        let index = ivf_index();
        let mut rng = seeded_rng(qseed);
        let queries = Matrix::from_vec(
            n_queries,
            index.dim(),
            (0..n_queries * index.dim()).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let sequential = index.search_batch_chunked(&queries, k, nprobe, 1).expect("serial");
        let chunked = index.search_batch_chunked(&queries, k, nprobe, chunks).expect("chunked");
        prop_assert_eq!(&sequential, &chunked, "chunks={}", chunks);
        for (row, expect) in sequential.iter().enumerate() {
            let single = index.search(queries.row(row), k, nprobe).expect("single");
            let expect_bits: Vec<(u64, u32)> =
                expect.iter().map(|&(id, s)| (id, s.to_bits())).collect();
            let single_bits: Vec<(u64, u32)> =
                single.iter().map(|&(id, s)| (id, s.to_bits())).collect();
            prop_assert_eq!(expect_bits, single_bits, "row {}", row);
        }
    }
}
