//! Wire-protocol robustness suite (wired into `ci.sh`).
//!
//! Two properties, proptest-pinned:
//!
//! 1. **Round-trip fidelity** — any request/response frame survives
//!    encode → decode unchanged, headers (deadline budget, tenant, top_k)
//!    included.
//! 2. **Hostile-input totality** — the decoder never panics. Truncations,
//!    oversized prefixes, and arbitrary garbage all land in a typed
//!    [`WireError`]; nothing reaches an `unwrap` or an allocation sized by
//!    an attacker-controlled count.

use proptest::prelude::*;
use zoomer_graph::{Query, Retrieval};
use zoomer_serving::wire::{
    decode_request, decode_response, encode_error, encode_request, encode_response, read_frame,
    write_frame,
};
use zoomer_serving::{RequestFrame, ResponseFrame, ResponseRow, ResponseStatus, WireError};

fn arb_query() -> impl Strategy<Value = Query> {
    (0u32..=u32::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX)
        .prop_map(|(u, q, t, k)| Query::new(u, q).with_tenant(t).with_top_k(k))
}

fn arb_request() -> impl Strategy<Value = RequestFrame> {
    (0u64..u64::MAX, prop::collection::vec(arb_query(), 0..20))
        .prop_map(|(deadline_us, queries)| RequestFrame { deadline_us, queries })
}

fn arb_row() -> impl Strategy<Value = ResponseRow> {
    (prop::bool::ANY, prop::bool::ANY, prop::collection::vec(0u32..=u32::MAX, 0..30)).prop_map(
        |(shed, degraded, items)| ResponseRow {
            status: if shed { ResponseStatus::Shed } else { ResponseStatus::Ok },
            retrieval: Retrieval { items, degraded },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_frames_round_trip(frame in arb_request()) {
        let payload = encode_request(&frame);
        let back = decode_request(&payload).expect("decode own encoding");
        prop_assert_eq!(frame, back);
    }

    #[test]
    fn response_frames_round_trip(rows in prop::collection::vec(arb_row(), 0..12)) {
        let frame = ResponseFrame { rows };
        let payload = encode_response(&frame);
        let back = decode_response(&payload).expect("decode own encoding");
        prop_assert_eq!(frame, back);
    }

    /// Chopping a valid request anywhere strictly inside it is always a
    /// typed decode error — never a panic, never a silent partial decode.
    #[test]
    fn truncated_requests_are_typed_errors(
        frame in arb_request(),
        cut in 0usize..4096,
    ) {
        let payload = encode_request(&frame);
        let cut = cut % payload.len();
        prop_assert!(decode_request(&payload[..cut]).is_err());
    }

    /// Arbitrary garbage never panics either decoder; it decodes only if it
    /// happens to be a well-formed frame (and then re-encodes canonically).
    #[test]
    fn garbage_never_panics_the_decoders(bytes in prop::collection::vec(0u8..=u8::MAX, 0..256)) {
        if let Ok(req) = decode_request(&bytes) {
            prop_assert_eq!(encode_request(&req), bytes.clone());
        }
        let _ = decode_response(&bytes);
    }

    /// Appending bytes after a valid frame is rejected as trailing garbage.
    #[test]
    fn trailing_bytes_are_rejected(frame in arb_request(), extra in 1usize..16) {
        let mut payload = encode_request(&frame);
        payload.extend(vec![0xA5u8; extra]);
        prop_assert_eq!(
            decode_request(&payload),
            Err(WireError::TrailingBytes { extra })
        );
    }

    /// Frame transport round-trips through any in-memory stream, and a
    /// clean EOF at a frame boundary reads as `None`, not an error.
    #[test]
    fn framing_round_trips_and_eof_is_clean(frame in arb_request()) {
        let payload = encode_request(&frame);
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        write_frame(&mut buf, &payload).expect("write");
        let mut r = buf.as_slice();
        for _ in 0..2 {
            let got = read_frame(&mut r).expect("read").expect("a frame");
            prop_assert_eq!(got.as_slice(), payload.as_slice());
        }
        prop_assert!(read_frame(&mut r).expect("clean eof").is_none());
    }
}

/// An error frame decodes as `WireError::Remote` carrying the message.
#[test]
fn error_frames_surface_as_remote() {
    let payload = encode_error("shard 3 is on fire");
    match decode_response(&payload) {
        Err(WireError::Remote(msg)) => assert_eq!(msg, "shard 3 is on fire"),
        other => panic!("expected Remote, got {other:?}"),
    }
}

/// A length prefix past `MAX_FRAME_LEN` is rejected before any allocation.
#[test]
fn oversized_length_prefix_is_rejected() {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(&(u32::MAX).to_le_bytes());
    buf.extend_from_slice(&[0u8; 8]);
    match read_frame(&mut buf.as_slice()) {
        Err(WireError::Oversized { len }) => assert_eq!(len, u32::MAX as usize),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

/// A request header lying about its query count (count × stride larger
/// than the payload) is rejected up front instead of sizing an allocation.
#[test]
fn lying_query_count_is_rejected() {
    let mut payload = encode_request(&RequestFrame { deadline_us: 0, queries: vec![] });
    // Patch the count field (last 4 bytes of the empty request) to huge.
    let n = payload.len();
    payload[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(decode_request(&payload), Err(WireError::Truncated { .. })));
}
