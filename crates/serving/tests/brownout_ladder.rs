//! Brownout-ladder domination suite (wired into `ci.sh`).
//!
//! The contract behind the counted degradation ladder: at the same seed,
//! each rung's answer is **quality-dominated** by the rung above it —
//! a harsher rung returns no more rows, and row-for-row no better scores,
//! than a milder one. Exercised through
//! `OnlineServer::handle_batch_scored_forced`, which prescribes the rung
//! instead of deriving it from a deadline, so the property is deterministic
//! and holds on every backend that ranks through the model path.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use zoomer_data::{TaobaoConfig, TaobaoData};
use zoomer_graph::NodeId;
use zoomer_model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_serving::{
    BackendKind, BrownoutRung, OnlineServer, Query, ScoredRetrieval, ServingConfig,
};

struct Fixture {
    servers: Vec<(BackendKind, OnlineServer)>,
    logs: Vec<(NodeId, NodeId)>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let data = TaobaoData::generate(TaobaoConfig::tiny(83));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(31, dd));
        let frozen = model.freeze(&data.graph);
        let pool = data.item_nodes();
        let graph = Arc::new(data.graph);
        let logs: Vec<(NodeId, NodeId)> =
            data.logs.iter().take(60).map(|l| (l.user, l.query)).collect();
        assert!(!logs.is_empty());
        let servers = [BackendKind::Ivf, BackendKind::Proximity]
            .into_iter()
            .map(|backend| {
                let server = OnlineServer::builder()
                    .graph(Arc::clone(&graph))
                    .frozen(frozen.clone())
                    .item_pool(&pool)
                    .config(ServingConfig { backend, top_k: 10, ..Default::default() })
                    .seed(83)
                    .build()
                    .expect("server build");
                (backend, server)
            })
            .collect();
        Fixture { servers, logs }
    })
}

fn queries(batch: usize, offset: usize, k: u32) -> Vec<Query> {
    let logs = &fixture().logs;
    (0..batch)
        .map(|i| {
            let (user, q) = logs[(offset + i) % logs.len()];
            Query::new(user, q).with_top_k(k)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Walking the model-path rungs mildest → harshest: no rung returns
    /// more rows than the rung above it, and on the shared prefix no rung
    /// outscores the rung above it. `ShrinkTopK` is additionally pinned as
    /// an exact truncation of `SkipWiden` (same probe, half the rows).
    #[test]
    fn each_rung_is_quality_dominated_by_the_rung_above(
        batch in 1usize..5,
        offset in 0usize..50,
        k in 1u32..16,
    ) {
        for (kind, server) in &fixture().servers {
            let qs = queries(batch, offset, k);
            let ladder: Vec<Vec<ScoredRetrieval>> = BrownoutRung::ALL[..4]
                .iter()
                .map(|&rung| server.handle_batch_scored_forced(&qs, rung).expect("forced rung"))
                .collect();
            for (milder, harsher) in ladder.iter().zip(ladder.iter().skip(1)) {
                for row in 0..qs.len() {
                    let a = &milder[row].items;
                    let b = &harsher[row].items;
                    prop_assert!(
                        b.len() <= a.len(),
                        "{}: harsher rung returned more rows ({} > {}) at row {row}",
                        kind.name(), b.len(), a.len()
                    );
                    for i in 0..b.len() {
                        prop_assert!(
                            b[i].1 <= a[i].1,
                            "{}: harsher rung outscored milder at row {row} rank {i} \
                             ({} > {})",
                            kind.name(), b[i].1, a[i].1
                        );
                    }
                }
            }
            let shrunk_k = BrownoutRung::ShrinkTopK.shrunk_k(k as usize);
            for (row, (skip, shrink)) in ladder[1].iter().zip(ladder[2].iter()).enumerate() {
                let wide = &skip.items;
                let shrunk = &shrink.items;
                prop_assert!(
                    shrunk.len() <= shrunk_k,
                    "{}: ShrinkTopK returned {} rows for k={k}",
                    kind.name(), shrunk.len()
                );
                prop_assert_eq!(
                    shrunk.as_slice(),
                    &wide[..shrunk.len()],
                    "{}: ShrinkTopK must be SkipWiden truncated, row {}",
                    kind.name(), row
                );
            }
            // Fallback (the bottom rung) leaves the model path entirely —
            // its rows cannot be score-compared, but they stay bounded and
            // flagged.
            let fallback =
                server.handle_batch_scored_forced(&qs, BrownoutRung::Fallback).expect("fallback");
            for row in &fallback {
                prop_assert!(row.degraded, "{}: fallback rows must be degraded", kind.name());
                prop_assert!(row.items.len() <= k as usize);
            }
            for (rung_idx, rows) in ladder.iter().enumerate() {
                for row in rows {
                    prop_assert_eq!(
                        row.degraded,
                        rung_idx != 0,
                        "{}: degraded flag must track rung, rung index {}",
                        kind.name(), rung_idx
                    );
                }
            }
        }
    }
}

/// Each forced degraded rung moves exactly its own counter: one per batch
/// for the model-path rungs (`budget_capped` mirrored by its registered
/// `nprobe_capped` alias), one per request for the fallback, and nothing at
/// all for a full-quality batch.
#[test]
fn forced_rungs_count_exactly_their_own_counter() {
    let (_, server) = &fixture().servers[0];
    let qs = queries(3, 0, 10);
    let rung_counters = [
        "serve.degraded.skip_widen",
        "serve.degraded.topk_shrunk",
        "serve.degraded.budget_capped",
        "serve.degraded.fallback",
    ];
    for (idx, rung) in BrownoutRung::ALL.into_iter().enumerate() {
        let before = server.metrics_registry().snapshot();
        let rows = server.handle_batch_scored_forced(&qs, rung).expect("forced rung");
        assert_eq!(rows.len(), qs.len());
        let diff = server.metrics_registry().snapshot().since(&before);
        for (c, name) in rung_counters.iter().enumerate() {
            let expect = match (idx.checked_sub(1), rung) {
                (Some(own), BrownoutRung::Fallback) if own == c => qs.len() as u64,
                (Some(own), _) if own == c => 1,
                _ => 0,
            };
            assert_eq!(
                diff.counter(name).unwrap_or(0),
                expect,
                "{name} after forced {}",
                rung.name()
            );
        }
        let alias = diff.counter("serve.degraded.nprobe_capped").unwrap_or(0);
        let expect_alias = u64::from(rung == BrownoutRung::CapBudget);
        assert_eq!(alias, expect_alias, "nprobe_capped alias after forced {}", rung.name());
    }
}
