//! Shared top-k selection for every search backend.
//!
//! All retrieval paths — the IVF list probe, the exact flat scan, and the
//! proximity-graph beam search — end the same way: reduce a scored candidate
//! list to its `k` best by descending score. That reduction lives here, once,
//! so every backend ranks candidates with byte-identical arithmetic and tie
//! handling, and a backend swap can never change how a candidate set turns
//! into a result list.

/// Top-`k` of a candidate list by descending score: partial selection, then
/// a sort of just the head. Deterministic for a fixed candidate order.
pub fn top_k_desc(mut scored: Vec<(u64, f32)>, k: usize) -> Vec<(u64, f32)> {
    let desc =
        |a: &(u64, f32), b: &(u64, f32)| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal);
    if k == 0 || scored.is_empty() {
        scored.truncate(k);
        return scored;
    }
    if k < scored.len() {
        scored.select_nth_unstable_by(k - 1, desc);
        scored.truncate(k);
    }
    scored.sort_by(desc);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[(u64, f32)]) -> Vec<u64> {
        v.iter().map(|&(id, _)| id).collect()
    }

    #[test]
    fn selects_the_k_best_sorted_descending() {
        let scored = vec![(1, 0.5), (2, 2.0), (3, -1.0), (4, 1.5), (5, 0.0)];
        let got = top_k_desc(scored, 3);
        assert_eq!(ids(&got), vec![2, 4, 1]);
        for w in got.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted: {got:?}");
        }
    }

    #[test]
    fn k_zero_and_empty_inputs() {
        assert!(top_k_desc(vec![(1, 1.0)], 0).is_empty());
        assert!(top_k_desc(Vec::new(), 5).is_empty());
    }

    #[test]
    fn k_at_least_len_returns_everything_sorted() {
        let scored = vec![(7, 0.1), (8, 0.9), (9, 0.5)];
        for k in [3usize, 4, 100] {
            let got = top_k_desc(scored.clone(), k);
            assert_eq!(ids(&got), vec![8, 9, 7], "k={k}");
        }
    }

    #[test]
    fn deterministic_for_a_fixed_candidate_order() {
        // Ties are broken by the selection/sort order, which only depends on
        // the input order — the property every backend's candidate stream
        // relies on.
        let scored = vec![(1, 1.0), (2, 1.0), (3, 1.0), (4, 2.0)];
        let a = top_k_desc(scored.clone(), 2);
        let b = top_k_desc(scored, 2);
        assert_eq!(a, b);
        assert_eq!(a[0].0, 4);
    }

    #[test]
    fn nan_scores_do_not_panic() {
        // partial_cmp on NaN falls back to Equal; selection still returns k
        // items without panicking (hot-path rule L001).
        let scored = vec![(1, f32::NAN), (2, 1.0), (3, 0.5)];
        let got = top_k_desc(scored, 2);
        assert_eq!(got.len(), 2);
    }
}
