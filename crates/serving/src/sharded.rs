//! Scatter-gather serving across item-pool shards (§VI's deployment
//! topology, in-process).
//!
//! A [`ShardedServer`] partitions the *item pool* — and with it the
//! retrieval backend, the per-query posting index, and the neighbor cache —
//! across `N` shards using the exact node-id arithmetic of
//! [`zoomer_graph::shard_of_node`], so graph storage and retrieval agree on
//! ownership. Each shard is a full [`OnlineServer`] over its slice of the
//! pool, drained by `replicas_per_shard` worker threads behind a bounded
//! job channel.
//!
//! The router runs the request front half **once**: validate → partitioned
//! cache resolve → one stacked embed through the shared frozen towers. The
//! per-shard work is only the back half ([`OnlineServer::rank_scored`]):
//! probe the shard's backend against the router's embeddings and rank its
//! partition. Replies carry scores, so the router can merge per-shard
//! top-k lists honestly through the same `topk::top_k_desc` every backend
//! ranks with. At `N = 1` the merge input is a single already-sorted list
//! and the whole path is bit-identical to [`OnlineServer::handle_batch`] —
//! pinned by the `sharded_equivalence` proptest suite.
//!
//! Failure model: a shard reply that errors (injected panic, backend
//! fault) or misses the gather window (delay past the deadline grace)
//! is counted in `serve.shard.replies_lost`; the router merges the shards
//! that did answer and marks every affected query degraded. Only a batch
//! with *no* surviving shard replies errors.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Sender};
use zoomer_graph::{shard_of_node, HeteroGraph, NodeId, Query, Retrieval};
use zoomer_obs::{CacheStats, Counter, Histogram, MetricsRegistry, Snapshot, StageTimer};
use zoomer_tensor::Matrix;

use crate::brownout::BrownoutRung;
use crate::deadline::Deadline;
use crate::error::ServingError;
use crate::fault::{FaultInjector, FaultSite};
use crate::frozen::{neutral_topk_neighbors, FrozenModel};
use crate::load::QueryService;
use crate::router::merge_query;
use crate::server::{OnlineServer, ScoredRetrieval, ServerBuilder, ServingConfig};

/// Extra time the router waits past a bounded deadline for stragglers: the
/// shards themselves degrade when the budget expires, so a reply is usually
/// already on the wire — the grace only bounds true loss.
const GATHER_GRACE: Duration = Duration::from_millis(100);

/// Gather bound for unbounded-deadline batches; far beyond any healthy
/// shard's latency, it exists so a wedged worker cannot hang the router.
const DEFAULT_GATHER_TIMEOUT: Duration = Duration::from_secs(10);

/// One shard's answer: its index plus the scored rows (or the error that
/// replaced them).
type ShardReply = (usize, Result<Vec<ScoredRetrieval>, ServingError>);

/// A scattered unit of work: shared embeddings + queries, the batch
/// deadline, the router-chosen brownout rung (every shard serves the batch
/// at the same rung, so the merge never mixes qualities), and the per-batch
/// reply channel.
struct ShardJob {
    uq: Arc<Matrix>,
    queries: Arc<Vec<Query>>,
    deadline: Deadline,
    rung: BrownoutRung,
    reply: mpsc::Sender<ShardReply>,
}

/// Router-side metric handles, registered once at build.
struct RouterMetrics {
    registry: Arc<MetricsRegistry>,
    requests: Counter,
    batches: Counter,
    deadline_exceeded: Counter,
    degraded_fallback: Counter,
    /// Shard replies that errored or missed the gather window.
    replies_lost: Counter,
    stage_cache: Histogram,
    stage_embed: Histogram,
    /// Scatter + wait for shard replies, wall time per batch.
    gather_ns: Histogram,
    /// Per-shard top-k merge, wall time per batch.
    merge_ns: Histogram,
}

impl RouterMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            requests: registry.counter("serve.requests"),
            batches: registry.counter("serve.batches"),
            deadline_exceeded: registry.counter("serve.deadline_exceeded"),
            degraded_fallback: registry.counter("serve.degraded.fallback"),
            replies_lost: registry.counter("serve.shard.replies_lost"),
            stage_cache: registry.histogram("serve.stage.cache_resolve_ns"),
            stage_embed: registry.histogram("serve.stage.embed_ns"),
            gather_ns: registry.histogram("serve.router.gather_ns"),
            merge_ns: registry.histogram("serve.router.merge_ns"),
            registry,
        }
    }
}

/// The scatter-gather serving tier: N item-pool shards behind one router.
///
/// Build with [`ShardedServer::build`] from the same [`ServerBuilder`] a
/// single-shard server uses — the shard count comes from
/// [`ServingConfig::sharding`] (see [`ServerBuilder::sharding`]).
pub struct ShardedServer {
    shards: Vec<Arc<OnlineServer>>,
    job_txs: Vec<Sender<ShardJob>>,
    workers: Vec<JoinHandle<()>>,
    graph: Arc<HeteroGraph>,
    frozen: Arc<FrozenModel>,
    config: ServingConfig,
    fault: Option<Arc<FaultInjector>>,
    metrics: RouterMetrics,
}

impl ShardedServer {
    /// Stand the sharded tier up: partition the item pool by
    /// [`shard_of_node`], build one [`OnlineServer`] per shard (shared
    /// graph, shared frozen towers, shared metrics registry, per-shard
    /// cache capacity `cache_capacity / N`), and spawn
    /// `replicas_per_shard` workers per shard.
    pub fn build(builder: ServerBuilder) -> Result<ShardedServer, ServingError> {
        let sharding = builder.config.sharding;
        if sharding.num_shards == 0 || sharding.replicas_per_shard == 0 {
            return Err(ServingError::InvalidConfig(
                "sharding needs at least one shard and one replica",
            ));
        }
        let num_shards = sharding.num_shards;
        // Resolve the graph once (same resolution ServerBuilder::build runs).
        let registry = builder.metrics.unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        let graph = match (builder.graph, builder.graph_bytes) {
            (Some(g), _) => g,
            (None, Some(raw)) => {
                let started = Instant::now();
                let g = zoomer_graph::read_snapshot(raw)?;
                registry
                    .histogram("serve.snapshot.load_ns")
                    .record(started.elapsed().as_nanos() as u64);
                Arc::new(g)
            }
            (None, None) => {
                return Err(ServingError::InvalidConfig("server builder needs a graph"))
            }
        };
        let frozen: Arc<FrozenModel> = match (builder.frozen_shared, builder.frozen) {
            (Some(shared), _) => shared,
            (None, Some(owned)) => Arc::new(owned),
            (None, None) => {
                return Err(ServingError::InvalidConfig("server builder needs a frozen model"))
            }
        };
        if builder.item_pool.is_empty() {
            return Err(ServingError::InvalidConfig("cannot serve an empty item pool"));
        }
        // Partition the pool; every shard must own at least one item or its
        // backend would be un-buildable.
        let mut pools: Vec<Vec<NodeId>> = vec![Vec::new(); num_shards];
        for &item in &builder.item_pool {
            pools[shard_of_node(item, num_shards)].push(item);
        }
        if pools.iter().any(Vec::is_empty) {
            return Err(ServingError::InvalidConfig(
                "a shard owns no items; use fewer shards or a larger item pool",
            ));
        }
        let mut shard_config = builder.config;
        shard_config.cache_capacity = (builder.config.cache_capacity / num_shards).max(1);
        let mut shards = Vec::with_capacity(num_shards);
        for pool in &pools {
            let mut b = OnlineServer::builder()
                .graph(Arc::clone(&graph))
                .item_pool(pool)
                .config(shard_config)
                .seed(builder.seed)
                .metrics(Arc::clone(&registry));
            b.frozen_shared = Some(Arc::clone(&frozen));
            if let Some(f) = &builder.fault {
                b = b.fault(Arc::clone(f));
            }
            shards.push(Arc::new(b.build()?));
        }
        // Per-shard worker pools behind bounded job queues: a slow shard
        // back-pressures its router callers instead of buffering unboundedly.
        let mut job_txs = Vec::with_capacity(num_shards);
        let mut workers = Vec::with_capacity(num_shards * sharding.replicas_per_shard);
        for (idx, shard) in shards.iter().enumerate() {
            let (tx, rx) = channel::bounded::<ShardJob>(sharding.replicas_per_shard * 2);
            job_txs.push(tx);
            let batches = registry.counter(&format!("serve.shard.{idx}.batches"));
            let errors = registry.counter(&format!("serve.shard.{idx}.errors"));
            let rank_ns = registry.histogram(&format!("serve.shard.{idx}.rank_ns"));
            for _ in 0..sharding.replicas_per_shard {
                workers.push(spawn_worker(
                    idx,
                    Arc::clone(shard),
                    rx.clone(),
                    batches.clone(),
                    errors.clone(),
                    rank_ns.clone(),
                    builder.fault.clone(),
                ));
            }
        }
        Ok(ShardedServer {
            shards,
            job_txs,
            workers,
            graph,
            frozen,
            config: builder.config,
            fault: builder.fault,
            metrics: RouterMetrics::new(registry),
        })
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard servers (tests and benches inspect their partitions).
    pub fn shards(&self) -> &[Arc<OnlineServer>] {
        &self.shards
    }

    pub fn config(&self) -> ServingConfig {
        self.config
    }

    pub fn graph(&self) -> &HeteroGraph {
        &self.graph
    }

    /// The shared observability registry (router + every shard).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics.registry
    }

    /// Snapshot with the shard caches' aggregated counters ingested.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.registry.ingest_cache("cache", self.aggregated_cache_stats());
        self.metrics.registry.snapshot()
    }

    /// Neighbor-cache counters summed across every shard's partition.
    pub fn aggregated_cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.cache().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.refreshes += s.refreshes;
            total.evictions += s.evictions;
        }
        total
    }

    /// Pre-fill every shard's neighbor cache partition for `nodes` (each
    /// node lands only in its owning shard's cache).
    pub fn warm_cache(&self, nodes: &[NodeId]) -> Result<(), ServingError> {
        if self.config.disable_cache {
            return Ok(());
        }
        self.validate_nodes(nodes.iter().copied())?;
        let mut by_shard: Vec<Vec<NodeId>> = vec![Vec::new(); self.shards.len()];
        for &n in nodes {
            by_shard[shard_of_node(n, self.shards.len())].push(n);
        }
        for (shard, owned) in self.shards.iter().zip(by_shard) {
            shard.warm_cache(&owned)?;
        }
        Ok(())
    }

    /// Scatter-gather batch serve; semantics of
    /// [`OnlineServer::handle_batch`] over the sharded tier.
    pub fn handle_batch(&self, queries: &[Query]) -> Result<Vec<Retrieval>, ServingError> {
        self.handle_batch_with_deadline(queries, Deadline::from_config(self.config.deadline))
    }

    /// [`Self::handle_batch`] under an explicit, possibly already-running
    /// deadline (e.g. one decoded from a wire-request header).
    pub fn handle_batch_with_deadline(
        &self,
        queries: &[Query],
        deadline: Deadline,
    ) -> Result<Vec<Retrieval>, ServingError> {
        Ok(self
            .handle_batch_scored(queries, deadline)?
            .into_iter()
            .map(ScoredRetrieval::into_retrieval)
            .collect())
    }

    /// The scored scatter-gather path: front half once at the router,
    /// back half fanned out to the shard workers, replies merged by score.
    pub fn handle_batch_scored(
        &self,
        queries: &[Query],
        deadline: Deadline,
    ) -> Result<Vec<ScoredRetrieval>, ServingError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        self.validate_nodes(queries.iter().flat_map(|r| [r.user, r.query]))?;
        let m = &self.metrics;
        if deadline.expired() {
            m.deadline_exceeded.inc();
            return Err(ServingError::DeadlineExceeded { stage: "admission" });
        }
        m.batches.inc();
        m.requests.add(queries.len() as u64);

        self.fire_fault(FaultSite::CacheResolve);
        let t = StageTimer::start(&m.stage_cache);
        let neighbors = self.resolve_neighbors(queries)?;
        t.stop();
        if deadline.expired() {
            return Ok(self.router_fallback(queries));
        }

        self.fire_fault(FaultSite::Embed);
        let t = StageTimer::start(&m.stage_embed);
        let neighbor_slices: Vec<(&[NodeId], &[NodeId])> =
            neighbors.iter().map(|(u, q)| (u.as_slice(), q.as_slice())).collect();
        let uq = self.frozen.embed_requests(&self.graph, queries, &neighbor_slices);
        t.stop();

        // The batch's brownout rung, driven by the *worst* shard's probe
        // cost: a merge of mixed-rung shard answers would let a fast shard's
        // full-quality scores drown out a slow shard's shrunken list, so the
        // router imposes one rung on everyone. Deadline::none() reads every
        // EWMA as irrelevant and selects Full — the pre-ladder path.
        let worst_ewma = self.shards.iter().map(|s| s.ann_cost_ewma_ns()).max().unwrap_or_default();
        let rung = BrownoutRung::select(&deadline, worst_ewma);

        // Scatter: every shard ranks the whole batch against its partition.
        let t_gather = StageTimer::start(&m.gather_ns);
        let uq = Arc::new(uq);
        let shared_queries = Arc::new(queries.to_vec());
        let (tx, rx) = mpsc::channel::<ShardReply>();
        let mut dispatched = 0usize;
        for job_tx in &self.job_txs {
            let job = ShardJob {
                uq: Arc::clone(&uq),
                queries: Arc::clone(&shared_queries),
                deadline,
                rung,
                reply: tx.clone(),
            };
            if job_tx.send(job).is_ok() {
                dispatched += 1;
            }
        }
        drop(tx);

        // Gather under the batch's remaining budget plus a straggler grace
        // (shards degrade internally on expiry, so a reply is normally
        // already in flight — the grace bounds true loss, not tail work).
        let budget = match deadline.remaining() {
            Some(left) => left + GATHER_GRACE,
            None => DEFAULT_GATHER_TIMEOUT,
        };
        let gather_start = Instant::now();
        let mut per_shard: Vec<Option<Vec<ScoredRetrieval>>> = Vec::new();
        per_shard.resize_with(self.shards.len(), || None);
        let mut last_err = None;
        let mut received = 0usize;
        while received < dispatched {
            let waited = gather_start.elapsed();
            let Some(left) = budget.checked_sub(waited) else { break };
            match rx.recv_timeout(left) {
                Ok((idx, Ok(rows))) => {
                    if let Some(slot) = per_shard.get_mut(idx) {
                        *slot = Some(rows);
                    }
                    received += 1;
                }
                Ok((_, Err(e))) => {
                    last_err = Some(e);
                    received += 1;
                }
                Err(_) => break,
            }
        }
        t_gather.stop();
        let answered = per_shard.iter().filter(|s| s.is_some()).count();
        let lost = self.shards.len() - answered;
        if lost > 0 {
            m.replies_lost.add(lost as u64);
        }
        if answered == 0 {
            return Err(last_err.unwrap_or(ServingError::Internal("every shard reply was lost")));
        }

        // Merge: per query, concatenate the replying shards' scored lists
        // (shard-index order, so ties break deterministically) and reduce
        // through the shared top-k. A lost shard marks the whole batch
        // degraded — its candidates are missing from the merge.
        let t_merge = StageTimer::start(&m.merge_ns);
        let mut row_iters: Vec<std::vec::IntoIter<ScoredRetrieval>> =
            per_shard.into_iter().flatten().map(Vec::into_iter).collect();
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            let rows: Vec<ScoredRetrieval> =
                row_iters.iter_mut().filter_map(Iterator::next).collect();
            out.push(merge_query(rows, self.effective_top_k(q), lost > 0));
        }
        t_merge.stop();
        Ok(out)
    }

    /// Budget-spent fallback at the router: answer from every shard's
    /// posting partition (no embedding, no probe, no scatter), merged by
    /// the postings' synthetic rank scores. Mirrors
    /// [`OnlineServer::degraded_fallback_batch`] per shard, counting
    /// `serve.degraded.fallback` once per request.
    fn router_fallback(&self, queries: &[Query]) -> Vec<ScoredRetrieval> {
        self.metrics.degraded_fallback.add(queries.len() as u64);
        queries
            .iter()
            .map(|r| {
                let k = self.effective_top_k(r);
                let rows: Vec<ScoredRetrieval> = self
                    .shards
                    .iter()
                    .map(|shard| {
                        let items = shard
                            .inverted()
                            .posting(r.query)
                            .map(|p| {
                                p.iter()
                                    .take(k)
                                    .enumerate()
                                    .map(|(rank, &id)| (id as u64, -(rank as f32)))
                                    .collect()
                            })
                            .unwrap_or_default();
                        ScoredRetrieval { items, degraded: true }
                    })
                    .collect();
                merge_query(rows, k, false)
            })
            .collect()
    }

    /// Partitioned neighbor-cache resolve: each node's entry lives in (and
    /// only in) its owning shard's cache, computed with the same
    /// neutral-focal top-k the single-shard path caches — so a node's
    /// cached neighborhood is identical at any shard count.
    fn resolve_neighbors(
        &self,
        queries: &[Query],
    ) -> Result<Vec<crate::server::NeighborPair>, ServingError> {
        if self.config.disable_cache {
            // The no-cache ablation samples per request and touches no shard
            // state; any shard's resolver serves (shard 0 by convention).
            return self
                .shards
                .first()
                .ok_or(ServingError::Internal("sharded server with no shards"))?
                .resolve_neighbors(queries);
        }
        let num_shards = self.shards.len();
        let mut by_shard: Vec<Vec<NodeId>> = vec![Vec::new(); num_shards];
        let mut seen = HashSet::new();
        for r in queries {
            for n in [r.user, r.query] {
                if seen.insert(n) {
                    by_shard[shard_of_node(n, num_shards)].push(n);
                }
            }
        }
        let mut resolved: HashMap<NodeId, Arc<Vec<NodeId>>> = HashMap::with_capacity(seen.len());
        for (shard, owned) in self.shards.iter().zip(&by_shard) {
            if owned.is_empty() {
                continue;
            }
            let found = shard.cache().get_many(owned);
            let missing: Vec<NodeId> =
                owned.iter().zip(&found).filter(|(_, f)| f.is_none()).map(|(&n, _)| n).collect();
            let computed: Vec<(NodeId, Vec<NodeId>)> = missing
                .iter()
                .map(|&n| (n, neutral_topk_neighbors(&self.graph, n, self.config.cache_k)))
                .collect();
            let inserted = shard.cache().insert_many(computed);
            resolved.extend(missing.into_iter().zip(inserted));
            for (&n, hit) in owned.iter().zip(found) {
                if let Some(entry) = hit {
                    resolved.insert(n, entry);
                }
            }
        }
        queries
            .iter()
            .map(|r| {
                let get = |n: NodeId| {
                    resolved
                        .get(&n)
                        .map(Arc::clone)
                        .ok_or(ServingError::Internal("partitioned cache resolve lost a node"))
                };
                Ok((get(r.user)?, get(r.query)?))
            })
            .collect()
    }

    #[inline]
    fn effective_top_k(&self, q: &Query) -> usize {
        if q.top_k == 0 {
            self.config.top_k
        } else {
            q.top_k as usize
        }
    }

    fn validate_nodes(&self, nodes: impl IntoIterator<Item = NodeId>) -> Result<(), ServingError> {
        let num_nodes = self.graph.num_nodes();
        for node in nodes {
            if node as usize >= num_nodes {
                return Err(ServingError::NodeOutOfRange { node, num_nodes });
            }
        }
        Ok(())
    }

    #[inline]
    fn fire_fault(&self, site: FaultSite) {
        if let Some(f) = &self.fault {
            f.fire(site);
        }
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        // Dropping the job senders disconnects every worker's receiver;
        // workers drain in-flight jobs and exit.
        self.job_txs.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl QueryService for ShardedServer {
    fn serve_batch(&self, queries: &[Query]) -> Result<Vec<Retrieval>, ServingError> {
        self.handle_batch(queries)
    }

    fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        ShardedServer::metrics_registry(self)
    }

    fn metrics_snapshot(&self) -> Snapshot {
        ShardedServer::metrics_snapshot(self)
    }

    fn cache_stats(&self) -> CacheStats {
        self.aggregated_cache_stats()
    }
}

/// One shard worker: drain jobs, run the shard's rank stage under
/// `catch_unwind` (an injected panic becomes a `WorkerPanicked` reply, not
/// a dead worker), pass the `ShardReply` fault site, send the reply. A
/// reply the router has stopped waiting for is dropped silently.
fn spawn_worker(
    shard_idx: usize,
    shard: Arc<OnlineServer>,
    rx: channel::Receiver<ShardJob>,
    batches: Counter,
    errors: Counter,
    rank_ns: Histogram,
    fault: Option<Arc<FaultInjector>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok(job) = rx.recv() {
            batches.inc();
            let started = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                let ranked = shard.rank_scored_at(&job.uq, &job.queries, &job.deadline, job.rung);
                // Fired inside the unwind guard: an injected panic here is
                // reported as an errored reply, never a lost worker thread.
                if let Some(f) = &fault {
                    f.fire(FaultSite::ShardReply);
                }
                ranked
            }))
            .unwrap_or(Err(ServingError::WorkerPanicked("shard rank stage panicked")));
            rank_ns.record(started.elapsed().as_nanos() as u64);
            if result.is_err() {
                errors.inc();
            }
            let _ = job.reply.send((shard_idx, result));
        }
    })
}
