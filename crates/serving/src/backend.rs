//! Pluggable retrieval backends behind one `SearchBackend` contract.
//!
//! The paper's ROI retrieval (IVF inverted lists over frozen-tower
//! embeddings) is one point in a family of ANN strategies; Relevance
//! Proximity Graphs search a navigable neighbor graph with the model's own
//! relevance function instead. [`SearchBackend`] captures the full contract
//! [`crate::OnlineServer`] uses — the batched probe, the deadline-bounded
//! probe with budget capping, the exact widening scan, and the obs hook — so
//! the server, degraded-mode ladder, and benches are backend-agnostic.
//!
//! Four implementations:
//! - [`crate::IvfIndex`] via [`IvfBackend`] — the paper's IVF-Flat path,
//!   budget axis = `nprobe` (coarse lists probed per query).
//! - [`ExactSearch`] — the exact flat scan, promoted from recall-baseline
//!   oracle to a first-class backend. Single budget rung; never degraded.
//! - [`crate::ProximityGraph`] — a navigable neighbor graph over the frozen
//!   tower's item embeddings, searched by beam search under the frozen
//!   relevance score; budget axis = beam width.
//! - [`QuantizedIvf`] — IVF over int8-quantized codes with exact f32 rerank
//!   of the shortlist (the billion-tier memory-scaling path); budget axis =
//!   `nprobe`, same rounds discipline as IVF.
//!
//! Dispatch is by the [`Backend`] enum — a `match` per call, no `dyn` and no
//! vtable in the hot loop. The only trait object is the `on_round` hook of
//! the deadline path, which fires once per budget round on the
//! already-degraded branch.

use rayon::prelude::*;
use zoomer_obs::{Counter, MetricsRegistry};
use zoomer_tensor::{dot, Matrix};

use crate::ann::{IvfIndex, PAR_MIN_BATCH_QUERIES};
use crate::deadline::Deadline;
use crate::error::ServingError;
use crate::proximity::ProximityGraph;
use crate::quantized::QuantizedIvf;
use crate::topk::top_k_desc;

/// Which retrieval backend an [`crate::OnlineServer`] builds and serves
/// from; selected by `ServingConfig::backend`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// IVF-Flat inverted lists (the paper's ANN module). Budget: `nprobe`.
    #[default]
    Ivf,
    /// Exact flat scan — full recall, O(pool) per query. Budget: none.
    Exact,
    /// Relevance proximity graph — beam search over a navigable neighbor
    /// graph. Budget: beam width.
    Proximity,
    /// IVF over int8-quantized codes with exact f32 rerank of the
    /// `rerank_factor × k` shortlist — the billion-tier memory-scaling
    /// path. Budget: `nprobe`, like IVF.
    Quantized,
}

impl BackendKind {
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Ivf => "ivf",
            BackendKind::Exact => "exact",
            BackendKind::Proximity => "proximity",
            BackendKind::Quantized => "quantized",
        }
    }
}

/// Outcome of a deadline-aware probe ([`SearchBackend::search_batch_deadline`]):
/// per-query ranked results plus how much of the probe budget actually ran.
#[derive(Clone, Debug)]
pub struct BoundedSearch {
    pub results: Vec<Vec<(u64, f32)>>,
    /// Budget actually spent, in the backend's own units — probe rounds
    /// (= lists per query) for IVF, beam width for the proximity graph.
    /// Strictly smaller than [`BoundedSearch::full_budget`] means the
    /// deadline capped the probe mid-flight (a degraded answer: every query
    /// was still searched at the effective width).
    pub effective_budget: usize,
    /// The configured full width in the same units; what an unbounded probe
    /// would have spent.
    pub full_budget: usize,
}

impl BoundedSearch {
    /// Whether the deadline capped this probe below its configured width.
    pub fn capped(&self) -> bool {
        self.effective_budget < self.full_budget
    }
}

/// Generic per-backend probe counters, registered as `serve.backend.*`.
/// Every backend tallies locally per scoring pass and publishes with one
/// `fetch_add` per counter, like `ann.*` always has.
#[derive(Clone)]
pub struct BackendStats {
    /// Query rows searched (`serve.backend.queries`).
    pub queries: Counter,
    /// Candidate vectors exactly scored (`serve.backend.candidates_scored`):
    /// list members for IVF, expanded graph nodes for the proximity graph,
    /// the whole pool per query for the exact scan.
    pub candidates_scored: Counter,
}

impl BackendStats {
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            queries: registry.counter("serve.backend.queries"),
            candidates_scored: registry.counter("serve.backend.candidates_scored"),
        }
    }
}

/// The full retrieval contract the online server consumes. Everything the
/// server does with an index — the plain batched probe, the deadline-bounded
/// probe, the exact widening scan, sizing checks, and metrics attachment —
/// goes through these methods, so a backend swap touches construction only.
pub trait SearchBackend {
    /// Stable short name for reports and bench axes.
    fn name(&self) -> &'static str;

    /// Number of indexed items.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector width this backend indexes.
    fn dim(&self) -> usize;

    /// Multi-query top-`k` at the backend's configured full width: one query
    /// per row of `queries`, one descending-score result list per query.
    fn search_batch(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError>;

    /// Deadline-aware probe in budget rounds, checking `deadline` between
    /// rounds. Round 0 always completes, so every query gets at least a
    /// minimal-width answer; a capped probe must equal a plain probe at the
    /// smaller width. `on_round(r)` fires at the start of every round (after
    /// the expiry check) — the server's fault-injection point.
    fn search_batch_deadline(
        &self,
        queries: &Matrix,
        k: usize,
        deadline: &Deadline,
        on_round: &mut dyn FnMut(usize),
    ) -> Result<BoundedSearch, ServingError>;

    /// Minimum-width probe: the narrowest answer this backend can produce —
    /// round 0 of the deadline ladder, which always completes (one coarse
    /// list per query for IVF, the entry beam for the proximity graph, the
    /// whole scan for exact). The brownout ladder's prescriptive
    /// `CapBudget` rung probes exactly this, so a forced rung costs the
    /// floor and nothing more. Implemented via the deadline path with an
    /// already-expired budget; backends with a cheaper direct floor may
    /// override.
    fn search_batch_floor(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<BoundedSearch, ServingError> {
        self.search_batch_deadline(
            queries,
            k,
            &Deadline::after(std::time::Duration::ZERO),
            &mut |_| {},
        )
    }

    /// Exact top-`k` for one query — the recall baseline, and the widening
    /// scan the server runs when a probe under-fills `top_k`.
    fn exact_search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, ServingError>;

    /// Batched ranking for the *offline* posting build. Runs once at server
    /// construction, so it may probe wider than the serving path (IVF uses
    /// `nprobe.max(build_nprobe)`); defaults to the plain serving probe.
    fn offline_rank_batch(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        self.search_batch(queries, k)
    }

    /// Report probe volume into `registry` (`serve.backend.*`, plus any
    /// backend-specific counters). Call once at build time, before sharing.
    fn attach_metrics(&mut self, registry: &MetricsRegistry);
}

/// Score one query against a flat `(ids, row-major vectors)` pool by inner
/// product, in pool order. `dot` applies the exact lane scheme `dot4` uses
/// per query, so these scores are bit-identical to any blocked scoring of
/// the same pairs.
pub(crate) fn score_flat(
    ids: &[u64],
    vectors: &[f32],
    dim: usize,
    query: &[f32],
) -> Vec<(u64, f32)> {
    let mut scored = Vec::with_capacity(ids.len());
    for (ei, &id) in ids.iter().enumerate() {
        let v = &vectors[ei * dim..ei * dim + dim];
        scored.push((id, dot(v, query)));
    }
    scored
}

/// [`IvfIndex`] as a [`SearchBackend`]: the index plus its serving-path
/// probe widths. The wrapper adds no arithmetic — every search delegates to
/// the exact `IvfIndex` entry points the server called before the trait
/// existed, so results are bit-identical to the pre-refactor paths
/// (pinned by the `backend_parity` proptest suite).
pub struct IvfBackend {
    index: IvfIndex,
    nprobe: usize,
    build_nprobe: usize,
}

impl IvfBackend {
    pub fn new(index: IvfIndex, nprobe: usize, build_nprobe: usize) -> Self {
        Self { index, nprobe, build_nprobe }
    }

    pub fn index(&self) -> &IvfIndex {
        &self.index
    }

    pub fn nprobe(&self) -> usize {
        self.nprobe
    }
}

impl SearchBackend for IvfBackend {
    fn name(&self) -> &'static str {
        BackendKind::Ivf.name()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn dim(&self) -> usize {
        self.index.dim()
    }

    fn search_batch(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        self.index.search_batch(queries, k, self.nprobe)
    }

    fn search_batch_deadline(
        &self,
        queries: &Matrix,
        k: usize,
        deadline: &Deadline,
        on_round: &mut dyn FnMut(usize),
    ) -> Result<BoundedSearch, ServingError> {
        self.index.search_batch_deadline(queries, k, self.nprobe, deadline, on_round)
    }

    fn exact_search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, ServingError> {
        self.index.exact_search(query, k)
    }

    fn offline_rank_batch(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        // The offline posting ranking runs once at build time, so it probes
        // at least `build_nprobe` lists regardless of the serving `nprobe`.
        self.index.search_batch(queries, k, self.nprobe.max(self.build_nprobe))
    }

    fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.index.attach_metrics(registry);
    }
}

/// Exact inner-product top-`k` over a flat pool — the recall oracle promoted
/// to a first-class backend. Every query scores every item, so recall is 1.0
/// by construction and the cost is O(pool · dim) per query. Deadline
/// semantics: a single budget rung (the scan is all-or-nothing), so the
/// exact backend degrades via the server's inverted-index fallback only,
/// never by capping.
pub struct ExactSearch {
    ids: Vec<u64>,
    vectors: Vec<f32>,
    dim: usize,
    stats: Option<BackendStats>,
}

impl ExactSearch {
    /// Build from `(id, vector)` pairs.
    pub fn build(items: &[(u64, Vec<f32>)]) -> Self {
        assert!(!items.is_empty(), "cannot index an empty collection");
        let dim = items[0].1.len();
        assert!(items.iter().all(|(_, v)| v.len() == dim), "inconsistent vector widths");
        let mut ids = Vec::with_capacity(items.len());
        let mut vectors = Vec::with_capacity(items.len() * dim);
        for (id, v) in items {
            ids.push(*id);
            vectors.extend_from_slice(v);
        }
        Self { ids, vectors, dim, stats: None }
    }

    fn check_width(&self, got: usize) -> Result<(), ServingError> {
        if got != self.dim {
            return Err(ServingError::DimensionMismatch { expected: self.dim, got });
        }
        Ok(())
    }

    fn scan_one(&self, query: &[f32], k: usize) -> Vec<(u64, f32)> {
        top_k_desc(score_flat(&self.ids, &self.vectors, self.dim, query), k)
    }
}

impl SearchBackend for ExactSearch {
    fn name(&self) -> &'static str {
        BackendKind::Exact.name()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search_batch(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        self.check_width(queries.cols())?;
        let rows = queries.rows();
        // Rows are independent full scans, so the parallel split is trivially
        // invisible: same per-row arithmetic regardless of thread count.
        let results: Vec<Vec<(u64, f32)>> = if rows >= PAR_MIN_BATCH_QUERIES {
            (0..rows).into_par_iter().map(|r| self.scan_one(queries.row(r), k)).collect()
        } else {
            (0..rows).map(|r| self.scan_one(queries.row(r), k)).collect()
        };
        if let Some(s) = &self.stats {
            s.queries.add(rows as u64);
            s.candidates_scored.add((rows * self.ids.len()) as u64);
        }
        Ok(results)
    }

    fn search_batch_deadline(
        &self,
        queries: &Matrix,
        k: usize,
        _deadline: &Deadline,
        on_round: &mut dyn FnMut(usize),
    ) -> Result<BoundedSearch, ServingError> {
        // One rung: the flat scan has no narrower width to fall back to, so
        // round 0 (which always completes) is the whole probe. A spent
        // budget is handled above this layer by the inverted-index fallback.
        on_round(0);
        Ok(BoundedSearch {
            results: self.search_batch(queries, k)?,
            effective_budget: 1,
            full_budget: 1,
        })
    }

    fn exact_search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, ServingError> {
        self.check_width(query.len())?;
        if let Some(s) = &self.stats {
            s.queries.inc();
            s.candidates_scored.add(self.ids.len() as u64);
        }
        Ok(self.scan_one(query, k))
    }

    fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.stats = Some(BackendStats::new(registry));
    }
}

/// The server's enum-dispatched backend: one `match` per call, no `dyn` on
/// the request path. Construction policy (which variant, with which widths)
/// lives in `ServerBuilder::build`.
pub enum Backend {
    Ivf(IvfBackend),
    Exact(ExactSearch),
    Proximity(ProximityGraph),
    Quantized(QuantizedIvf),
}

impl Backend {
    pub fn kind(&self) -> BackendKind {
        match self {
            Backend::Ivf(_) => BackendKind::Ivf,
            Backend::Exact(_) => BackendKind::Exact,
            Backend::Proximity(_) => BackendKind::Proximity,
            Backend::Quantized(_) => BackendKind::Quantized,
        }
    }

    /// The wrapped IVF index, when this is the IVF backend (benches and
    /// tests that study IVF-specific knobs).
    pub fn as_ivf(&self) -> Option<&IvfIndex> {
        match self {
            Backend::Ivf(b) => Some(b.index()),
            _ => None,
        }
    }

    /// The wrapped quantized index, when this is the quantized backend
    /// (benches and tests that study quantization-specific knobs).
    pub fn as_quantized(&self) -> Option<&QuantizedIvf> {
        match self {
            Backend::Quantized(b) => Some(b),
            _ => None,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $b:ident => $body:expr) => {
        match $self {
            Backend::Ivf($b) => $body,
            Backend::Exact($b) => $body,
            Backend::Proximity($b) => $body,
            Backend::Quantized($b) => $body,
        }
    };
}

impl SearchBackend for Backend {
    fn name(&self) -> &'static str {
        dispatch!(self, b => b.name())
    }

    fn len(&self) -> usize {
        dispatch!(self, b => b.len())
    }

    fn dim(&self) -> usize {
        dispatch!(self, b => b.dim())
    }

    fn search_batch(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        dispatch!(self, b => b.search_batch(queries, k))
    }

    fn search_batch_deadline(
        &self,
        queries: &Matrix,
        k: usize,
        deadline: &Deadline,
        on_round: &mut dyn FnMut(usize),
    ) -> Result<BoundedSearch, ServingError> {
        dispatch!(self, b => b.search_batch_deadline(queries, k, deadline, on_round))
    }

    fn search_batch_floor(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<BoundedSearch, ServingError> {
        dispatch!(self, b => b.search_batch_floor(queries, k))
    }

    fn exact_search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, ServingError> {
        dispatch!(self, b => b.exact_search(query, k))
    }

    fn offline_rank_batch(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        dispatch!(self, b => b.offline_rank_batch(queries, k))
    }

    fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        dispatch!(self, b => b.attach_metrics(registry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use zoomer_tensor::seeded_rng;

    fn random_items(n: usize, dim: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
        let mut rng = seeded_rng(seed);
        (0..n as u64).map(|id| (id, (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())).collect()
    }

    fn query_matrix(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = seeded_rng(seed);
        Matrix::from_vec(n, dim, (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
    }

    #[test]
    fn exact_backend_finds_true_topk() {
        let items = random_items(200, 8, 21);
        let exact = ExactSearch::build(&items);
        assert_eq!(exact.len(), 200);
        assert_eq!(exact.dim(), 8);
        let q = &items[17].1;
        let got = exact.exact_search(q, 5).expect("scan");
        assert_eq!(got.len(), 5);
        // Brute force over the same dot products.
        let mut brute: Vec<(u64, f32)> =
            items.iter().map(|(id, v)| (*id, zoomer_tensor::dot(v, q))).collect();
        brute.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (g, b) in got.iter().zip(&brute) {
            assert_eq!(g.0, b.0);
            assert_eq!(g.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn exact_backend_batch_matches_single_and_any_parallel_split() {
        let items = random_items(150, 8, 22);
        let exact = ExactSearch::build(&items);
        // Cross the PAR_MIN_BATCH_QUERIES threshold to cover the rayon path.
        let m = query_matrix(PAR_MIN_BATCH_QUERIES + 5, 8, 23);
        let batched = exact.search_batch(&m, 7).expect("batch");
        assert_eq!(batched.len(), m.rows());
        for (r, row) in batched.iter().enumerate() {
            let single = exact.exact_search(m.row(r), 7).expect("single");
            assert_eq!(row, &single, "row {r}");
        }
    }

    #[test]
    fn exact_backend_deadline_is_one_uncapped_rung() {
        let items = random_items(60, 4, 24);
        let exact = ExactSearch::build(&items);
        let m = query_matrix(3, 4, 25);
        let mut rounds = Vec::new();
        let bounded = exact
            .search_batch_deadline(&m, 5, &Deadline::after(std::time::Duration::ZERO), &mut |r| {
                rounds.push(r)
            })
            .expect("bounded");
        assert_eq!(rounds, vec![0], "the scan is a single always-completing rung");
        assert!(!bounded.capped(), "the exact scan can never be capped");
        assert_eq!(bounded.results, exact.search_batch(&m, 5).expect("plain"));
    }

    #[test]
    fn ivf_backend_delegates_bitwise_to_the_raw_index() {
        let items = random_items(300, 8, 26);
        let raw = IvfIndex::build(&items, 10, 4, 26);
        let wrapped = IvfBackend::new(IvfIndex::build(&items, 10, 4, 26), 3, 4);
        let m = query_matrix(9, 8, 27);
        assert_eq!(
            wrapped.search_batch(&m, 6).expect("backend"),
            raw.search_batch(&m, 6, 3).expect("raw"),
            "the wrapper must add no arithmetic"
        );
        let bounded =
            wrapped.search_batch_deadline(&m, 6, &Deadline::none(), &mut |_| {}).expect("bounded");
        assert!(!bounded.capped());
        assert_eq!(bounded.full_budget, 3);
        assert_eq!(bounded.results, raw.search_batch(&m, 6, 3).expect("raw"));
        // Offline ranking probes nprobe.max(build_nprobe).
        assert_eq!(
            wrapped.offline_rank_batch(&m, 6).expect("offline"),
            raw.search_batch(&m, 6, 4).expect("raw wide"),
        );
    }

    #[test]
    fn floor_probe_is_the_minimum_width_probe() {
        let items = random_items(300, 8, 33);
        let wrapped = IvfBackend::new(IvfIndex::build(&items, 10, 4, 33), 3, 4);
        let raw = IvfIndex::build(&items, 10, 4, 33);
        let m = query_matrix(5, 8, 34);
        let floor = wrapped.search_batch_floor(&m, 6).expect("floor");
        assert_eq!(floor.effective_budget, 1, "the floor is one probe round");
        assert!(floor.capped(), "a floor probe below full width reports capped");
        assert_eq!(
            floor.results,
            raw.search_batch(&m, 6, 1).expect("nprobe=1"),
            "the floor probe equals a plain probe at the minimum width"
        );
        // The exact scan has no narrower width: its floor is the full scan.
        let exact = ExactSearch::build(&items);
        let floor = exact.search_batch_floor(&m, 6).expect("floor");
        assert!(!floor.capped());
        assert_eq!(floor.results, exact.search_batch(&m, 6).expect("plain"));
    }

    #[test]
    fn enum_dispatch_matches_the_wrapped_backend() {
        let items = random_items(120, 8, 28);
        let exact = Backend::Exact(ExactSearch::build(&items));
        let direct = ExactSearch::build(&items);
        let m = query_matrix(4, 8, 29);
        assert_eq!(exact.name(), "exact");
        assert_eq!(exact.kind(), BackendKind::Exact);
        assert!(exact.as_ivf().is_none());
        assert_eq!(exact.len(), direct.len());
        assert_eq!(
            exact.search_batch(&m, 5).expect("enum"),
            direct.search_batch(&m, 5).expect("direct")
        );
        let ivf = Backend::Ivf(IvfBackend::new(IvfIndex::build(&items, 6, 3, 28), 2, 4));
        assert_eq!(ivf.kind(), BackendKind::Ivf);
        assert!(ivf.as_ivf().is_some());
    }

    #[test]
    fn wrong_query_width_is_a_typed_error() {
        let items = random_items(20, 4, 30);
        let exact = ExactSearch::build(&items);
        let err = exact.exact_search(&[0.0; 3], 1).expect_err("width mismatch");
        assert_eq!(err, ServingError::DimensionMismatch { expected: 4, got: 3 });
        let err = exact.search_batch(&Matrix::zeros(2, 5), 1).expect_err("width mismatch");
        assert_eq!(err, ServingError::DimensionMismatch { expected: 4, got: 5 });
        assert!(exact.search_batch(&Matrix::zeros(0, 9), 1).expect("empty").is_empty());
    }

    #[test]
    fn backend_stats_count_queries_and_candidates() {
        let registry = MetricsRegistry::enabled();
        let items = random_items(50, 4, 31);
        let mut exact = ExactSearch::build(&items);
        exact.attach_metrics(&registry);
        let m = query_matrix(3, 4, 32);
        exact.search_batch(&m, 5).expect("batch");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.backend.queries"), Some(3));
        assert_eq!(snap.counter("serve.backend.candidates_scored"), Some(150));
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_build_panics() {
        let _ = ExactSearch::build(&[]);
    }
}
