//! Relevance proximity graph: navigable-graph retrieval under the frozen
//! relevance score.
//!
//! Relevance Proximity Graphs (PAPERS.md) observe that for relevance
//! retrieval it pays to search a navigable neighbor graph with the *model's
//! own* relevance function rather than cosine-against-centroids. Our frozen
//! tower already defines that function: relevance between a request and an
//! item is the inner product of their tower embeddings — exactly what the
//! IVF backend scores, reused here as the beam-search objective.
//!
//! Construction is incremental small-world insertion: items are inserted in
//! pool order, each new item beam-searches the partial graph for its
//! nearest existing items (Euclidean over the same embeddings — a symmetric
//! proximity for navigable edges), links to the best `degree`, and links
//! back reciprocally with the neighbor lists pruned to the `degree` closest.
//! Every step is deterministic, so the same item pool always builds the
//! same graph.
//!
//! Search is standard best-first beam search from a fixed medoid entry
//! point: expand the best unexpanded node, score its unvisited neighbors by
//! the frozen relevance (inner product with the request embedding), keep
//! the best `beam_width` seen, stop when the best frontier candidate cannot
//! improve the pool. The deadline rung caps **beam width** instead of
//! `nprobe`: an at-risk probe climbs an ascending ladder of beam widths and
//! keeps the last fully-completed rung, so a capped probe equals a plain
//! probe at the smaller beam.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rayon::prelude::*;
use zoomer_obs::MetricsRegistry;
use zoomer_tensor::{dot, Matrix};

use crate::ann::PAR_MIN_BATCH_QUERIES;
use crate::backend::{score_flat, BackendKind, BackendStats, BoundedSearch, SearchBackend};
use crate::deadline::Deadline;
use crate::error::ServingError;
use crate::topk::top_k_desc;

/// A beam-search candidate with a total order: score first (IEEE total
/// order, so NaN cannot panic the heap), node index as the deterministic
/// tie-break.
#[derive(Clone, Copy, PartialEq)]
struct Cand {
    score: f32,
    node: u32,
}

impl Eq for Cand {}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score.total_cmp(&other.score).then(self.node.cmp(&other.node))
    }
}

/// Navigable neighbor graph over frozen-tower item embeddings, searched by
/// beam search under the frozen relevance score (inner product).
pub struct ProximityGraph {
    ids: Vec<u64>,
    /// Item embeddings, row-major (`vectors.len() == ids.len() * dim`).
    vectors: Vec<f32>,
    dim: usize,
    /// CSR adjacency: node `n`'s out-neighbors are
    /// `neighbors[offsets[n]..offsets[n + 1]]`.
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    degree: usize,
    beam_width: usize,
    /// Search entry point: the pool medoid (closest item to the pool mean),
    /// a deterministic, query-independent start.
    entry: u32,
    stats: Option<BackendStats>,
}

impl ProximityGraph {
    /// Build from `(id, vector)` pairs with out-degree `degree` and serving
    /// beam width `beam_width` (both clamped to sane minima).
    pub fn build(items: &[(u64, Vec<f32>)], degree: usize, beam_width: usize) -> Self {
        assert!(!items.is_empty(), "cannot index an empty collection");
        let dim = items[0].1.len();
        assert!(items.iter().all(|(_, v)| v.len() == dim), "inconsistent vector widths");
        let n = items.len();
        let degree = degree.max(1).min(n.saturating_sub(1).max(1));
        let beam_width = beam_width.max(1);

        let mut ids = Vec::with_capacity(n);
        let mut vectors = Vec::with_capacity(n * dim);
        for (id, v) in items {
            ids.push(*id);
            vectors.extend_from_slice(v);
        }
        let row = |i: u32| -> &[f32] {
            let i = i as usize;
            &vectors[i * dim..i * dim + dim]
        };

        // Incremental insertion: each new node beam-searches the partial
        // graph for its nearest existing nodes (Euclidean — symmetric, so
        // reciprocal edges stay meaningful) and links both ways. The build
        // beam is wider than the out-degree so the candidate set is not
        // starved on skewed pools. `parent[i]` remembers each node's nearest
        // neighbor at insertion time; those edges are exempt from pruning
        // and materialized in both directions below, embedding a spanning
        // tree in the adjacency so every node stays reachable no matter how
        // the reciprocal edges get pruned.
        let build_beam = (2 * degree).max(16).min(n);
        let mut adj: Vec<Vec<u32>> = vec![Vec::with_capacity(degree + 1); n];
        let mut parent = vec![0u32; n];
        for i in 1..n as u32 {
            let v = row(i);
            let (found, _) = beam_search(
                0,
                build_beam,
                n,
                |node| adj[node as usize].as_slice(),
                |node| -euclidean2(row(node), v),
            );
            let picked: Vec<u32> = found.into_iter().take(degree).map(|(node, _)| node).collect();
            parent[i as usize] = picked[0];
            for &j in &picked {
                adj[j as usize].push(i);
                if adj[j as usize].len() > degree {
                    // Prune back to the `degree` closest by the same metric.
                    let vj = row(j);
                    let mut ranked: Vec<(f32, u32)> =
                        adj[j as usize].iter().map(|&x| (euclidean2(row(x), vj), x)).collect();
                    ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    ranked.truncate(degree);
                    adj[j as usize] = ranked.into_iter().map(|(_, x)| x).collect();
                }
            }
            adj[i as usize] = picked;
        }
        // Splice the spanning-tree backbone back in, both directions.
        for i in 1..n {
            let p = parent[i] as usize;
            if !adj[i].contains(&(p as u32)) {
                adj[i].push(p as u32);
            }
            if !adj[p].contains(&(i as u32)) {
                adj[p].push(i as u32);
            }
        }

        // Flatten to CSR and pick the medoid entry point.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for a in &adj {
            neighbors.extend_from_slice(a);
            offsets.push(neighbors.len() as u32);
        }
        let mut mean = vec![0.0f32; dim];
        for i in 0..n {
            for (m, &x) in mean.iter_mut().zip(&vectors[i * dim..i * dim + dim]) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let mut entry = 0u32;
        let mut best = f32::INFINITY;
        for i in 0..n as u32 {
            let d = euclidean2(row(i), &mean);
            if d < best {
                best = d;
                entry = i;
            }
        }
        Self { ids, vectors, dim, offsets, neighbors, degree, beam_width, entry, stats: None }
    }

    pub fn degree(&self) -> usize {
        self.degree
    }

    pub fn beam_width(&self) -> usize {
        self.beam_width
    }

    /// Re-aim the serving beam width without rebuilding the graph (the graph
    /// structure does not depend on it) — bench sweeps use this to trace the
    /// recall/latency tradeoff on one build.
    pub fn set_beam_width(&mut self, beam_width: usize) {
        self.beam_width = beam_width.max(1);
    }

    fn neighbors_of(&self, node: u32) -> &[u32] {
        let n = node as usize;
        &self.neighbors[self.offsets[n] as usize..self.offsets[n + 1] as usize]
    }

    fn vector_of(&self, node: u32) -> &[f32] {
        let i = node as usize;
        &self.vectors[i * self.dim..i * self.dim + self.dim]
    }

    fn check_width(&self, got: usize) -> Result<(), ServingError> {
        if got != self.dim {
            return Err(ServingError::DimensionMismatch { expected: self.dim, got });
        }
        Ok(())
    }

    /// Beam-search one query at an explicit beam width; returns ranked
    /// `(id, score)` and the number of candidates scored.
    fn search_one(&self, query: &[f32], k: usize, beam: usize) -> (Vec<(u64, f32)>, u64) {
        let (found, scored) = beam_search(
            self.entry,
            beam.max(1),
            self.ids.len(),
            |node| self.neighbors_of(node),
            |node| dot(self.vector_of(node), query),
        );
        let ranked: Vec<(u64, f32)> =
            found.into_iter().take(k).map(|(node, s)| (self.ids[node as usize], s)).collect();
        (ranked, scored)
    }

    /// Score all query rows at one beam width. The parallel split is by row,
    /// each row an independent beam search, so results never depend on
    /// thread count.
    fn search_rows(
        &self,
        queries: &Matrix,
        k: usize,
        beam: usize,
        parallel: bool,
    ) -> (Vec<Vec<(u64, f32)>>, u64) {
        let rows = queries.rows();
        let per_row: Vec<(Vec<(u64, f32)>, u64)> = if parallel && rows >= PAR_MIN_BATCH_QUERIES {
            (0..rows).into_par_iter().map(|r| self.search_one(queries.row(r), k, beam)).collect()
        } else {
            (0..rows).map(|r| self.search_one(queries.row(r), k, beam)).collect()
        };
        let mut scored = 0u64;
        let mut results = Vec::with_capacity(rows);
        for (res, s) in per_row {
            scored += s;
            results.push(res);
        }
        (results, scored)
    }

    /// The ascending beam-width ladder the deadline probe climbs:
    /// `beam/8 → beam/4 → beam/2 → beam` (deduplicated, minimum 1). Rung 0
    /// always completes, so every query gets at least a narrow-beam answer.
    fn budget_ladder(&self) -> Vec<usize> {
        let mut widths: Vec<usize> =
            [8usize, 4, 2, 1].iter().map(|&d| (self.beam_width / d).max(1)).collect();
        widths.dedup();
        widths
    }

    /// Recall@k of a narrow beam against this graph's own exact scan.
    pub fn recall_at_k(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        beam: usize,
    ) -> Result<f64, ServingError> {
        if queries.is_empty() {
            return Ok(1.0);
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in queries {
            self.check_width(q.len())?;
            let (approx, _) = self.search_one(q, k, beam);
            let approx: std::collections::HashSet<u64> =
                approx.into_iter().map(|(id, _)| id).collect();
            for (id, _) in self.exact_search(q, k)? {
                total += 1;
                if approx.contains(&id) {
                    hits += 1;
                }
            }
        }
        Ok(hits as f64 / total.max(1) as f64)
    }
}

impl SearchBackend for ProximityGraph {
    fn name(&self) -> &'static str {
        BackendKind::Proximity.name()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search_batch(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        self.check_width(queries.cols())?;
        let (results, scored) = self.search_rows(queries, k, self.beam_width, true);
        if let Some(s) = &self.stats {
            s.queries.add(queries.rows() as u64);
            s.candidates_scored.add(scored);
        }
        Ok(results)
    }

    /// Deadline-aware probe over the beam-width ladder: rung `r` re-searches
    /// every query at `budget_ladder()[r]`, the expiry check runs between
    /// rungs, and the last completed rung's results stand. Like the IVF
    /// round-major probe this runs on the calling thread — the degraded path
    /// trades batch parallelism for the between-rungs budget check.
    fn search_batch_deadline(
        &self,
        queries: &Matrix,
        k: usize,
        deadline: &Deadline,
        on_round: &mut dyn FnMut(usize),
    ) -> Result<BoundedSearch, ServingError> {
        let full = self.beam_width;
        if queries.rows() == 0 {
            return Ok(BoundedSearch {
                results: Vec::new(),
                effective_budget: full,
                full_budget: full,
            });
        }
        self.check_width(queries.cols())?;
        let ladder = self.budget_ladder();
        let mut results = Vec::new();
        let mut effective = 0usize;
        let mut scored = 0u64;
        for (r, &width) in ladder.iter().enumerate() {
            if r > 0 && deadline.expired() {
                break;
            }
            on_round(r);
            let (res, s) = self.search_rows(queries, k, width, false);
            results = res;
            scored += s;
            effective = width;
        }
        if let Some(s) = &self.stats {
            s.queries.add(queries.rows() as u64);
            s.candidates_scored.add(scored);
        }
        Ok(BoundedSearch { results, effective_budget: effective, full_budget: full })
    }

    fn exact_search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, ServingError> {
        self.check_width(query.len())?;
        if let Some(s) = &self.stats {
            s.queries.inc();
            s.candidates_scored.add(self.ids.len() as u64);
        }
        Ok(top_k_desc(score_flat(&self.ids, &self.vectors, self.dim, query), k))
    }

    fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.stats = Some(BackendStats::new(registry));
    }
}

/// Best-first beam search over an adjacency closure: expand the best
/// unexpanded node, keep the `beam` best seen, stop when the best frontier
/// entry cannot beat the worst pooled one. Returns the pool best-first plus
/// the number of nodes scored. Deterministic: the heap order is total
/// (score, then node index).
fn beam_search<'a>(
    entry: u32,
    beam: usize,
    n: usize,
    neighbors_of: impl Fn(u32) -> &'a [u32],
    score: impl Fn(u32) -> f32,
) -> (Vec<(u32, f32)>, u64) {
    let mut visited = vec![false; n];
    let mut frontier: BinaryHeap<Cand> = BinaryHeap::new();
    let mut pool: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
    let first = Cand { score: score(entry), node: entry };
    let mut scored = 1u64;
    visited[entry as usize] = true;
    frontier.push(first);
    pool.push(Reverse(first));
    while let Some(c) = frontier.pop() {
        if pool.len() >= beam {
            if let Some(Reverse(worst)) = pool.peek() {
                if c < *worst {
                    break;
                }
            }
        }
        for &nb in neighbors_of(c.node) {
            if !visited[nb as usize] {
                visited[nb as usize] = true;
                let cand = Cand { score: score(nb), node: nb };
                scored += 1;
                if pool.len() < beam {
                    pool.push(Reverse(cand));
                    frontier.push(cand);
                } else if let Some(Reverse(worst)) = pool.peek() {
                    if cand > *worst {
                        pool.pop();
                        pool.push(Reverse(cand));
                        frontier.push(cand);
                    }
                }
            }
        }
    }
    let ranked: Vec<(u32, f32)> =
        pool.into_sorted_vec().into_iter().map(|Reverse(c)| (c.node, c.score)).collect();
    (ranked, scored)
}

fn euclidean2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use zoomer_tensor::seeded_rng;

    fn random_items(n: usize, dim: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
        let mut rng = seeded_rng(seed);
        (0..n as u64)
            .map(|id| (id + 1000, (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()))
            .collect()
    }

    fn query_matrix(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = seeded_rng(seed);
        Matrix::from_vec(n, dim, (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
    }

    #[test]
    fn indexes_every_item_within_degree_bounds() {
        let items = random_items(200, 8, 41);
        let g = ProximityGraph::build(&items, 8, 32);
        assert_eq!(g.len(), 200);
        assert_eq!(g.dim(), 8);
        assert_eq!(g.degree(), 8);
        assert_eq!(g.beam_width(), 32);
        // Per-node fan-out is `degree` pruned edges plus the never-pruned
        // spanning-tree backbone, so the total stays linear in the pool.
        assert!(g.neighbors.len() <= 200 * (8 + 2), "adjacency too dense");
        for node in 0..200u32 {
            assert!(!g.neighbors_of(node).is_empty(), "node {node} isolated");
        }
        // Every non-entry node is reachable: a full-beam search visits all.
        let q = vec![0.0f32; 8];
        let (found, _) = g.search_one(&q, 200, 200);
        assert_eq!(found.len(), 200, "graph must be connected by construction");
    }

    #[test]
    fn full_beam_search_matches_the_exact_scan() {
        let items = random_items(150, 8, 42);
        let g = ProximityGraph::build(&items, 6, 150);
        let m = query_matrix(8, 8, 43);
        let results = g.search_batch(&m, 10).expect("batch");
        for (r, got) in results.iter().enumerate() {
            let exact = g.exact_search(m.row(r), 10).expect("exact");
            let got_ids: Vec<u64> = got.iter().map(|&(id, _)| id).collect();
            let exact_ids: Vec<u64> = exact.iter().map(|&(id, _)| id).collect();
            assert_eq!(got_ids, exact_ids, "row {r}: full beam must reach exact recall");
            for (a, b) in got.iter().zip(&exact) {
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "row {r}: same relevance arithmetic");
            }
        }
    }

    #[test]
    fn batch_matches_single_rows_across_the_parallel_threshold() {
        let items = random_items(120, 8, 44);
        let g = ProximityGraph::build(&items, 6, 24);
        let m = query_matrix(PAR_MIN_BATCH_QUERIES + 3, 8, 45);
        let batched = g.search_batch(&m, 9).expect("batch");
        for (r, row) in batched.iter().enumerate() {
            let (single, _) = g.search_one(m.row(r), 9, 24);
            assert_eq!(row, &single, "row {r} depends on batch composition");
        }
    }

    #[test]
    fn recall_improves_with_beam_width_and_saturates() {
        let items = random_items(400, 16, 46);
        let g = ProximityGraph::build(&items, 10, 64);
        let queries: Vec<Vec<f32>> = random_items(25, 16, 47).into_iter().map(|(_, v)| v).collect();
        let narrow = g.recall_at_k(&queries, 10, 2).expect("recall");
        let mid = g.recall_at_k(&queries, 10, 16).expect("recall");
        let full = g.recall_at_k(&queries, 10, 400).expect("recall");
        assert!(narrow <= mid + 1e-9 && mid <= full + 1e-9, "{narrow} {mid} {full}");
        assert!((full - 1.0).abs() < 1e-9, "a pool-wide beam must be exact");
        assert!(mid > 0.5, "beam=16 recall too low: {mid}");
    }

    #[test]
    fn unbounded_deadline_climbs_the_whole_ladder() {
        let items = random_items(200, 8, 48);
        let g = ProximityGraph::build(&items, 6, 32);
        let m = query_matrix(5, 8, 49);
        let mut rounds = Vec::new();
        let bounded = g
            .search_batch_deadline(&m, 10, &Deadline::none(), &mut |r| rounds.push(r))
            .expect("bounded");
        assert_eq!(rounds, vec![0, 1, 2, 3], "ladder 4/8/16/32 = four rungs");
        assert!(!bounded.capped());
        assert_eq!(bounded.effective_budget, 32);
        assert_eq!(bounded.full_budget, 32);
        // The final rung runs at the full beam, so results match the plain probe.
        assert_eq!(bounded.results, g.search_batch(&m, 10).expect("plain"));
    }

    #[test]
    fn expired_deadline_caps_to_the_first_rung() {
        let items = random_items(200, 8, 50);
        let g = ProximityGraph::build(&items, 6, 32);
        let m = query_matrix(4, 8, 51);
        let bounded = g
            .search_batch_deadline(&m, 10, &Deadline::after(std::time::Duration::ZERO), &mut |_| {})
            .expect("bounded");
        assert!(bounded.capped());
        assert_eq!(bounded.effective_budget, 4, "rung 0 = beam/8 always completes");
        // A capped probe equals a plain probe at the smaller beam.
        let (narrow, _) = g.search_rows(&m, 10, 4, false);
        assert_eq!(bounded.results, narrow);
    }

    #[test]
    fn deadline_expiring_mid_ladder_keeps_the_last_completed_rung() {
        let items = random_items(200, 8, 52);
        let g = ProximityGraph::build(&items, 6, 32);
        let m = query_matrix(4, 8, 53);
        let deadline = Deadline::after(std::time::Duration::from_millis(5));
        let bounded = g
            .search_batch_deadline(&m, 10, &deadline, &mut |r| {
                if r == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            })
            .expect("bounded");
        assert_eq!(bounded.effective_budget, 8, "rungs 0 and 1 completed");
        let (narrow, _) = g.search_rows(&m, 10, 8, false);
        assert_eq!(bounded.results, narrow);
    }

    #[test]
    fn single_item_and_tiny_pools_serve() {
        let g = ProximityGraph::build(&[(7u64, vec![1.0, 0.0])], 4, 8);
        let got = g.exact_search(&[1.0, 0.0], 3).expect("scan");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 7);
        let (res, _) = g.search_one(&[1.0, 0.0], 3, 8);
        assert_eq!(res[0].0, 7);
    }

    #[test]
    fn wrong_query_width_is_a_typed_error() {
        let items = random_items(20, 4, 54);
        let g = ProximityGraph::build(&items, 4, 8);
        let err = g.exact_search(&[0.0; 3], 1).expect_err("width mismatch");
        assert_eq!(err, ServingError::DimensionMismatch { expected: 4, got: 3 });
        assert!(g.search_batch(&Matrix::zeros(0, 9), 1).expect("empty").is_empty());
    }

    #[test]
    fn same_pool_builds_the_same_graph() {
        let items = random_items(100, 8, 55);
        let a = ProximityGraph::build(&items, 6, 16);
        let b = ProximityGraph::build(&items, 6, 16);
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.entry, b.entry);
    }
}
