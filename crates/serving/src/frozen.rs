//! Re-export shim: the frozen model moved to `zoomer_model::frozen` so the
//! offline evaluation path can share the batched embedding entry points with
//! serving without depending on this crate. Kept so existing
//! `zoomer_serving::frozen::FrozenModel` paths keep compiling.

pub use zoomer_model::frozen::*;
