//! A frozen, thread-safe snapshot of a trained model for the serving path.
//!
//! §VII-E: online, Zoomer decouples neighbor sampling from aggregation via
//! caches and "only conserves the most effective attention part —
//! edge-level attention". This snapshot precomputes every node's base
//! embedding (feature embeddings + dense projection, no tape) and keeps just
//! the parameter matrices the online path needs, so request handling is pure
//! `&self` f32 math — shareable across server threads.

use zoomer_graph::{HeteroGraph, NodeId, NodeType};
use zoomer_model::encoder::TableSet;
use zoomer_model::{CtrModel, UnifiedCtrModel};
use zoomer_tensor::numerics::leaky_relu;
use zoomer_tensor::{stable_softmax, Matrix};

/// Frozen parameters + precomputed node embeddings.
pub struct FrozenModel {
    embed_dim: usize,
    /// Base (self) embedding per node id.
    node_base: Vec<Vec<f32>>,
    /// Space-map matrix per node type (focal construction).
    map_w: Vec<Matrix>,
    /// Edge-level attention vector (layer 1).
    att_edge: Vec<f32>,
    /// Combine layer (layer 1).
    comb_w: Matrix,
    comb_b: Vec<f32>,
    /// Twin towers.
    uq_w: Matrix,
    uq_b: Vec<f32>,
    item_w: Matrix,
    item_b: Vec<f32>,
}

impl FrozenModel {
    /// Snapshot a trained model against its graph.
    pub fn from_model(model: &mut UnifiedCtrModel, graph: &HeteroGraph) -> Self {
        let d = model.config().embed_dim;
        let store = model.store();
        let map_w: Vec<Matrix> = NodeType::ALL
            .iter()
            .map(|t| store.get(&format!("map.{}.w", t.name())).clone())
            .collect();
        let att_edge = store.get("att.edge.l1").as_slice().to_vec();
        let comb_w = store.get("comb.l1.w").clone();
        let comb_b = store.get("comb.l1.b").as_slice().to_vec();
        let uq_w = store.get("tower.uq.w").clone();
        let uq_b = store.get("tower.uq.b").as_slice().to_vec();
        let item_w = store.get("tower.item.w").clone();
        let item_b = store.get("tower.item.b").as_slice().to_vec();
        // Dense projections, needed before the mutable-borrow loop below.
        let feat_w: Vec<Matrix> = NodeType::ALL
            .iter()
            .map(|t| store.get(&format!("feat.{}.w", t.name())).clone())
            .collect();

        let mut node_base = Vec::with_capacity(graph.num_nodes());
        for n in 0..graph.num_nodes() as NodeId {
            let ty = graph.node_type(n);
            let fields = graph.fields(n);
            let mut acc = vec![0.0f32; d];
            for (idx, &value) in fields.iter().enumerate() {
                let name = TableSet::table_name(ty, idx);
                let row = model
                    .tables_mut()
                    .get_or_create_named(&name)
                    .peek(value as u64);
                for (a, &x) in acc.iter_mut().zip(&row) {
                    *a += x;
                }
            }
            // Dense-projection row.
            let dense = Matrix::row_vector(graph.dense_feature(n));
            let proj = dense.matmul(&feat_w[ty.as_u8() as usize]);
            for (a, &x) in acc.iter_mut().zip(proj.as_slice()) {
                *a += x;
            }
            // Mean over (fields + 1) rows — matches the offline
            // self-embedding without feature attention.
            let inv = 1.0 / (fields.len() + 1) as f32;
            for a in &mut acc {
                *a *= inv;
            }
            node_base.push(acc);
        }
        Self {
            embed_dim: d,
            node_base,
            map_w,
            att_edge,
            comb_w,
            comb_b,
            uq_w,
            uq_b,
            item_w,
            item_b,
        }
    }

    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    pub fn num_nodes(&self) -> usize {
        self.node_base.len()
    }

    /// The precomputed base embedding of a node.
    pub fn base(&self, n: NodeId) -> &[f32] {
        &self.node_base[n as usize]
    }

    /// Focal vector for a (user, query) pair: space-mapped base embeddings,
    /// summed.
    pub fn focal_vector(&self, graph: &HeteroGraph, focals: &[NodeId]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.embed_dim];
        for &f in focals {
            let ty = graph.node_type(f);
            let mapped =
                Matrix::row_vector(self.base(f)).matmul(&self.map_w[ty.as_u8() as usize]);
            for (a, &x) in acc.iter_mut().zip(mapped.as_slice()) {
                *a += x;
            }
        }
        acc
    }

    /// Edge-level attention weights of `neighbors` for ego `node` under the
    /// focal vector — the only attention kept online (§VII-E).
    pub fn edge_attention(&self, node: NodeId, neighbors: &[NodeId], focal: &[f32]) -> Vec<f32> {
        let zi = self.base(node);
        let scores: Vec<f32> = neighbors
            .iter()
            .map(|&j| {
                let zj = self.base(j);
                // aᵀ [zi ‖ zj ‖ c]
                let d = self.embed_dim;
                let mut s = 0.0f32;
                for (k, &a) in self.att_edge.iter().enumerate() {
                    let x = if k < d {
                        zi[k]
                    } else if k < 2 * d {
                        zj[k - d]
                    } else {
                        focal[k - 2 * d]
                    };
                    s += a * x;
                }
                leaky_relu(s)
            })
            .collect();
        stable_softmax(&scores)
    }

    /// One-hop online node embedding: edge attention over cached neighbors,
    /// then the combine layer. Falls back to the base embedding for isolated
    /// nodes.
    pub fn online_embedding(&self, node: NodeId, neighbors: &[NodeId], focal: &[f32]) -> Vec<f32> {
        let zi = self.base(node);
        if neighbors.is_empty() {
            return zi.to_vec();
        }
        let alpha = self.edge_attention(node, neighbors, focal);
        let mut agg = vec![0.0f32; self.embed_dim];
        for (&j, &w) in neighbors.iter().zip(&alpha) {
            for (a, &x) in agg.iter_mut().zip(self.base(j)) {
                *a += w * x;
            }
        }
        // tanh([zi ‖ agg]·W + b)
        let mut cat = Vec::with_capacity(2 * self.embed_dim);
        cat.extend_from_slice(zi);
        cat.extend_from_slice(&agg);
        let lin = Matrix::row_vector(&cat).matmul(&self.comb_w);
        lin.as_slice()
            .iter()
            .zip(&self.comb_b)
            .map(|(&x, &b)| (x + b).tanh())
            .collect()
    }

    /// Request-side embedding: online user and query embeddings through the
    /// UQ tower.
    pub fn request_embedding(
        &self,
        user: NodeId,
        query: NodeId,
        user_neighbors: &[NodeId],
        query_neighbors: &[NodeId],
        focal: &[f32],
    ) -> Vec<f32> {
        let zu = self.online_embedding(user, user_neighbors, focal);
        let zq = self.online_embedding(query, query_neighbors, focal);
        let mut cat = Vec::with_capacity(2 * self.embed_dim);
        cat.extend_from_slice(&zu);
        cat.extend_from_slice(&zq);
        let lin = Matrix::row_vector(&cat).matmul(&self.uq_w);
        lin.as_slice()
            .iter()
            .zip(&self.uq_b)
            .map(|(&x, &b)| x + b)
            .collect()
    }

    /// Item-side embedding for the ANN index (matches the offline item
    /// tower).
    pub fn item_embedding(&self, item: NodeId) -> Vec<f32> {
        let lin = Matrix::row_vector(self.base(item)).matmul(&self.item_w);
        lin.as_slice()
            .iter()
            .zip(&self.item_b)
            .map(|(&x, &b)| x + b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_data::{TaobaoConfig, TaobaoData};
    use zoomer_model::{CtrModel, ModelConfig};

    fn setup() -> (TaobaoData, FrozenModel) {
        let data = TaobaoData::generate(TaobaoConfig::tiny(71));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(7, dd));
        let frozen = FrozenModel::from_model(&mut model, &data.graph);
        (data, frozen)
    }

    #[test]
    fn snapshot_covers_all_nodes() {
        let (data, frozen) = setup();
        assert_eq!(frozen.num_nodes(), data.graph.num_nodes());
        assert_eq!(frozen.embed_dim(), 16);
        for n in 0..data.graph.num_nodes() as NodeId {
            assert_eq!(frozen.base(n).len(), 16);
            assert!(frozen.base(n).iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn item_embedding_matches_offline_tower() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(72));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(8, dd));
        let item = data.first_item_node();
        let offline = model.item_embedding(&data.graph, item);
        let frozen = FrozenModel::from_model(&mut model, &data.graph);
        let online = frozen.item_embedding(item);
        for (a, b) in offline.iter().zip(&online) {
            assert!((a - b).abs() < 1e-5, "offline {a} vs frozen {b}");
        }
    }

    #[test]
    fn edge_attention_is_distribution() {
        let (data, frozen) = setup();
        let items = data.item_nodes();
        let focal = frozen.focal_vector(&data.graph, &[0, data.config.num_users as NodeId]);
        let alpha = frozen.edge_attention(0, &items[..6], &focal);
        assert_eq!(alpha.len(), 6);
        assert!((alpha.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn isolated_node_falls_back_to_base() {
        let (data, frozen) = setup();
        let focal = frozen.focal_vector(&data.graph, &[0]);
        let emb = frozen.online_embedding(0, &[], &focal);
        assert_eq!(emb, frozen.base(0).to_vec());
    }

    #[test]
    fn request_embedding_depends_on_neighbors() {
        let (data, frozen) = setup();
        let u = 0 as NodeId;
        let q = data.config.num_users as NodeId;
        let focal = frozen.focal_vector(&data.graph, &[u, q]);
        let items = data.item_nodes();
        let a = frozen.request_embedding(u, q, &items[..3], &items[..3], &focal);
        let b = frozen.request_embedding(u, q, &items[3..6], &items[3..6], &focal);
        assert_eq!(a.len(), frozen.embed_dim());
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6, "neighbors should influence the request embedding");
    }

    #[test]
    fn frozen_model_is_shareable_across_threads() {
        let (data, frozen) = setup();
        let frozen = std::sync::Arc::new(frozen);
        let q = data.config.num_users as NodeId;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let f = std::sync::Arc::clone(&frozen);
                scope.spawn(move || {
                    let focal = vec![0.1f32; f.embed_dim()];
                    for n in 0..50 as NodeId {
                        let _ = f.online_embedding(n, &[q], &focal);
                    }
                });
            }
        });
    }
}
