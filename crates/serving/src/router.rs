//! Router-side policy for the scatter-gather tier: merging per-shard
//! top-k lists and weighted-fair tenant admission at the front door.
//!
//! The merge is deliberately tiny — concatenate each query's per-shard
//! scored lists and reduce through the same [`crate::topk::top_k_desc`]
//! every backend ranks with, so a sharded deployment can never order two
//! candidates differently than a single-shard server would. At N=1 the
//! merge input is one already-sorted ≤k list and `top_k_desc`'s stable
//! sort is the identity: bit-identical results, pinned by the
//! `sharded_equivalence` proptest suite.
//!
//! Tenant fairness extends PR 5's shed queue with *per-tenant* accounting:
//! capacity is split evenly across the tenants active in the current
//! accounting window, so one noisy tenant exhausts only its own share and
//! is shed (`serve.tenant.shed`) while well-behaved tenants keep their
//! full allocation.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::Mutex;
use zoomer_obs::{Counter, MetricsRegistry};

use crate::server::ScoredRetrieval;
use crate::topk::top_k_desc;

/// Merge one query's per-shard scored lists into the global top-`k`.
///
/// `per_shard` holds each *replying* shard's answer for this query (lost
/// shards are simply absent); `degraded_merge` forces the degraded flag on
/// (the router sets it when any shard reply was lost, because the merged
/// list may be missing that shard's candidates).
pub(crate) fn merge_query(
    per_shard: Vec<ScoredRetrieval>,
    k: usize,
    degraded_merge: bool,
) -> ScoredRetrieval {
    let mut degraded = degraded_merge;
    let mut merged: Vec<(u64, f32)> = Vec::new();
    for shard in per_shard {
        degraded |= shard.degraded;
        merged.extend(shard.items);
    }
    ScoredRetrieval { items: top_k_desc(merged, k), degraded }
}

/// Weighted-fair per-tenant admission for the TCP front door.
///
/// Accounting runs in windows of `window` arrivals. Within a window each
/// tenant may have at most `capacity / active_tenants` requests admitted
/// (at least 1), where `active_tenants` counts the distinct tenants seen
/// *this window* — so shares re-expand automatically when a tenant goes
/// quiet. A request over its tenant's share is shed at the door
/// (`serve.tenant.shed`) before any embedding or probe work is spent on
/// it; admissions count `serve.tenant.admitted`.
///
/// The state is one small map behind a mutex taken for a few arithmetic
/// ops per request — nothing blocks under the guard (rule L007) and no
/// second lock is ever taken (rule L006).
pub struct TenantFairGate {
    capacity: u64,
    window: u64,
    state: Mutex<GateWindow>,
    admitted: Counter,
    shed: Counter,
}

struct GateWindow {
    arrivals: u64,
    admitted: BTreeMap<u32, u64>,
    seen: BTreeSet<u32>,
}

impl TenantFairGate {
    /// A gate admitting at most `capacity` requests per accounting window
    /// of `capacity` arrivals, split evenly across active tenants.
    /// `capacity == 0` disables shedding (every request admitted) — the
    /// single-tenant dev-loop default.
    pub fn new(capacity: usize, registry: &Arc<MetricsRegistry>) -> Self {
        Self {
            capacity: capacity as u64,
            window: (capacity as u64).max(1),
            state: Mutex::new(GateWindow {
                arrivals: 0,
                admitted: BTreeMap::new(),
                seen: BTreeSet::new(),
            }),
            admitted: registry.counter("serve.tenant.admitted"),
            shed: registry.counter("serve.tenant.shed"),
        }
    }

    /// Admit or shed one request from `tenant`. Never blocks beyond the
    /// gate's own mutex.
    pub fn admit(&self, tenant: u32) -> bool {
        if self.capacity == 0 {
            self.admitted.inc();
            return true;
        }
        let ok = {
            let mut w = self.state.lock();
            if w.arrivals >= self.window {
                w.arrivals = 0;
                w.admitted.clear();
                w.seen.clear();
            }
            w.arrivals += 1;
            w.seen.insert(tenant);
            let share = (self.capacity / w.seen.len() as u64).max(1);
            let used = w.admitted.entry(tenant).or_insert(0);
            if *used < share {
                *used += 1;
                true
            } else {
                false
            }
        };
        if ok {
            self.admitted.inc();
        } else {
            self.shed.inc();
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(capacity: usize) -> (TenantFairGate, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_enabled(true);
        (TenantFairGate::new(capacity, &registry), registry)
    }

    #[test]
    fn merge_of_one_sorted_list_is_identity() {
        let shard = ScoredRetrieval { items: vec![(9, 3.0), (4, 2.0), (7, 1.0)], degraded: false };
        let merged = merge_query(vec![shard.clone()], 3, false);
        assert_eq!(merged, shard);
    }

    #[test]
    fn merge_interleaves_shards_by_score() {
        let a = ScoredRetrieval { items: vec![(1, 5.0), (2, 1.0)], degraded: false };
        let b = ScoredRetrieval { items: vec![(3, 4.0), (4, 2.0)], degraded: false };
        let merged = merge_query(vec![a, b], 3, false);
        assert_eq!(merged.items, vec![(1, 5.0), (3, 4.0), (4, 2.0)]);
        assert!(!merged.degraded);
    }

    #[test]
    fn merge_propagates_and_forces_degraded() {
        let a = ScoredRetrieval { items: vec![(1, 1.0)], degraded: true };
        assert!(merge_query(vec![a.clone()], 1, false).degraded);
        let b = ScoredRetrieval { items: vec![(2, 2.0)], degraded: false };
        assert!(merge_query(vec![b], 1, true).degraded, "lost shard must mark degraded");
    }

    #[test]
    fn zero_capacity_gate_admits_everything() {
        let (g, _r) = gate(0);
        for t in 0..50 {
            assert!(g.admit(t % 3));
        }
    }

    #[test]
    fn single_tenant_gets_the_whole_window() {
        let (g, _r) = gate(10);
        let admitted = (0..10).filter(|_| g.admit(7)).count();
        assert_eq!(admitted, 10, "alone, a tenant owns the full capacity");
    }

    #[test]
    fn noisy_tenant_cannot_starve_a_fair_one() {
        let (g, _r) = gate(100);
        // Interleave: tenant 1 offers 5× its fair share, tenant 2 stays
        // within its share (50 of 100). Across windows tenant 2 must keep
        // essentially all of its admissions.
        let mut fair_admitted = 0u32;
        let mut fair_offered = 0u32;
        for round in 0..1_000u32 {
            // 5 noisy arrivals per fair arrival ≈ 5× share vs 0.5× share.
            for _ in 0..5 {
                let _ = g.admit(1);
            }
            if round % 2 == 0 {
                fair_offered += 1;
                if g.admit(2) {
                    fair_admitted += 1;
                }
            }
        }
        let shed_rate = 1.0 - f64::from(fair_admitted) / f64::from(fair_offered);
        assert!(
            shed_rate < 0.05,
            "well-behaved tenant shed {:.1}% (admitted {fair_admitted}/{fair_offered})",
            shed_rate * 100.0
        );
    }

    #[test]
    fn gate_counts_into_the_registry() {
        let (g, r) = gate(4);
        // With two active tenants the share is 4 / 2 = 2: tenant 1's third
        // request in each 4-arrival window must shed, every window.
        for _ in 0..3 {
            assert!(g.admit(2));
            assert!(g.admit(1));
            assert!(g.admit(1));
            assert!(!g.admit(1), "over-share request must shed");
        }
        let snap = r.snapshot();
        let count = |name: &str| snap.counter(name).unwrap_or(0);
        assert_eq!(count("serve.tenant.admitted"), 9);
        assert_eq!(count("serve.tenant.shed"), 3);
    }
}
