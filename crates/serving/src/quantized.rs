//! Int8-quantized IVF retrieval with exact f32 rerank.
//!
//! The billion-tier memory-scaling backend: inverted lists store one i8
//! *code* per element plus 12 bytes of per-vector parameters
//! ([`QuantParams`]) instead of 4 bytes per f32 element — a 4× smaller
//! embedding payload (see [`QuantizedIvf::memory_footprint`]). Candidate
//! scoring streams codes through the integer kernels
//! (`zoomer_tensor::kernel::{dot_i8, dot4_i8}`, i32 accumulation) and
//! combines with the per-vector scale/zero-point via
//! `zoomer_tensor::quant::combine_quantized` — one implementation of the
//! factored inner product, so blocked and single-query scores are
//! bit-identical.
//!
//! Quantization costs recall, so the probe is two-phase:
//!
//! 1. **int8 scan** of the `nprobe` probed lists produces approximate
//!    scores for every candidate;
//! 2. the top `rerank_factor × k` shortlist is **exactly rescored in f32**
//!    against the rerank store and the final top-`k` is taken from those
//!    exact scores.
//!
//! At the default `rerank_factor` this recovers recall@10 to within 1% of
//! the f32 IVF backend at equal `nprobe` (pinned by test and recorded in
//! `BENCH_backends.json`). The f32 rerank store is touched only for the
//! shortlist — `rerank_factor × k` rows per query, independent of pool
//! size — which is what lets a tiered deployment keep it cold (snapshot v2
//! stores codes and scales as zero-copy sections; see
//! `zoomer_graph::snapshot`).
//!
//! The coarse quantizer is adopted from an [`IvfIndex`] built with the same
//! parameters, so at equal `nprobe` the quantized and f32 paths probe the
//! *same lists* and see the same candidate sets — recall deltas measure
//! quantization alone, not clustering drift.

use rayon::prelude::*;
use zoomer_obs::{Counter, MetricsRegistry};
use zoomer_tensor::kernel::{dot4_i8, dot_i8, hardware_threads};
use zoomer_tensor::quant::{combine_quantized, quantize_into, QuantParams};
use zoomer_tensor::{dot, Matrix};

use crate::ann::{euclidean2, IvfIndex, PAR_MIN_BATCH_QUERIES};
use crate::backend::{BackendKind, BackendStats, BoundedSearch, SearchBackend};
use crate::deadline::Deadline;
use crate::error::ServingError;
use crate::topk::top_k_desc;

/// Default shortlist widening: the int8 phase hands `rerank_factor × k`
/// candidates to the exact f32 rerank. 4 is the smallest power of two at
/// which the recall@10 parity bound (≤ 1% vs f32 IVF) holds with margin on
/// the workspace's 16-wide embeddings.
pub const DEFAULT_RERANK_FACTOR: usize = 4;

/// One quantized inverted list. `codes` is row-major
/// (`ids.len() × dim` i8), `params` one entry per vector, and `vectors` is
/// the f32 rerank store in the same entry order — only ever indexed by
/// shortlist hits, never streamed by the probe.
struct QuantList {
    ids: Vec<u64>,
    codes: Vec<i8>,
    params: Vec<QuantParams>,
    vectors: Vec<f32>,
}

/// Byte accounting of a [`QuantizedIvf`], split by role so the 4× claim is
/// checkable: the probe streams `code_bytes + param_bytes`; `rerank_bytes`
/// is the f32 store the shortlist rerank indexes into (4 bytes per element
/// — exactly `4 × code_bytes`).
#[derive(Clone, Copy, Debug)]
pub struct QuantMemory {
    /// i8 code payload: one byte per stored element.
    pub code_bytes: usize,
    /// Per-vector `QuantParams` (scale + zero-point + code sum).
    pub param_bytes: usize,
    /// The f32 rerank store: what the same embeddings cost un-quantized.
    pub rerank_bytes: usize,
}

impl QuantMemory {
    /// f32 embedding bytes per quantized code byte — 4.0 by construction.
    pub fn compression_ratio(&self) -> f64 {
        self.rerank_bytes as f64 / self.code_bytes.max(1) as f64
    }
}

/// Probe-volume counters for the quantized path, beyond the generic
/// [`BackendStats`]: `scored_i8` counts candidates streamed through the
/// int8 kernel (the cheap phase), `reranked` counts shortlist entries
/// exactly rescored in f32 (the expensive phase — also mirrored into the
/// generic `serve.backend.candidates_scored`, whose contract is *exactly*
/// scored candidates). Tallied locally per pass, published with one
/// `fetch_add` each.
struct QuantStats {
    backend: BackendStats,
    scored_i8: Counter,
    reranked: Counter,
}

/// IVF retrieval over int8 codes with exact f32 rerank of the shortlist —
/// the fourth [`crate::Backend`] variant (`BackendKind::Quantized`).
pub struct QuantizedIvf {
    dim: usize,
    centroids: Vec<Vec<f32>>,
    lists: Vec<QuantList>,
    nprobe: usize,
    rerank_factor: usize,
    stats: Option<QuantStats>,
}

/// Candidates are tracked through the two-phase probe as a packed
/// `(list, entry)` handle so the rerank can reach both the f32 row and the
/// public id without a hash lookup. Monotone in (list, entry), i.e. packed
/// order == list-major scan order, which keeps tie-breaking deterministic.
#[inline]
fn pack(list: usize, entry: usize) -> u64 {
    ((list as u64) << 32) | entry as u64
}

#[inline]
fn unpack(handle: u64) -> (usize, usize) {
    ((handle >> 32) as usize, (handle & u32::MAX as u64) as usize)
}

/// Shared inputs of one scoring pass: the whole batch's quantized queries
/// plus the per-call budgets, bundled so the chunked scorer hands each
/// row-range worker one borrow instead of four.
struct ScorePass<'a> {
    qcodes: &'a [i8],
    qparams: &'a [QuantParams],
    k: usize,
    nprobe: usize,
}

/// One chunk's scoring output: final per-query results plus the
/// `(i8_scored, reranked)` metric tallies.
type ScoredChunk = (Vec<Vec<(u64, f32)>>, u64, u64);

impl QuantizedIvf {
    /// Quantize an existing [`IvfIndex`]: adopt its centroids and list
    /// assignment verbatim, encode every stored vector to i8, and keep the
    /// f32 rows as the rerank store.
    pub fn from_ivf(index: &IvfIndex, nprobe: usize, rerank_factor: usize) -> Self {
        let dim = index.dim();
        let centroids = index.centroid_rows().to_vec();
        let lists = (0..index.nlist())
            .map(|l| {
                let (ids, vectors) = index.list_entries(l);
                let mut codes = Vec::with_capacity(ids.len() * dim);
                let mut params = Vec::with_capacity(ids.len());
                for e in 0..ids.len() {
                    params.push(quantize_into(&vectors[e * dim..(e + 1) * dim], &mut codes));
                }
                QuantList { ids: ids.to_vec(), codes, params, vectors: vectors.to_vec() }
            })
            .collect();
        Self {
            dim,
            centroids,
            lists,
            nprobe: nprobe.max(1),
            rerank_factor: rerank_factor.max(1),
            stats: None,
        }
    }

    /// Build from `(id, vector)` pairs: k-means exactly like
    /// [`IvfIndex::build`] (same seed ⇒ same clustering as the f32 index),
    /// then quantize.
    pub fn build(
        items: &[(u64, Vec<f32>)],
        nlist: usize,
        kmeans_iters: usize,
        seed: u64,
        nprobe: usize,
        rerank_factor: usize,
    ) -> Self {
        Self::from_ivf(&IvfIndex::build(items, nlist, kmeans_iters, seed), nprobe, rerank_factor)
    }

    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Re-aim the probe budget without rebuilding (floored at 1). The sweep
    /// knob for recall/latency studies, like `ProximityGraph::set_beam_width`.
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.max(1);
    }

    pub fn rerank_factor(&self) -> usize {
        self.rerank_factor
    }

    /// Re-aim the shortlist widening without rebuilding (floored at 1).
    pub fn set_rerank_factor(&mut self, rerank_factor: usize) {
        self.rerank_factor = rerank_factor.max(1);
    }

    /// Byte accounting for the 4× storage claim; see [`QuantMemory`].
    pub fn memory_footprint(&self) -> QuantMemory {
        let mut m = QuantMemory { code_bytes: 0, param_bytes: 0, rerank_bytes: 0 };
        for l in &self.lists {
            m.code_bytes += l.codes.len();
            m.param_bytes += l.params.len() * std::mem::size_of::<QuantParams>();
            m.rerank_bytes += l.vectors.len() * std::mem::size_of::<f32>();
        }
        m
    }

    fn check_width(&self, got: usize) -> Result<(), ServingError> {
        if got != self.dim {
            return Err(ServingError::DimensionMismatch { expected: self.dim, got });
        }
        Ok(())
    }

    /// Quantize every query row once, into one contiguous code buffer (the
    /// int8 phase rescans query codes `nprobe` times; encoding is per
    /// search).
    fn quantize_queries(&self, queries: &Matrix) -> (Vec<i8>, Vec<QuantParams>) {
        let rows = queries.rows();
        let mut codes = Vec::with_capacity(rows * self.dim);
        let mut params = Vec::with_capacity(rows);
        for r in 0..rows {
            params.push(quantize_into(queries.row(r), &mut codes));
        }
        (codes, params)
    }

    /// The `nprobe` nearest lists for one query, ascending by centroid
    /// distance — the same probe schedule [`IvfIndex`] uses.
    fn probe_order(&self, q: &[f32], nprobe: usize) -> Vec<usize> {
        let by_dist = |a: &(usize, f32), b: &(usize, f32)| {
            a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
        };
        let mut order: Vec<(usize, f32)> =
            self.centroids.iter().enumerate().map(|(i, c)| (i, euclidean2(c, q))).collect();
        let pivot = (nprobe - 1).min(order.len() - 1);
        order.select_nth_unstable_by(pivot, by_dist);
        order.truncate(nprobe);
        order.sort_by(by_dist);
        order.into_iter().map(|(list, _)| list).collect()
    }

    /// Int8-score every query in `qis` (absolute batch row indices) against
    /// one quantized list, appending `(handle, approx_score)` pairs to
    /// `scored[qi - start]`. Queries are blocked four at a time through
    /// `dot4_i8`; the combination arithmetic is `combine_quantized` in both
    /// the block and remainder paths, so a score never depends on grouping.
    #[allow(clippy::too_many_arguments)] // mirrors IvfIndex::score_one_list + query codes
    fn score_one_list(
        &self,
        list: usize,
        qis: &[u32],
        qcodes: &[i8],
        qparams: &[QuantParams],
        start: usize,
        scored: &mut [Vec<(u64, f32)>],
    ) {
        if qis.is_empty() {
            return;
        }
        let il = &self.lists[list];
        let d = self.dim;
        for &qi in qis {
            scored[qi as usize - start].reserve(il.ids.len());
        }
        let row = |qi: u32| &qcodes[qi as usize * d..qi as usize * d + d];
        let mut blocks = qis.chunks_exact(4);
        for b in &mut blocks {
            let (c0, c1, c2, c3) = (row(b[0]), row(b[1]), row(b[2]), row(b[3]));
            let (p0, p1, p2, p3) = (
                &qparams[b[0] as usize],
                &qparams[b[1] as usize],
                &qparams[b[2] as usize],
                &qparams[b[3] as usize],
            );
            for (ei, pv) in il.params.iter().enumerate() {
                let v = &il.codes[ei * d..ei * d + d];
                let s = dot4_i8(v, c0, c1, c2, c3);
                let h = pack(list, ei);
                scored[b[0] as usize - start].push((h, combine_quantized(s[0], pv, p0, d)));
                scored[b[1] as usize - start].push((h, combine_quantized(s[1], pv, p1, d)));
                scored[b[2] as usize - start].push((h, combine_quantized(s[2], pv, p2, d)));
                scored[b[3] as usize - start].push((h, combine_quantized(s[3], pv, p3, d)));
            }
        }
        for &qi in blocks.remainder() {
            let (cq, pq) = (row(qi), &qparams[qi as usize]);
            let out = &mut scored[qi as usize - start];
            for (ei, pv) in il.params.iter().enumerate() {
                let v = &il.codes[ei * d..ei * d + d];
                out.push((pack(list, ei), combine_quantized(dot_i8(v, cq), pv, pq, d)));
            }
        }
    }

    /// Phase two: take the `rerank_factor × k` shortlist of one query's
    /// approximate scores, rescore it exactly in f32 against the rerank
    /// store, and return the final top-`k` as public `(id, exact_score)`
    /// pairs. Returns the rerank count alongside for metrics.
    fn rerank_one(
        &self,
        query: &[f32],
        approx: Vec<(u64, f32)>,
        k: usize,
    ) -> (Vec<(u64, f32)>, usize) {
        let widened = k.saturating_mul(self.rerank_factor);
        let shortlist = top_k_desc(approx, widened);
        let reranked = shortlist.len();
        let mut exact = Vec::with_capacity(reranked);
        for (handle, _) in shortlist {
            let (list, ei) = unpack(handle);
            let il = &self.lists[list];
            let v = &il.vectors[ei * self.dim..(ei + 1) * self.dim];
            exact.push((handle, dot(v, query)));
        }
        let top = top_k_desc(exact, k)
            .into_iter()
            .map(|(handle, s)| {
                let (list, ei) = unpack(handle);
                (self.lists[list].ids[ei], s)
            })
            .collect();
        (top, reranked)
    }

    /// Score query rows `start..end`: the list-major int8 pass (inverting
    /// query→lists into list→probers, like the f32 IVF scorer) followed by
    /// the per-query rerank. Returns final results plus
    /// `(i8_scored, reranked)` tallies.
    fn score_rows(
        &self,
        queries: &Matrix,
        pass: &ScorePass<'_>,
        start: usize,
        end: usize,
    ) -> ScoredChunk {
        let mut probers: Vec<Vec<u32>> = vec![Vec::new(); self.centroids.len()];
        for qi in start..end {
            for list in self.probe_order(queries.row(qi), pass.nprobe) {
                probers[list].push(qi as u32);
            }
        }
        let mut scored: Vec<Vec<(u64, f32)>> = vec![Vec::new(); end - start];
        let mut i8_scored = 0u64;
        for (list, qis) in probers.iter().enumerate() {
            self.score_one_list(list, qis, pass.qcodes, pass.qparams, start, &mut scored);
            i8_scored += (qis.len() * self.lists[list].ids.len()) as u64;
        }
        let mut reranked = 0u64;
        let results = scored
            .into_iter()
            .enumerate()
            .map(|(i, approx)| {
                let (top, n) = self.rerank_one(queries.row(start + i), approx, pass.k);
                reranked += n as u64;
                top
            })
            .collect();
        (results, i8_scored, reranked)
    }

    /// [`SearchBackend::search_batch`] with an explicit chunk count — the
    /// parallel split, exposed for tests. Results are identical for every
    /// `chunks` value (integer scoring is grouping-invariant and chunks own
    /// disjoint query ranges).
    pub fn search_batch_chunked(
        &self,
        queries: &Matrix,
        k: usize,
        chunks: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        self.check_width(queries.cols())?;
        let rows = queries.rows();
        let nprobe = self.nprobe.min(self.centroids.len());
        let (qcodes, qparams) = self.quantize_queries(queries);
        let chunks = chunks.clamp(1, rows);
        let pass = ScorePass { qcodes: &qcodes, qparams: &qparams, k, nprobe };
        let parts: Vec<ScoredChunk> = if chunks <= 1 {
            vec![self.score_rows(queries, &pass, 0, rows)]
        } else {
            let per = rows.div_ceil(chunks);
            let ranges: Vec<usize> = (0..rows).step_by(per).collect();
            ranges
                .into_par_iter()
                .map(|s| self.score_rows(queries, &pass, s, (s + per).min(rows)))
                .collect()
        };
        let mut results = Vec::with_capacity(rows);
        let (mut i8_scored, mut reranked) = (0u64, 0u64);
        for (part, s, r) in parts {
            results.extend(part);
            i8_scored += s;
            reranked += r;
        }
        if let Some(st) = &self.stats {
            st.backend.queries.add(rows as u64);
            st.backend.candidates_scored.add(reranked);
            st.scored_i8.add(i8_scored);
            st.reranked.add(reranked);
        }
        Ok(results)
    }
}

impl SearchBackend for QuantizedIvf {
    fn name(&self) -> &'static str {
        BackendKind::Quantized.name()
    }

    fn len(&self) -> usize {
        self.lists.iter().map(|l| l.ids.len()).sum()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search_batch(
        &self,
        queries: &Matrix,
        k: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        let chunks = if hardware_threads() > 1 && queries.rows() >= PAR_MIN_BATCH_QUERIES {
            hardware_threads()
        } else {
            1
        };
        self.search_batch_chunked(queries, k, chunks)
    }

    /// Deadline-aware probe in nearest-first rounds, exactly the f32 IVF
    /// discipline: round `r` int8-scores every query's `(r+1)`-th nearest
    /// list, the deadline is checked between rounds, round 0 always
    /// completes. The rerank runs once, after the rounds stop — on exactly
    /// the candidates a plain probe at the effective `nprobe` would have
    /// shortlisted, so a capped probe equals the narrower plain probe.
    fn search_batch_deadline(
        &self,
        queries: &Matrix,
        k: usize,
        deadline: &Deadline,
        on_round: &mut dyn FnMut(usize),
    ) -> Result<BoundedSearch, ServingError> {
        let nprobe = self.nprobe.min(self.centroids.len());
        if queries.rows() == 0 {
            return Ok(BoundedSearch {
                results: Vec::new(),
                effective_budget: nprobe,
                full_budget: nprobe,
            });
        }
        self.check_width(queries.cols())?;
        let rows = queries.rows();
        let (qcodes, qparams) = self.quantize_queries(queries);
        let orders: Vec<Vec<usize>> =
            (0..rows).map(|qi| self.probe_order(queries.row(qi), nprobe)).collect();
        let mut scored: Vec<Vec<(u64, f32)>> = vec![Vec::new(); rows];
        let mut probers: Vec<Vec<u32>> = vec![Vec::new(); self.centroids.len()];
        let mut i8_scored = 0u64;
        let mut effective = nprobe;
        for r in 0..nprobe {
            if r > 0 && deadline.expired() {
                effective = r;
                break;
            }
            on_round(r);
            for p in probers.iter_mut() {
                p.clear();
            }
            for (qi, order) in orders.iter().enumerate() {
                if let Some(&list) = order.get(r) {
                    probers[list].push(qi as u32);
                }
            }
            for (list, qis) in probers.iter().enumerate() {
                self.score_one_list(list, qis, &qcodes, &qparams, 0, &mut scored);
                i8_scored += (qis.len() * self.lists[list].ids.len()) as u64;
            }
        }
        let mut reranked = 0u64;
        let results: Vec<Vec<(u64, f32)>> = scored
            .into_iter()
            .enumerate()
            .map(|(qi, approx)| {
                let (top, n) = self.rerank_one(queries.row(qi), approx, k);
                reranked += n as u64;
                top
            })
            .collect();
        if let Some(st) = &self.stats {
            st.backend.queries.add(rows as u64);
            st.backend.candidates_scored.add(reranked);
            st.scored_i8.add(i8_scored);
            st.reranked.add(reranked);
        }
        Ok(BoundedSearch { results, effective_budget: effective, full_budget: nprobe })
    }

    /// Exact top-`k` over the f32 rerank store (every list, list-major
    /// order) — the recall baseline and the server's widening scan; no
    /// quantization involved.
    fn exact_search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, ServingError> {
        self.check_width(query.len())?;
        let mut exact = Vec::with_capacity(self.len());
        for il in &self.lists {
            for (ei, &id) in il.ids.iter().enumerate() {
                let v = &il.vectors[ei * self.dim..(ei + 1) * self.dim];
                exact.push((id, dot(v, query)));
            }
        }
        if let Some(st) = &self.stats {
            st.backend.queries.inc();
            st.backend.candidates_scored.add(exact.len() as u64);
        }
        Ok(top_k_desc(exact, k))
    }

    fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.stats = Some(QuantStats {
            backend: BackendStats::new(registry),
            scored_i8: registry.counter("serve.backend.quant.scored_i8"),
            reranked: registry.counter("serve.backend.quant.reranked"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ExactSearch, IvfBackend};
    use rand::Rng;
    use std::collections::HashSet;
    use zoomer_tensor::seeded_rng;

    fn random_items(n: usize, dim: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
        let mut rng = seeded_rng(seed);
        (0..n as u64).map(|id| (id, (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())).collect()
    }

    fn query_matrix(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = seeded_rng(seed);
        Matrix::from_vec(n, dim, (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
    }

    #[test]
    fn indexes_every_item_and_stores_codes_4x_smaller() {
        let items = random_items(300, 16, 1);
        let q = QuantizedIvf::build(&items, 10, 5, 1, 3, 4);
        assert_eq!(q.len(), 300);
        assert_eq!(q.dim(), 16);
        assert_eq!(q.nlist(), 10);
        let m = q.memory_footprint();
        assert_eq!(m.code_bytes, 300 * 16);
        assert_eq!(m.rerank_bytes, 300 * 16 * 4);
        assert!(
            m.compression_ratio() >= 4.0,
            "embedding payload must shrink ≥4×, got {}",
            m.compression_ratio()
        );
        assert_eq!(m.param_bytes, 300 * std::mem::size_of::<QuantParams>());
    }

    #[test]
    fn quantized_probes_the_same_lists_as_the_f32_index() {
        // Adopting the IvfIndex clustering must reproduce its centroids, so
        // equal-nprobe candidate sets match by construction.
        let items = random_items(400, 8, 2);
        let ivf = IvfIndex::build(&items, 12, 5, 2);
        let q = QuantizedIvf::from_ivf(&ivf, 4, 4);
        assert_eq!(q.nlist(), ivf.nlist());
        for (c_q, c_f) in q.centroids.iter().zip(ivf.centroid_rows()) {
            assert_eq!(c_q, c_f);
        }
    }

    #[test]
    fn batch_matches_any_chunked_split() {
        let items = random_items(500, 16, 3);
        let q = QuantizedIvf::build(&items, 16, 5, 3, 4, 4);
        let m = query_matrix(37, 16, 4);
        let seq = q.search_batch_chunked(&m, 10, 1).expect("sequential");
        for chunks in [2usize, 3, 5, 36, 37, 64] {
            let par = q.search_batch_chunked(&m, 10, chunks).expect("chunked");
            assert_eq!(seq, par, "chunks={chunks} diverges");
        }
        assert_eq!(seq, q.search_batch(&m, 10).expect("auto"));
    }

    #[test]
    fn recall_parity_with_f32_ivf_after_rerank() {
        // The acceptance bound: at equal nprobe and the default
        // rerank_factor, quantized recall@10 within 1% of the f32 IVF
        // backend (ground truth = exact scan).
        let items = random_items(1500, 16, 5);
        let (k, nprobe, nlist) = (10usize, 4usize, 32usize);
        let ivf = IvfBackend::new(IvfIndex::build(&items, nlist, 8, 5), nprobe, nprobe);
        let quant = QuantizedIvf::build(&items, nlist, 8, 5, nprobe, DEFAULT_RERANK_FACTOR);
        let oracle = ExactSearch::build(&items);
        let queries = query_matrix(150, 16, 6);
        let f32_results = ivf.search_batch(&queries, k).expect("ivf");
        let quant_results = quant.search_batch(&queries, k).expect("quant");
        let (mut ivf_hits, mut quant_hits, mut total) = (0usize, 0usize, 0usize);
        for r in 0..queries.rows() {
            let truth: HashSet<u64> = oracle
                .exact_search(queries.row(r), k)
                .expect("oracle")
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            total += truth.len();
            ivf_hits += f32_results[r].iter().filter(|(id, _)| truth.contains(id)).count();
            quant_hits += quant_results[r].iter().filter(|(id, _)| truth.contains(id)).count();
        }
        let ivf_recall = ivf_hits as f64 / total as f64;
        let quant_recall = quant_hits as f64 / total as f64;
        assert!(
            quant_recall >= ivf_recall - 0.01,
            "quantized recall@{k} {quant_recall:.4} more than 1% below f32 {ivf_recall:.4}"
        );
    }

    #[test]
    fn rerank_scores_are_exact_f32_dots() {
        let items = random_items(200, 8, 7);
        let q = QuantizedIvf::build(&items, 8, 5, 7, 8, 4);
        let m = query_matrix(5, 8, 8);
        for (r, row) in q.search_batch(&m, 5).expect("batch").iter().enumerate() {
            for &(id, score) in row {
                let v = &items[id as usize].1;
                assert_eq!(
                    score.to_bits(),
                    dot(v, m.row(r)).to_bits(),
                    "returned score must be the exact f32 dot, not the int8 approximation"
                );
            }
        }
    }

    #[test]
    fn full_probe_with_wide_rerank_equals_exact_search() {
        // nprobe = nlist and a shortlist wider than the pool: the rerank
        // rescores every candidate, so results must match the exact scan.
        let items = random_items(120, 8, 9);
        let q = QuantizedIvf::build(&items, 6, 4, 9, 6, 1000);
        let m = query_matrix(7, 8, 10);
        let got = q.search_batch(&m, 10).expect("batch");
        for (r, row) in got.iter().enumerate() {
            let exact = q.exact_search(m.row(r), 10).expect("exact");
            let mut a: Vec<(u64, u32)> = row.iter().map(|&(id, s)| (id, s.to_bits())).collect();
            let mut b: Vec<(u64, u32)> = exact.iter().map(|&(id, s)| (id, s.to_bits())).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "row {r}");
        }
    }

    #[test]
    fn deadline_unbounded_matches_plain_batch() {
        let items = random_items(350, 8, 11);
        let q = QuantizedIvf::build(&items, 10, 4, 11, 4, 4);
        let m = query_matrix(21, 8, 12);
        let mut rounds = Vec::new();
        let bounded = q
            .search_batch_deadline(&m, 10, &Deadline::none(), &mut |r| rounds.push(r))
            .expect("bounded");
        assert_eq!(rounds, vec![0, 1, 2, 3]);
        assert!(!bounded.capped());
        assert_eq!(bounded.results, q.search_batch_chunked(&m, 10, 1).expect("plain"));
    }

    #[test]
    fn expired_deadline_caps_to_one_round_and_matches_narrow_probe() {
        let items = random_items(350, 8, 13);
        let q = QuantizedIvf::build(&items, 10, 4, 13, 4, 4);
        let narrow = QuantizedIvf::build(&items, 10, 4, 13, 1, 4);
        let m = query_matrix(13, 8, 14);
        let bounded = q
            .search_batch_deadline(&m, 10, &Deadline::after(std::time::Duration::ZERO), &mut |_| {})
            .expect("bounded");
        assert_eq!(bounded.effective_budget, 1, "round 0 always completes, nothing more");
        assert!(bounded.capped());
        assert_eq!(
            bounded.results,
            narrow.search_batch_chunked(&m, 10, 1).expect("narrow"),
            "capped probe must equal the plain probe at the smaller nprobe"
        );
    }

    #[test]
    fn quant_metrics_count_both_phases() {
        let registry = MetricsRegistry::enabled();
        let items = random_items(200, 8, 15);
        let mut q = QuantizedIvf::build(&items, 8, 4, 15, 2, 4);
        q.attach_metrics(&registry);
        let m = query_matrix(3, 8, 16);
        q.search_batch(&m, 5).expect("batch");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.backend.queries"), Some(3));
        let i8_scored = snap.counter("serve.backend.quant.scored_i8").unwrap_or(0);
        let reranked = snap.counter("serve.backend.quant.reranked").unwrap_or(0);
        assert!(i8_scored > 0, "int8 phase must be counted");
        assert!(reranked > 0 && reranked <= 3 * 5 * 4, "rerank capped at factor×k per query");
        assert!(i8_scored >= reranked, "shortlist cannot exceed the scanned candidates");
        assert_eq!(snap.counter("serve.backend.candidates_scored"), Some(reranked));
    }

    #[test]
    fn empty_batch_and_width_mismatch() {
        let items = random_items(50, 4, 17);
        let q = QuantizedIvf::build(&items, 4, 3, 17, 2, 4);
        assert!(q.search_batch(&Matrix::zeros(0, 4), 5).expect("empty").is_empty());
        let err = q.search_batch(&Matrix::zeros(2, 5), 5).expect_err("width");
        assert_eq!(err, ServingError::DimensionMismatch { expected: 4, got: 5 });
        let err = q.exact_search(&[0.0; 3], 1).expect_err("width");
        assert_eq!(err, ServingError::DimensionMismatch { expected: 4, got: 3 });
    }
}
