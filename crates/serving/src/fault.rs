//! Deterministic fault injection for the serving stack.
//!
//! Overload behavior — shedding, degraded modes, refresher recovery — must
//! be tested on purpose, not discovered by accident in production. A
//! [`FaultInjector`] fires at fixed sites on the request path (stage
//! boundaries in `handle_batch`, ANN probe rounds, refresh computes) on a
//! **seed-derived arithmetic schedule**: rule `every = p` with seed `s`
//! fires on calls where `(n + phase(s)) % p == 0`, `n` counting that site's
//! calls. Same seed ⇒ same phases ⇒ the same injected schedule and the same
//! counters, every run.
//!
//! Two fault kinds:
//! - **Delay**: sleep for a fixed duration at the site (latency spike).
//! - **Action**: run an arbitrary caller-supplied closure. Tests use this
//!   for compute panics and poisoned-lock scenarios — the panic lives in
//!   test code, keeping this crate's non-test code panic-free (rule L001).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use zoomer_graph::NodeId;

/// Where on the serving path a fault can fire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Before the batch's cache resolve stage.
    CacheResolve,
    /// Before the batch's embedding stage.
    Embed,
    /// Before the batch's ANN probe stage.
    AnnProbe,
    /// At the start of each round of a deadline-bounded backend probe: an
    /// IVF probe round or a proximity-graph beam-ladder rung.
    AnnRound,
    /// Inside a wrapped refresher compute ([`FaultInjector::wrap_refresh`]).
    Refresh,
    /// In a scatter-gather shard worker, after the shard has ranked its
    /// partition but before the reply is sent back to the router. A
    /// `Delay` here holds the reply past the router's gather timeout
    /// (simulating shard-reply loss); an injected panic turns the reply
    /// into a `WorkerPanicked` error the router must merge around.
    ShardReply,
}

impl FaultSite {
    const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            FaultSite::CacheResolve => 0,
            FaultSite::Embed => 1,
            FaultSite::AnnProbe => 2,
            FaultSite::AnnRound => 3,
            FaultSite::Refresh => 4,
            FaultSite::ShardReply => 5,
        }
    }
}

/// What happens when a rule fires.
#[derive(Clone)]
enum FaultKind {
    Delay(Duration),
    Action(Arc<dyn Fn() + Send + Sync>),
}

#[derive(Clone)]
struct FaultRule {
    site: FaultSite,
    /// Fire every `period`-th call at the site…
    period: u64,
    /// …offset by this seed-derived phase.
    phase: u64,
    kind: FaultKind,
}

/// Builder for a [`FaultInjector`]: a seed plus a list of rules. The seed
/// fixes each rule's phase, so two plans built from the same seed and rules
/// inject identical schedules.
pub struct FaultPlan {
    seed: u64,
    rules: Vec<(FaultSite, u64, FaultKind)>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        Self { seed, rules: Vec::new() }
    }

    /// Inject a latency spike of `delay` every `every`-th call at `site`.
    pub fn delay(mut self, site: FaultSite, every: u64, delay: Duration) -> Self {
        self.rules.push((site, every.max(1), FaultKind::Delay(delay)));
        self
    }

    /// Run `action` every `every`-th call at `site`. The closure may panic —
    /// that is the point: panics are injected from the caller's (test) code,
    /// never manufactured here.
    pub fn action(
        mut self,
        site: FaultSite,
        every: u64,
        action: impl Fn() + Send + Sync + 'static,
    ) -> Self {
        self.rules.push((site, every.max(1), FaultKind::Action(Arc::new(action))));
        self
    }

    pub fn build(self) -> FaultInjector {
        let seed = self.seed;
        let rules = self
            .rules
            .into_iter()
            .enumerate()
            .map(|(i, (site, period, kind))| FaultRule {
                site,
                period,
                phase: splitmix64(seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15)) % period,
                kind,
            })
            .collect();
        FaultInjector {
            rules,
            calls: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The armed injector. Shared by the server (`Arc`); every
/// [`FaultInjector::fire`] advances that site's call counter and runs the
/// rules whose schedule matches.
pub struct FaultInjector {
    rules: Vec<FaultRule>,
    calls: [AtomicU64; FaultSite::COUNT],
    injected: [AtomicU64; FaultSite::COUNT],
}

impl FaultInjector {
    /// Record one pass through `site` and run any scheduled faults. Called
    /// by the server at stage boundaries; a site with no matching rules
    /// costs one relaxed `fetch_add`.
    pub fn fire(&self, site: FaultSite) {
        let n = self.calls[site.index()].fetch_add(1, Ordering::Relaxed);
        for rule in self.rules.iter().filter(|r| r.site == site) {
            if (n + rule.phase).is_multiple_of(rule.period) {
                self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
                match &rule.kind {
                    FaultKind::Delay(d) => std::thread::sleep(*d),
                    FaultKind::Action(f) => f(),
                }
            }
        }
    }

    /// How many times `site` has been passed through.
    pub fn calls(&self, site: FaultSite) -> u64 {
        self.calls[site.index()].load(Ordering::Relaxed)
    }

    /// How many faults have fired at `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired across every site.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Wrap a refresher compute closure so every invocation passes through
    /// the [`FaultSite::Refresh`] site first — injected delays stall the
    /// (asynchronous) refresh, injected panics kill the refresh worker,
    /// exercising `CacheRefresher::shutdown`'s `WorkerPanicked` reporting.
    pub fn wrap_refresh(
        self: &Arc<Self>,
        compute: impl Fn(NodeId) -> Vec<NodeId> + Send + 'static,
    ) -> impl Fn(NodeId) -> Vec<NodeId> + Send + 'static {
        let injector = Arc::clone(self);
        move |node| {
            injector.fire(FaultSite::Refresh);
            compute(node)
        }
    }
}

/// SplitMix64: a tiny, well-mixed integer hash (public-domain constants) —
/// turns (seed, rule index) into a schedule phase.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired_schedule(seed: u64, calls: u64) -> Vec<u64> {
        let fired = Arc::new(AtomicU64::new(0));
        let injector = {
            let fired = Arc::clone(&fired);
            FaultPlan::new(seed)
                .action(FaultSite::AnnProbe, 3, move || {
                    fired.fetch_add(1, Ordering::Relaxed);
                })
                .build()
        };
        let mut out = Vec::new();
        for n in 0..calls {
            let before = fired.load(Ordering::Relaxed);
            injector.fire(FaultSite::AnnProbe);
            if fired.load(Ordering::Relaxed) > before {
                out.push(n);
            }
        }
        assert_eq!(injector.calls(FaultSite::AnnProbe), calls);
        assert_eq!(injector.injected(FaultSite::AnnProbe), out.len() as u64);
        out
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = fired_schedule(7, 30);
        let b = fired_schedule(7, 30);
        assert_eq!(a, b, "same seed must inject the same schedule");
        assert_eq!(a.len(), 10, "period 3 fires on exactly a third of 30 calls");
        // Consecutive firings are exactly one period apart.
        for w in a.windows(2) {
            assert_eq!(w[1] - w[0], 3);
        }
    }

    #[test]
    fn different_seeds_explore_different_phases() {
        // Phases land in [0, period); across seeds 0..12 at period 3 every
        // phase must appear (any fixed phase would defeat the seeding).
        let first: std::collections::HashSet<u64> =
            (0..12).map(|s| fired_schedule(s, 30)[0]).collect();
        assert!(first.len() > 1, "seed must influence the phase");
    }

    #[test]
    fn every_one_fires_every_call() {
        let injector = FaultPlan::new(3).delay(FaultSite::Embed, 1, Duration::ZERO).build();
        for _ in 0..5 {
            injector.fire(FaultSite::Embed);
        }
        assert_eq!(injector.injected(FaultSite::Embed), 5);
        assert_eq!(injector.injected_total(), 5);
        assert_eq!(injector.injected(FaultSite::CacheResolve), 0);
    }

    #[test]
    fn unmatched_sites_only_count_calls() {
        let injector = FaultPlan::new(0).delay(FaultSite::AnnProbe, 2, Duration::ZERO).build();
        injector.fire(FaultSite::CacheResolve);
        assert_eq!(injector.calls(FaultSite::CacheResolve), 1);
        assert_eq!(injector.injected_total(), 0);
    }

    #[test]
    fn wrapped_refresh_fires_the_refresh_site() {
        let injector =
            Arc::new(FaultPlan::new(1).delay(FaultSite::Refresh, 1, Duration::ZERO).build());
        let compute = injector.wrap_refresh(|n| vec![n]);
        assert_eq!(compute(4), vec![4]);
        assert_eq!(compute(5), vec![5]);
        assert_eq!(injector.injected(FaultSite::Refresh), 2);
    }
}
