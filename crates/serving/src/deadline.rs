//! Request latency budgets.
//!
//! §VII's serving stack answers "users' timely requests" under a strict
//! latency budget; a request that cannot be answered in time is worth less
//! than the capacity it consumes. A [`Deadline`] is the absolute point in
//! time by which a batch must be answered, threaded from admission through
//! cache resolve and the ANN probe. The unbounded deadline is a plain
//! `None` inside — checking it costs one branch and **no clock read**, so a
//! server with no configured deadline takes exactly the pre-deadline code
//! path.

use std::time::{Duration, Instant};

/// An absolute per-request/per-batch latency budget. `Deadline::none()` is
/// unbounded and free to check; a bounded deadline is compared against
/// `Instant::now()` at stage boundaries.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// The unbounded deadline: never expires, never reads the clock.
    pub fn none() -> Self {
        Self { at: None }
    }

    /// A deadline `budget` from now. A zero budget is already expired: the
    /// server rejects it at admission instead of doing work it cannot bill.
    /// (An overflowing far-future budget saturates to unbounded.)
    pub fn after(budget: Duration) -> Self {
        Self { at: Instant::now().checked_add(budget) }
    }

    /// Deadline from an optional configured budget ([`crate::ServingConfig`]'s
    /// `deadline` field): `None` ⇒ unbounded.
    pub fn from_config(budget: Option<Duration>) -> Self {
        match budget {
            Some(b) => Self::after(b),
            None => Self::none(),
        }
    }

    /// Whether this deadline can ever expire.
    pub fn is_bounded(&self) -> bool {
        self.at.is_some()
    }

    /// Whether the budget is spent. Always `false` (and clock-free) for the
    /// unbounded deadline.
    #[inline]
    pub fn expired(&self) -> bool {
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Time left, `None` when unbounded. Saturates at zero once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|at| at.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_bounded());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert!(!Deadline::from_config(None).is_bounded());
    }

    #[test]
    fn zero_budget_is_already_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.is_bounded());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_not_expired() {
        let d = Deadline::from_config(Some(Duration::from_secs(3600)));
        assert!(d.is_bounded());
        assert!(!d.expired());
        assert!(d.remaining().is_some_and(|r| r > Duration::from_secs(3599)));
    }

    #[test]
    fn overflowing_budget_saturates_to_unbounded() {
        let d = Deadline::after(Duration::MAX);
        assert!(!d.expired());
    }
}
