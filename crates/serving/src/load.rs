//! Load harness for the serving stack (Fig 9).
//!
//! One entry point, [`run_load`], driven by a [`LoadTestSpec`]:
//!
//! * **Open loop** ([`Arrival::Open`]): requests arrive on a fixed schedule
//!   at `qps`, so queueing delay shows up in the measured response time
//!   exactly as it would for real traffic; a fixed pool of server threads
//!   drains the queue, each coalescing up to `batch_size` queued requests
//!   into one `handle_batch` call (the arrival-coalescing a production
//!   front-end performs under load). Reported latency is end-to-end:
//!   enqueue → batch completion, so coalescing that delays an early arrival
//!   is charged against it. `batch_size == 1` is the classic per-request
//!   open-loop test.
//! * **Closed loop** ([`Arrival::Closed`]): every thread issues its next
//!   batch as soon as the previous one returns, measuring peak sustainable
//!   throughput at a given batch size (the Fig 9 batched series).
//!
//! Every run returns a [`LoadReport`]: end-to-end latency percentiles plus
//! the per-stage (cache resolve / embed / ANN probe / rank) percentile
//! breakdown and cache hit accounting, extracted from the server's metrics
//! registry by diffing snapshots around the run — the report covers exactly
//! the work this run performed, even on a shared registry. Stage breakdowns
//! need a registry that is enabled ([`zoomer_obs::MetricsRegistry::enabled`],
//! attached via `ServerBuilder::metrics`); with the default disabled
//! registry `stages` is present but empty of samples.
//!
//! Accounting is strict: [`LoadReport::completed`] and the latency
//! percentiles cover only requests whose batch **succeeded**. Requests in
//! errored or panicked batches land in [`LoadReport::errors`]; requests the
//! admission queue refused land in [`LoadReport::shed`]; always
//! `completed + errors + shed == offered`. Open-loop runs bound the
//! admission queue with [`LoadTestSpec::queue_capacity`] and pick what
//! overload sheds via [`ShedPolicy`] — the default (no bound) reproduces the
//! pre-shedding harness exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, TrySendError};
use zoomer_graph::{Query, Retrieval};
use zoomer_obs::{CacheStats, MetricsRegistry, Snapshot};

use crate::error::ServingError;
use crate::server::OnlineServer;

/// Anything the load harness can drive: a single [`OnlineServer`] or the
/// scatter-gather [`crate::sharded::ShardedServer`], behind one batch entry
/// point plus the observability hooks the report diffs around the run.
///
/// `Sync` because the harness shares one service reference across its worker
/// threads (no per-worker clone: a sharded service owns worker pools of its
/// own, and cloning those per load thread would multiply them).
pub trait QueryService: Sync {
    /// Serve one batch; semantics of [`OnlineServer::handle_batch`].
    fn serve_batch(&self, queries: &[Query]) -> Result<Vec<Retrieval>, ServingError>;
    /// The registry the service reports into.
    fn metrics_registry(&self) -> &Arc<MetricsRegistry>;
    /// Point-in-time snapshot of that registry (cache counters ingested).
    fn metrics_snapshot(&self) -> Snapshot;
    /// Aggregate neighbor-cache counters across the service.
    fn cache_stats(&self) -> CacheStats;
}

impl QueryService for OnlineServer {
    fn serve_batch(&self, queries: &[Query]) -> Result<Vec<Retrieval>, ServingError> {
        self.handle_batch(queries)
    }

    fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        OnlineServer::metrics_registry(self)
    }

    fn metrics_snapshot(&self) -> Snapshot {
        OnlineServer::metrics_snapshot(self)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache().stats()
    }
}

/// How requests are offered to the server.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// Open loop: a fixed arrival schedule at this rate (requests/sec).
    Open { qps: f64 },
    /// Closed loop: back-to-back batches, no think time.
    Closed,
}

/// What an open-loop run sheds when its admission queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the arriving request (classic admission control: newest work
    /// is the cheapest to abandon — nothing has been invested in it yet).
    #[default]
    RejectNew,
    /// Evict the oldest queued request to admit the new one (freshest-first:
    /// the oldest entry is the most likely to miss its deadline anyway).
    DropOldest,
}

/// Configuration for one [`run_load`] run. Construct with
/// [`LoadTestSpec::open`] or [`LoadTestSpec::closed`] and chain the setters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadTestSpec {
    pub arrival: Arrival,
    /// Server worker threads draining the load.
    pub num_threads: usize,
    /// Requests coalesced into one `handle_batch` call.
    pub batch_size: usize,
    /// Admission-queue bound for open-loop runs. `None` (the default) sizes
    /// the queue to the whole request set — nothing is ever shed, exactly
    /// the pre-shedding harness. Closed-loop runs have no queue and ignore
    /// this.
    pub queue_capacity: Option<usize>,
    /// What to shed when the bounded queue is full.
    pub shed: ShedPolicy,
}

impl LoadTestSpec {
    /// Open-loop spec at `qps`, one thread, per-request batches.
    pub fn open(qps: f64) -> Self {
        Self {
            arrival: Arrival::Open { qps },
            num_threads: 1,
            batch_size: 1,
            queue_capacity: None,
            shed: ShedPolicy::RejectNew,
        }
    }

    /// Closed-loop spec, one thread, per-request batches.
    pub fn closed() -> Self {
        Self {
            arrival: Arrival::Closed,
            num_threads: 1,
            batch_size: 1,
            queue_capacity: None,
            shed: ShedPolicy::RejectNew,
        }
    }

    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Bound the open-loop admission queue to `cap` in-flight requests.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }

    pub fn shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }

    fn validate(&self, requests: &[Query]) -> Result<(), ServingError> {
        if let Arrival::Open { qps } = self.arrival {
            if !qps.is_finite() || qps <= 0.0 {
                return Err(ServingError::InvalidConfig("qps must be positive and finite"));
            }
        }
        if self.num_threads == 0 {
            return Err(ServingError::InvalidConfig("need at least one server thread"));
        }
        if self.batch_size == 0 {
            return Err(ServingError::InvalidConfig("need a positive batch size"));
        }
        if self.queue_capacity == Some(0) {
            return Err(ServingError::InvalidConfig("need a positive queue capacity"));
        }
        if requests.is_empty() {
            return Err(ServingError::InvalidConfig("need at least one request"));
        }
        Ok(())
    }
}

/// Latency percentile summary (milliseconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_latencies(mut lat_ms: Vec<f64>) -> Self {
        lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = lat_ms.len();
        if n == 0 {
            return Self::default();
        }
        let pct = |p: f64| -> f64 { lat_ms[((n as f64 - 1.0) * p).round() as usize] };
        Self {
            mean_ms: lat_ms.iter().sum::<f64>() / n as f64,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: lat_ms[n - 1],
        }
    }
}

/// One request-path stage's latency over a run, from the metrics registry.
#[derive(Clone, Debug)]
pub struct StageSummary {
    /// Short stage name: `cache_resolve`, `embed`, `ann_probe`, `rank`.
    pub stage: String,
    /// `handle_batch` calls that recorded this stage during the run.
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
}

/// The report every load shape returns: end-to-end latency, throughput, and
/// the per-stage/cache accounting for exactly this run.
///
/// Request accounting is a partition: `completed + errors + shed ==
/// offered`, and only completed requests contribute latency samples.
#[derive(Clone, Debug)]
pub struct LoadReport {
    pub spec: LoadTestSpec,
    /// Requests handed to the harness (`requests.len()`).
    pub offered: usize,
    /// Requests completed (each charged its whole batch's service time).
    pub completed: usize,
    /// Requests whose batch returned a [`ServingError`] or panicked —
    /// excluded from `completed` and from every latency percentile.
    pub errors: usize,
    /// Requests refused by the bounded admission queue under
    /// [`LoadTestSpec::queue_capacity`] / [`ShedPolicy`].
    pub shed: usize,
    /// Worker batches that panicked (their requests are in `errors`); the
    /// worker contains the panic and keeps draining.
    pub panics: usize,
    /// Requests the server answered degraded during the run
    /// (`serve.degraded.*` counter delta).
    pub degraded: u64,
    /// Batches the server rejected at admission with a spent deadline
    /// (`serve.deadline_exceeded` counter delta).
    pub deadline_exceeded: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// End-to-end latency as measured by the harness.
    pub latency: LatencySummary,
    /// Per-stage breakdown from the server's metrics registry (empty
    /// samples unless the registry is enabled).
    pub stages: Vec<StageSummary>,
    /// Cache activity during the run.
    pub cache: CacheStats,
}

impl LoadReport {
    /// Achieved throughput over the run.
    pub fn achieved_qps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }

    /// The offered rate, for open-loop runs.
    pub fn offered_qps(&self) -> Option<f64> {
        match self.spec.arrival {
            Arrival::Open { qps } => Some(qps),
            Arrival::Closed => None,
        }
    }

    /// Fraction of offered requests the admission queue refused.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }

    /// The summary for one stage (`cache_resolve`, `embed`, `ann_probe`,
    /// `rank`), if the run recorded it.
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.stage == name)
    }
}

/// What a load driver measured: latency samples for completed requests plus
/// the shed/error/panic tallies. `lat_ms.len() + errors + shed` equals the
/// offered request count.
struct DriverOutcome {
    lat_ms: Vec<f64>,
    shed: usize,
    errors: usize,
    panics: usize,
}

/// Run one load test described by `spec` and report end-to-end latency plus
/// the per-stage percentile breakdown for exactly this run.
///
/// Generic over [`QueryService`]: the same harness drives a single
/// [`OnlineServer`] or a [`crate::sharded::ShardedServer`] front door.
pub fn run_load<S: QueryService>(
    server: &S,
    requests: &[Query],
    spec: &LoadTestSpec,
) -> Result<LoadReport, ServingError> {
    spec.validate(requests)?;
    let cache_before = server.cache_stats();
    let metrics_before = server.metrics_snapshot();
    let start = Instant::now();
    let outcome = match spec.arrival {
        Arrival::Open { qps } => run_open_loop(server, requests, qps, spec),
        Arrival::Closed => run_closed_loop(server, requests, spec),
    };
    let elapsed = start.elapsed();
    let diff = server.metrics_snapshot().since(&metrics_before);
    let delta = |name: &str| diff.counter(name).unwrap_or(0);
    // Each degraded batch counts exactly one realized brownout rung, so the
    // four rung counters sum without overlap. `serve.degraded.nprobe_capped`
    // is a registered alias that mirrors every `budget_capped` increment, so
    // adding it too would double-count capped batches.
    let degraded = delta("serve.degraded.fallback")
        + delta("serve.degraded.budget_capped")
        + delta("serve.degraded.topk_shrunk")
        + delta("serve.degraded.skip_widen");
    let deadline_exceeded = delta("serve.deadline_exceeded");
    // Mirror the harness tallies into the server's registry (after the diff,
    // so they never pollute this run's own stage breakdown) — overload runs
    // then surface in the same snapshot stream as the serving counters.
    let registry = server.metrics_registry();
    registry.counter("load.shed").add(outcome.shed as u64);
    registry.counter("load.errors").add(outcome.errors as u64);
    registry.counter("load.panics").add(outcome.panics as u64);
    Ok(LoadReport {
        spec: *spec,
        offered: requests.len(),
        completed: outcome.lat_ms.len(),
        errors: outcome.errors,
        shed: outcome.shed,
        panics: outcome.panics,
        degraded,
        deadline_exceeded,
        elapsed,
        latency: LatencySummary::from_latencies(outcome.lat_ms),
        stages: extract_stages(&diff),
        cache: server.cache_stats().since(&cache_before),
    })
}

/// Pull the `serve.stage.*_ns` histograms out of a snapshot diff as
/// millisecond stage summaries, in snapshot (name) order.
fn extract_stages(diff: &zoomer_obs::Snapshot) -> Vec<StageSummary> {
    const PREFIX: &str = "serve.stage.";
    const SUFFIX: &str = "_ns";
    let ms = |ns: f64| ns / 1e6;
    diff.histograms
        .iter()
        .filter_map(|h| {
            let stage = h.name.strip_prefix(PREFIX)?.strip_suffix(SUFFIX)?;
            Some(StageSummary {
                stage: stage.to_string(),
                count: h.count,
                mean_ms: ms(h.mean()),
                p50_ms: ms(h.p50() as f64),
                p95_ms: ms(h.p95() as f64),
                p99_ms: ms(h.p99() as f64),
            })
        })
        .collect()
}

/// Open-loop driver: a fixed arrival schedule feeds a bounded queue;
/// `num_threads` workers drain it, coalescing up to `batch_size` queued
/// requests into one `handle_batch` call.
///
/// With `queue_capacity: None` the queue holds the whole request set, so
/// admission never refuses anything — the pre-shedding behavior, exactly.
/// With a bound, a full queue sheds per [`ShedPolicy`] instead of blocking
/// the arrival schedule (an open-loop generator that blocks stops being
/// open-loop: queueing delay would silently throttle the offered rate).
fn run_open_loop<S: QueryService>(
    server: &S,
    requests: &[Query],
    qps: f64,
    spec: &LoadTestSpec,
) -> DriverOutcome {
    let interval = Duration::from_secs_f64(1.0 / qps);
    let capacity = spec.queue_capacity.unwrap_or(requests.len()).max(1);
    let (tx, rx) = bounded::<(Query, Instant)>(capacity);
    let latencies: Arc<parking_lot::Mutex<Vec<f64>>> =
        Arc::new(parking_lot::Mutex::new(Vec::with_capacity(requests.len())));
    let errors = AtomicUsize::new(0);
    let panics = AtomicUsize::new(0);
    let mut shed = 0usize;

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..spec.num_threads {
            let rx = rx.clone();
            let latencies = Arc::clone(&latencies);
            let errors = &errors;
            let panics = &panics;
            scope.spawn(move || {
                let mut batch: Vec<Query> = Vec::with_capacity(spec.batch_size);
                let mut enqueued: Vec<Instant> = Vec::with_capacity(spec.batch_size);
                // Block for the first request, then opportunistically drain
                // whatever else is already queued, up to the batch size.
                while let Ok((query, at)) = rx.recv() {
                    batch.push(query);
                    enqueued.push(at);
                    while batch.len() < spec.batch_size {
                        match rx.try_recv() {
                            Ok((q, at)) => {
                                batch.push(q);
                                enqueued.push(at);
                            }
                            Err(_) => break,
                        }
                    }
                    // A failed batch is its requests' problem, not the
                    // harness's: the worker tallies it (error or contained
                    // panic), records no latency for it, and keeps draining.
                    match catch_unwind(AssertUnwindSafe(|| server.serve_batch(&batch))) {
                        Ok(Ok(_)) => {
                            let done = Instant::now();
                            let mut lat = latencies.lock();
                            for &at in &enqueued {
                                lat.push(done.duration_since(at).as_secs_f64() * 1e3);
                            }
                        }
                        Ok(Err(_)) => {
                            errors.fetch_add(batch.len(), Ordering::Relaxed);
                        }
                        Err(_) => {
                            panics.fetch_add(1, Ordering::Relaxed);
                            errors.fetch_add(batch.len(), Ordering::Relaxed);
                        }
                    }
                    batch.clear();
                    enqueued.clear();
                }
            });
        }
        // Open-loop arrival schedule; sheds instead of blocking on a full
        // bounded queue. The generator keeps its own receiver handle for
        // `DropOldest` eviction.
        for (i, &query) in requests.iter().enumerate() {
            let due = start + interval.mul_f64(i as f64);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let mut item = (query, Instant::now());
            loop {
                match tx.try_send(item) {
                    Ok(()) => break,
                    Err(TrySendError::Disconnected(_)) => break,
                    Err(TrySendError::Full(back)) => match spec.shed {
                        ShedPolicy::RejectNew => {
                            shed += 1;
                            break;
                        }
                        ShedPolicy::DropOldest => {
                            // Evict one queued request and retry. A worker
                            // may win the race for it — then the queue has a
                            // free slot anyway and the retry succeeds.
                            if rx.try_recv().is_ok() {
                                shed += 1;
                            }
                            item = back;
                        }
                    },
                }
            }
        }
        drop(tx);
        drop(rx);
    });
    // The scope above joined every worker, so this take sees the final
    // vector; taking under the lock avoids an Arc::try_unwrap that would
    // need an `expect`.
    let lat_ms = std::mem::take(&mut *latencies.lock());
    DriverOutcome {
        lat_ms,
        shed,
        errors: errors.load(Ordering::Relaxed),
        panics: panics.load(Ordering::Relaxed),
    }
}

/// Closed-loop driver: `requests` are split across threads, each issuing its
/// share in `batch_size`-sized `handle_batch` calls back-to-back. Each
/// request is charged its whole batch's service time. Failed batches (error
/// or contained panic) are tallied and skipped, not aborted on: a load test
/// that dies at the first bad request cannot measure overload.
fn run_closed_loop<S: QueryService>(
    server: &S,
    requests: &[Query],
    spec: &LoadTestSpec,
) -> DriverOutcome {
    let outcomes: Vec<(Vec<f64>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.num_threads)
            .map(|t| {
                let share: Vec<Query> =
                    requests.iter().skip(t).step_by(spec.num_threads).copied().collect();
                let share_len = share.len();
                let handle = scope.spawn(move || {
                    let mut lats = Vec::with_capacity(share.len());
                    let mut errors = 0usize;
                    let mut panics = 0usize;
                    for chunk in share.chunks(spec.batch_size) {
                        let t0 = Instant::now();
                        match catch_unwind(AssertUnwindSafe(|| server.serve_batch(chunk))) {
                            Ok(Ok(_)) => {
                                let ms = t0.elapsed().as_secs_f64() * 1e3;
                                lats.extend(std::iter::repeat_n(ms, chunk.len()));
                            }
                            Ok(Err(_)) => errors += chunk.len(),
                            Err(_) => {
                                panics += 1;
                                errors += chunk.len();
                            }
                        }
                    }
                    (lats, errors, panics)
                });
                (handle, share_len)
            })
            .collect();
        handles
            .into_iter()
            .map(|(h, share_len)| {
                // Panics inside `handle_batch` are contained above; a failed
                // join can only mean the worker loop itself died, so charge
                // the whole share as errored rather than lose the run.
                h.join().unwrap_or_else(|_| (Vec::new(), share_len, 1))
            })
            .collect()
    });
    let mut out = DriverOutcome { lat_ms: Vec::new(), shed: 0, errors: 0, panics: 0 };
    for (lats, errors, panics) in outcomes {
        out.lat_ms.extend(lats);
        out.errors += errors;
        out.panics += panics;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::FrozenModel;
    use crate::server::ServingConfig;
    use zoomer_data::{TaobaoConfig, TaobaoData};
    use zoomer_graph::NodeId;
    use zoomer_model::{ModelConfig, UnifiedCtrModel};
    use zoomer_obs::MetricsRegistry;

    fn server_and_requests(metrics: bool) -> (OnlineServer, Vec<Query>) {
        let data = TaobaoData::generate(TaobaoConfig::tiny(91));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(13, dd));
        let frozen = FrozenModel::from_model(&mut model, &data.graph);
        let items = data.item_nodes();
        let graph = Arc::new(
            zoomer_graph::read_snapshot(zoomer_graph::write_snapshot(&data.graph))
                .expect("roundtrip"),
        );
        let mut builder = OnlineServer::builder()
            .graph(graph)
            .frozen(frozen)
            .item_pool(&items)
            .config(ServingConfig { top_k: 10, ..Default::default() })
            .seed(91);
        if metrics {
            builder = builder.metrics(Arc::new(MetricsRegistry::enabled()));
        }
        let server = builder.build().expect("server build");
        let requests: Vec<Query> =
            data.logs.iter().take(120).map(|l| Query::new(l.user, l.query)).collect();
        (server, requests)
    }

    #[test]
    fn open_loop_completes_all_requests() {
        let (server, requests) = server_and_requests(false);
        let spec = LoadTestSpec::open(2000.0).num_threads(2);
        let report = run_load(&server, &requests, &spec).expect("load run");
        assert_eq!(report.completed, requests.len());
        assert!(report.latency.mean_ms >= 0.0);
        assert!(report.latency.p50_ms <= report.latency.p95_ms);
        assert!(report.latency.p95_ms <= report.latency.p99_ms);
        assert!(report.latency.p99_ms <= report.latency.max_ms + 1e-9);
        assert!(report.achieved_qps() > 0.0);
        assert_eq!(report.offered_qps(), Some(2000.0));
        assert!(report.cache.total() > 0, "run must account cache lookups");
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let lat: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = LatencySummary::from_latencies(lat);
        assert!((s.p50_ms - 50.0).abs() <= 1.0);
        assert!((s.p99_ms - 99.0).abs() <= 1.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn batched_open_loop_completes_all_requests() {
        let (server, requests) = server_and_requests(false);
        let spec = LoadTestSpec::open(5000.0).num_threads(2).batch_size(8);
        let report = run_load(&server, &requests, &spec).expect("load run");
        assert_eq!(report.completed, requests.len());
        assert!(report.latency.p50_ms <= report.latency.p99_ms);
    }

    #[test]
    fn closed_loop_reports_throughput_and_stages() {
        let (server, requests) = server_and_requests(true);
        let spec = LoadTestSpec::closed().num_threads(2).batch_size(16);
        let report = run_load(&server, &requests, &spec).expect("load run");
        assert_eq!(report.completed, requests.len());
        assert_eq!(report.spec.batch_size, 16);
        assert!(report.achieved_qps() > 0.0);
        assert!(report.latency.mean_ms > 0.0);
        assert_eq!(report.offered_qps(), None);
        // With an enabled registry the per-stage breakdown is populated.
        for stage in ["cache_resolve", "embed", "ann_probe", "rank"] {
            let s = report.stage(stage).unwrap_or_else(|| panic!("missing stage {stage}"));
            assert!(s.count > 0, "stage {stage} recorded no batches");
            assert!(s.p50_ms <= s.p99_ms + 1e-9);
        }
    }

    #[test]
    fn stage_breakdown_covers_only_this_run() {
        let (server, requests) = server_and_requests(true);
        // Warm-up traffic outside the measured run.
        run_load(&server, &requests, &LoadTestSpec::closed().batch_size(8)).expect("warm-up");
        let batches = requests.len().div_ceil(16);
        let report = run_load(&server, &requests, &LoadTestSpec::closed().batch_size(16))
            .expect("measured run");
        for s in &report.stages {
            assert_eq!(
                s.count, batches as u64,
                "stage {} must count only this run's batches",
                s.stage
            );
        }
        assert_eq!(report.cache.misses, 0, "second pass must be all cache hits");
        assert!(report.cache.hits > 0);
    }

    #[test]
    fn disabled_registry_reports_empty_stage_samples() {
        let (server, requests) = server_and_requests(false);
        let report = run_load(&server, &requests[..32], &LoadTestSpec::closed().batch_size(8))
            .expect("load run");
        for s in &report.stages {
            assert_eq!(s.count, 0, "disabled registry must not time stages");
        }
    }

    #[test]
    fn invalid_load_parameters_are_typed_errors() {
        let (server, requests) = server_and_requests(false);
        for bad in [
            run_load(&server, &requests, &LoadTestSpec::open(0.0)),
            run_load(&server, &requests, &LoadTestSpec::open(100.0).num_threads(0)),
            run_load(&server, &[], &LoadTestSpec::open(100.0)),
            run_load(&server, &requests, &LoadTestSpec::open(100.0).batch_size(0)),
            run_load(&server, &requests, &LoadTestSpec::closed().num_threads(0)),
            run_load(&server, &requests, &LoadTestSpec::open(100.0).queue_capacity(0)),
        ] {
            assert!(matches!(bad, Err(ServingError::InvalidConfig(_))), "{bad:?}");
        }
    }

    #[test]
    fn open_loop_counts_malformed_requests_as_errors_not_completions() {
        let (server, mut requests) = server_and_requests(false);
        requests.truncate(30);
        let bogus = server.graph().num_nodes() as NodeId + 3;
        // Three malformed arrivals scattered through the schedule. Batch
        // size 1 keeps each in its own batch, so exactly three batches fail.
        for i in [5, 14, 23] {
            requests[i] = Query::new(bogus, requests[i].query);
        }
        let report = run_load(&server, &requests, &LoadTestSpec::open(5_000.0)).expect("load run");
        assert_eq!(report.offered, 30);
        assert_eq!(report.errors, 3, "each malformed request must be tallied as an error");
        assert_eq!(report.completed, 27, "failed requests must not count as completed");
        assert_eq!(report.shed, 0);
        assert_eq!(report.panics, 0);
        assert_eq!(report.completed + report.errors + report.shed, report.offered);
    }

    #[test]
    fn closed_loop_counts_errors_and_keeps_going() {
        let (server, mut requests) = server_and_requests(false);
        requests.truncate(24);
        let bogus = server.graph().num_nodes() as NodeId + 3;
        requests[7] = Query::new(bogus, requests[7].query);
        let report = run_load(&server, &requests, &LoadTestSpec::closed()).expect("load run");
        assert_eq!(report.errors, 1);
        assert_eq!(report.completed, 23, "the run must outlive one bad request");
        assert_eq!(report.completed + report.errors + report.shed, report.offered);
    }

    #[test]
    fn overload_on_a_bounded_queue_sheds_and_stays_accounted() {
        let (server, requests) = server_and_requests(false);
        // Offered far beyond service capacity (1µs arrivals) into a 2-slot
        // queue: most arrivals must be refused, every request must land in
        // exactly one of completed/errors/shed, and nothing may block.
        let spec = LoadTestSpec::open(1_000_000.0).queue_capacity(2);
        let report = run_load(&server, &requests, &spec).expect("load run");
        assert!(report.shed > 0, "5x+ overload on a 2-slot queue must shed");
        assert!(report.shed_rate() > 0.0);
        assert_eq!(report.completed + report.errors + report.shed, report.offered);
        assert!(report.completed > 0, "admitted requests must still complete");
    }

    #[test]
    fn drop_oldest_sheds_queued_requests_instead_of_new_arrivals() {
        let (server, requests) = server_and_requests(false);
        let spec = LoadTestSpec::open(1_000_000.0).queue_capacity(2).shed(ShedPolicy::DropOldest);
        let report = run_load(&server, &requests, &spec).expect("load run");
        assert!(report.shed > 0, "overload must evict queued requests");
        assert_eq!(report.completed + report.errors + report.shed, report.offered);
    }

    #[test]
    fn unloaded_bounded_queue_sheds_nothing() {
        let (server, requests) = server_and_requests(false);
        // Well under capacity: a gentle trickle into a roomy queue must
        // behave exactly like the unbounded harness.
        let spec = LoadTestSpec::open(500.0).queue_capacity(requests.len()).num_threads(2);
        let report = run_load(&server, &requests[..40], &spec).expect("load run");
        assert_eq!(report.shed, 0, "uncontended queue must never shed");
        assert_eq!(report.errors, 0);
        assert_eq!(report.completed, 40);
    }

    #[test]
    fn overload_grows_latency() {
        // Saturating one slow thread must show higher p95 than a gentle
        // trickle on two threads.
        let (server, requests) = server_and_requests(false);
        let gentle = run_load(&server, &requests[..40], &LoadTestSpec::open(200.0).num_threads(2))
            .expect("load run");
        let slam = run_load(&server, &requests, &LoadTestSpec::open(50_000.0)).expect("load run");
        assert!(
            slam.latency.p95_ms >= gentle.latency.p95_ms,
            "overload p95 {} should be ≥ gentle p95 {}",
            slam.latency.p95_ms,
            gentle.latency.p95_ms
        );
    }
}
