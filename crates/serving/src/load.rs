//! Load harnesses for the serving stack (Fig 9).
//!
//! Two shapes:
//!
//! * **Open loop** ([`run_load_test`], [`run_batched_load_test`]): requests
//!   arrive on a fixed schedule, so queueing delay shows up in the measured
//!   response time exactly as it would for real traffic; a fixed pool of
//!   server threads drains the queue. Reported latency is end-to-end:
//!   enqueue → response. The batched variant lets each worker drain up to
//!   `batch_size` queued requests into one `handle_batch` call — the
//!   arrival-coalescing a production front-end performs under load.
//! * **Closed loop** ([`run_closed_loop`]): every thread issues its next
//!   batch as soon as the previous one returns, measuring peak sustainable
//!   throughput at a given batch size (the Fig 9 batched series).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::bounded;
use zoomer_graph::NodeId;

use crate::error::ServingError;
use crate::server::OnlineServer;

/// Latency summary over one load run.
#[derive(Clone, Debug)]
pub struct LatencyStats {
    pub offered_qps: f64,
    pub completed: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl LatencyStats {
    fn from_latencies(offered_qps: f64, mut lat_ms: Vec<f64>, elapsed: Duration) -> Self {
        lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = lat_ms.len();
        let pct = |p: f64| -> f64 {
            if n == 0 {
                return 0.0;
            }
            lat_ms[((n as f64 - 1.0) * p).round() as usize]
        };
        Self {
            offered_qps,
            completed: n,
            mean_ms: if n == 0 { 0.0 } else { lat_ms.iter().sum::<f64>() / n as f64 },
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: lat_ms.last().copied().unwrap_or(0.0),
            elapsed,
        }
    }

    /// Achieved throughput.
    pub fn achieved_qps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Run an open-loop load test: `requests` (user, query) pairs offered at
/// `qps`, served by `num_threads` worker threads.
pub fn run_load_test(
    server: &OnlineServer,
    requests: &[(NodeId, NodeId)],
    qps: f64,
    num_threads: usize,
) -> Result<LatencyStats, ServingError> {
    validate_load_params(requests, qps, num_threads, 1)?;

    let interval = Duration::from_secs_f64(1.0 / qps);
    let (tx, rx) = bounded::<(NodeId, NodeId, Instant)>(requests.len());
    let latencies: Arc<parking_lot::Mutex<Vec<f64>>> =
        Arc::new(parking_lot::Mutex::new(Vec::with_capacity(requests.len())));

    let start = Instant::now();
    std::thread::scope(|scope| {
        // Server threads.
        for _ in 0..num_threads {
            let rx = rx.clone();
            let server = server.clone();
            let latencies = Arc::clone(&latencies);
            scope.spawn(move || {
                for (user, query, enqueued) in rx {
                    // A per-request error is that request's problem, not the
                    // harness's; the worker keeps draining the queue.
                    let _ = server.handle(user, query);
                    let ms = enqueued.elapsed().as_secs_f64() * 1e3;
                    latencies.lock().push(ms);
                }
            });
        }
        drop(rx);
        // Open-loop arrival schedule.
        for (i, &(user, query)) in requests.iter().enumerate() {
            let due = start + interval.mul_f64(i as f64);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let _ = tx.send((user, query, Instant::now()));
        }
        drop(tx);
    });
    let elapsed = start.elapsed();
    // The scope above joined every worker, so this take sees the final
    // vector; taking under the lock avoids an Arc::try_unwrap that would
    // need an `expect`.
    let lat = std::mem::take(&mut *latencies.lock());
    Ok(LatencyStats::from_latencies(qps, lat, elapsed))
}

/// Run an open-loop load test where each worker drains up to `batch_size`
/// queued requests into a single [`OnlineServer::handle_batch`] call. With
/// `batch_size == 1` this is exactly [`run_load_test`]. Latency per request
/// is still enqueue → batch completion, so coalescing that delays an early
/// arrival is charged against it.
pub fn run_batched_load_test(
    server: &OnlineServer,
    requests: &[(NodeId, NodeId)],
    qps: f64,
    num_threads: usize,
    batch_size: usize,
) -> Result<LatencyStats, ServingError> {
    validate_load_params(requests, qps, num_threads, batch_size)?;

    let interval = Duration::from_secs_f64(1.0 / qps);
    let (tx, rx) = bounded::<(NodeId, NodeId, Instant)>(requests.len());
    let latencies: Arc<parking_lot::Mutex<Vec<f64>>> =
        Arc::new(parking_lot::Mutex::new(Vec::with_capacity(requests.len())));

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..num_threads {
            let rx = rx.clone();
            let server = server.clone();
            let latencies = Arc::clone(&latencies);
            scope.spawn(move || {
                let mut batch: Vec<(NodeId, NodeId)> = Vec::with_capacity(batch_size);
                let mut enqueued: Vec<Instant> = Vec::with_capacity(batch_size);
                // Block for the first request, then opportunistically drain
                // whatever else is already queued, up to the batch size.
                while let Ok((user, query, at)) = rx.recv() {
                    batch.push((user, query));
                    enqueued.push(at);
                    while batch.len() < batch_size {
                        match rx.try_recv() {
                            Ok((u, q, at)) => {
                                batch.push((u, q));
                                enqueued.push(at);
                            }
                            Err(_) => break,
                        }
                    }
                    let _ = server.handle_batch(&batch);
                    let done = Instant::now();
                    let mut lat = latencies.lock();
                    for &at in &enqueued {
                        lat.push(done.duration_since(at).as_secs_f64() * 1e3);
                    }
                    drop(lat);
                    batch.clear();
                    enqueued.clear();
                }
            });
        }
        drop(rx);
        for (i, &(user, query)) in requests.iter().enumerate() {
            let due = start + interval.mul_f64(i as f64);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let _ = tx.send((user, query, Instant::now()));
        }
        drop(tx);
    });
    let elapsed = start.elapsed();
    let lat = std::mem::take(&mut *latencies.lock());
    Ok(LatencyStats::from_latencies(qps, lat, elapsed))
}

/// Throughput summary of one closed-loop run.
#[derive(Clone, Debug)]
pub struct ThroughputStats {
    pub batch_size: usize,
    pub completed: usize,
    pub elapsed: Duration,
    /// Mean per-request latency: each request is charged its whole batch's
    /// service time.
    pub mean_ms: f64,
}

impl ThroughputStats {
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Closed-loop throughput run: `requests` are split across `num_threads`
/// threads, each issuing its share in `batch_size`-sized `handle_batch`
/// calls back-to-back. Measures peak sustainable requests/sec at the given
/// batch size; `batch_size == 1` is the per-request baseline on the same
/// code path.
pub fn run_closed_loop(
    server: &OnlineServer,
    requests: &[(NodeId, NodeId)],
    num_threads: usize,
    batch_size: usize,
) -> Result<ThroughputStats, ServingError> {
    validate_load_params(requests, 1.0, num_threads, batch_size)?;

    let start = Instant::now();
    let lats: Result<Vec<Vec<f64>>, ServingError> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..num_threads)
            .map(|t| {
                let server = server.clone();
                let share: Vec<(NodeId, NodeId)> =
                    requests.iter().skip(t).step_by(num_threads).copied().collect();
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(share.len());
                    for chunk in share.chunks(batch_size) {
                        let t0 = Instant::now();
                        server.handle_batch(chunk)?;
                        let ms = t0.elapsed().as_secs_f64() * 1e3;
                        lats.extend(std::iter::repeat_n(ms, chunk.len()));
                    }
                    Ok(lats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().map_err(|_| ServingError::WorkerPanicked("closed-loop load worker"))?
            })
            .collect()
    });
    let elapsed = start.elapsed();
    let all: Vec<f64> = lats?.into_iter().flatten().collect();
    let completed = all.len();
    Ok(ThroughputStats {
        batch_size,
        completed,
        elapsed,
        mean_ms: if completed == 0 { 0.0 } else { all.iter().sum::<f64>() / completed as f64 },
    })
}

/// Shared parameter validation for the load harnesses: bad parameters are a
/// caller bug reported as [`ServingError::InvalidConfig`], not a panic.
fn validate_load_params(
    requests: &[(NodeId, NodeId)],
    qps: f64,
    num_threads: usize,
    batch_size: usize,
) -> Result<(), ServingError> {
    if !qps.is_finite() || qps <= 0.0 {
        return Err(ServingError::InvalidConfig("qps must be positive and finite"));
    }
    if num_threads == 0 {
        return Err(ServingError::InvalidConfig("need at least one server thread"));
    }
    if batch_size == 0 {
        return Err(ServingError::InvalidConfig("need a positive batch size"));
    }
    if requests.is_empty() {
        return Err(ServingError::InvalidConfig("need at least one request"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::FrozenModel;
    use crate::server::ServingConfig;
    use zoomer_data::{TaobaoConfig, TaobaoData};
    use zoomer_model::{ModelConfig, UnifiedCtrModel};

    fn server_and_requests() -> (OnlineServer, Vec<(NodeId, NodeId)>) {
        let data = TaobaoData::generate(TaobaoConfig::tiny(91));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(13, dd));
        let frozen = FrozenModel::from_model(&mut model, &data.graph);
        let items = data.item_nodes();
        let graph = Arc::new(
            zoomer_graph::read_snapshot(zoomer_graph::write_snapshot(&data.graph))
                .expect("roundtrip"),
        );
        let server = OnlineServer::build(
            graph,
            frozen,
            &items,
            ServingConfig { top_k: 10, ..Default::default() },
            91,
        )
        .expect("server build");
        let requests: Vec<(NodeId, NodeId)> =
            data.logs.iter().take(120).map(|l| (l.user, l.query)).collect();
        (server, requests)
    }

    #[test]
    fn load_test_completes_all_requests() {
        let (server, requests) = server_and_requests();
        let stats = run_load_test(&server, &requests, 2000.0, 2).expect("load run");
        assert_eq!(stats.completed, requests.len());
        assert!(stats.mean_ms >= 0.0);
        assert!(stats.p50_ms <= stats.p95_ms && stats.p95_ms <= stats.p99_ms);
        assert!(stats.p99_ms <= stats.max_ms + 1e-9);
        assert!(stats.achieved_qps() > 0.0);
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let lat: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let stats = LatencyStats::from_latencies(1.0, lat, Duration::from_secs(1));
        assert!((stats.p50_ms - 50.0).abs() <= 1.0);
        assert!((stats.p99_ms - 99.0).abs() <= 1.0);
        assert_eq!(stats.max_ms, 100.0);
        assert!((stats.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn batched_load_test_completes_all_requests() {
        let (server, requests) = server_and_requests();
        let stats = run_batched_load_test(&server, &requests, 5000.0, 2, 8).expect("load run");
        assert_eq!(stats.completed, requests.len());
        assert!(stats.p50_ms <= stats.p99_ms);
    }

    #[test]
    fn closed_loop_reports_throughput() {
        let (server, requests) = server_and_requests();
        let stats = run_closed_loop(&server, &requests, 2, 16).expect("load run");
        assert_eq!(stats.completed, requests.len());
        assert_eq!(stats.batch_size, 16);
        assert!(stats.requests_per_sec() > 0.0);
        assert!(stats.mean_ms > 0.0);
    }

    #[test]
    fn invalid_load_parameters_are_typed_errors() {
        let (server, requests) = server_and_requests();
        for bad in [
            run_load_test(&server, &requests, 0.0, 2),
            run_load_test(&server, &requests, 100.0, 0),
            run_load_test(&server, &[], 100.0, 2),
            run_batched_load_test(&server, &requests, 100.0, 2, 0),
        ] {
            assert!(matches!(bad, Err(ServingError::InvalidConfig(_))), "{bad:?}");
        }
        assert!(matches!(
            run_closed_loop(&server, &requests, 0, 4),
            Err(ServingError::InvalidConfig(_))
        ));
    }

    #[test]
    fn overload_grows_latency() {
        // Saturating one slow thread must show higher p95 than a gentle
        // trickle on two threads.
        let (server, requests) = server_and_requests();
        let gentle = run_load_test(&server, &requests[..40], 200.0, 2).expect("load run");
        let slam = run_load_test(&server, &requests, 50_000.0, 1).expect("load run");
        assert!(
            slam.p95_ms >= gentle.p95_ms,
            "overload p95 {} should be ≥ gentle p95 {}",
            slam.p95_ms,
            gentle.p95_ms
        );
    }
}
