//! Open-loop QPS/latency load harness (Fig 9).
//!
//! Requests arrive on a fixed schedule (open loop, so queueing delay shows up
//! in the measured response time exactly as it would for real traffic); a
//! fixed pool of server threads drains the queue. Reported latency is
//! end-to-end: enqueue → response.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::bounded;
use zoomer_graph::NodeId;

use crate::server::OnlineServer;

/// Latency summary over one load run.
#[derive(Clone, Debug)]
pub struct LatencyStats {
    pub offered_qps: f64,
    pub completed: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl LatencyStats {
    fn from_latencies(offered_qps: f64, mut lat_ms: Vec<f64>, elapsed: Duration) -> Self {
        lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = lat_ms.len();
        let pct = |p: f64| -> f64 {
            if n == 0 {
                return 0.0;
            }
            lat_ms[((n as f64 - 1.0) * p).round() as usize]
        };
        Self {
            offered_qps,
            completed: n,
            mean_ms: if n == 0 { 0.0 } else { lat_ms.iter().sum::<f64>() / n as f64 },
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: lat_ms.last().copied().unwrap_or(0.0),
            elapsed,
        }
    }

    /// Achieved throughput.
    pub fn achieved_qps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }
}

/// Run an open-loop load test: `requests` (user, query) pairs offered at
/// `qps`, served by `num_threads` worker threads.
pub fn run_load_test(
    server: &OnlineServer,
    requests: &[(NodeId, NodeId)],
    qps: f64,
    num_threads: usize,
) -> LatencyStats {
    assert!(qps > 0.0, "qps must be positive");
    assert!(num_threads > 0, "need at least one server thread");
    assert!(!requests.is_empty(), "need at least one request");

    let interval = Duration::from_secs_f64(1.0 / qps);
    let (tx, rx) = bounded::<(NodeId, NodeId, Instant)>(requests.len());
    let latencies: Arc<parking_lot::Mutex<Vec<f64>>> =
        Arc::new(parking_lot::Mutex::new(Vec::with_capacity(requests.len())));

    let start = Instant::now();
    std::thread::scope(|scope| {
        // Server threads.
        for _ in 0..num_threads {
            let rx = rx.clone();
            let server = server.clone();
            let latencies = Arc::clone(&latencies);
            scope.spawn(move || {
                for (user, query, enqueued) in rx {
                    let _ = server.handle(user, query);
                    let ms = enqueued.elapsed().as_secs_f64() * 1e3;
                    latencies.lock().push(ms);
                }
            });
        }
        drop(rx);
        // Open-loop arrival schedule.
        for (i, &(user, query)) in requests.iter().enumerate() {
            let due = start + interval.mul_f64(i as f64);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let _ = tx.send((user, query, Instant::now()));
        }
        drop(tx);
    });
    let elapsed = start.elapsed();
    let lat = Arc::try_unwrap(latencies)
        .expect("threads joined")
        .into_inner();
    LatencyStats::from_latencies(qps, lat, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::FrozenModel;
    use crate::server::ServingConfig;
    use zoomer_data::{TaobaoConfig, TaobaoData};
    use zoomer_model::{ModelConfig, UnifiedCtrModel};

    fn server_and_requests() -> (OnlineServer, Vec<(NodeId, NodeId)>) {
        let data = TaobaoData::generate(TaobaoConfig::tiny(91));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(13, dd));
        let frozen = FrozenModel::from_model(&mut model, &data.graph);
        let items = data.item_nodes();
        let graph = Arc::new(zoomer_graph::read_snapshot(zoomer_graph::write_snapshot(
            &data.graph,
        ))
        .expect("roundtrip"));
        let server = OnlineServer::build(
            graph,
            frozen,
            &items,
            ServingConfig { top_k: 10, ..Default::default() },
            91,
        );
        let requests: Vec<(NodeId, NodeId)> =
            data.logs.iter().take(120).map(|l| (l.user, l.query)).collect();
        (server, requests)
    }

    #[test]
    fn load_test_completes_all_requests() {
        let (server, requests) = server_and_requests();
        let stats = run_load_test(&server, &requests, 2000.0, 2);
        assert_eq!(stats.completed, requests.len());
        assert!(stats.mean_ms >= 0.0);
        assert!(stats.p50_ms <= stats.p95_ms && stats.p95_ms <= stats.p99_ms);
        assert!(stats.p99_ms <= stats.max_ms + 1e-9);
        assert!(stats.achieved_qps() > 0.0);
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let lat: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let stats = LatencyStats::from_latencies(1.0, lat, Duration::from_secs(1));
        assert!((stats.p50_ms - 50.0).abs() <= 1.0);
        assert!((stats.p99_ms - 99.0).abs() <= 1.0);
        assert_eq!(stats.max_ms, 100.0);
        assert!((stats.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn overload_grows_latency() {
        // Saturating one slow thread must show higher p95 than a gentle
        // trickle on two threads.
        let (server, requests) = server_and_requests();
        let gentle = run_load_test(&server, &requests[..40], 200.0, 2);
        let slam = run_load_test(&server, &requests, 50_000.0, 1);
        assert!(
            slam.p95_ms >= gentle.p95_ms,
            "overload p95 {} should be ≥ gentle p95 {}",
            slam.p95_ms,
            gentle.p95_ms
        );
    }
}
