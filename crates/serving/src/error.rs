//! Typed errors for the online serving stack.
//!
//! The serving crate is the hot path: zoomer-lint rule L001 forbids
//! `unwrap`/`expect`/`panic!` in its non-test code, so every fallible
//! request-path operation reports a [`ServingError`] instead of aborting the
//! process. A malformed request must cost its caller an error response, not
//! the whole server.

use zoomer_graph::{GraphError, NodeId};

/// Why a serving operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServingError {
    /// A request referenced a node id outside the loaded graph.
    NodeOutOfRange { node: NodeId, num_nodes: usize },
    /// A query vector's width does not match the index dimension.
    DimensionMismatch { expected: usize, got: usize },
    /// A build- or load-time parameter was unusable.
    InvalidConfig(&'static str),
    /// The request's latency budget was already spent at the named stage.
    /// Only raised at admission — once a batch is admitted the server
    /// degrades (caps the probe, falls back to the inverted index) rather
    /// than wasting the work it has already done.
    DeadlineExceeded { stage: &'static str },
    /// A load-harness worker thread panicked.
    WorkerPanicked(&'static str),
    /// An internal invariant broke; the message names it.
    Internal(&'static str),
    /// The underlying graph engine reported an error.
    Graph(GraphError),
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            ServingError::DimensionMismatch { expected, got } => {
                write!(f, "query width mismatch: index dim {expected}, got {got}")
            }
            ServingError::InvalidConfig(msg) => write!(f, "invalid serving config: {msg}"),
            ServingError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at {stage}")
            }
            ServingError::WorkerPanicked(msg) => write!(f, "worker panicked: {msg}"),
            ServingError::Internal(msg) => write!(f, "internal serving invariant broken: {msg}"),
            ServingError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ServingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServingError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ServingError {
    fn from(e: GraphError) -> Self {
        ServingError::Graph(e)
    }
}
