//! Length-prefixed binary wire protocol for the `zoomer-serve` front door.
//!
//! Every frame is a `u32` little-endian payload length followed by the
//! payload. Payload layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       2     magic        0x5A4D ("ZM")
//! 2       1     version      1
//! 3       1     kind         1 = request · 2 = response · 3 = error
//! 4       …     body         (by kind, below)
//!
//! request body                      response body
//! ┌───────────────────────────┐     ┌──────────────────────────────┐
//! │ deadline_us   u64 (0=∞)   │     │ count          u32           │
//! │ count         u32         │     │ count × row:                 │
//! │ count × query:            │     │   status       u8 (0=ok,     │
//! │   user        u32         │     │                  1=shed,     │
//! │   query       u32         │     │                  2=rejected) │
//! │   tenant      u32         │     │   degraded     u8            │
//! │   top_k       u32         │     │   n_items      u32           │
//! │                           │     │   n_items × item u32         │
//! └───────────────────────────┘     └──────────────────────────────┘
//!
//! error body: msg_len u32, msg_len × UTF-8 bytes
//! ```
//!
//! The request header is exactly the typed [`Query`] — tenant and top-k
//! ride every request, and `deadline_us` starts the batch's [`Deadline`]
//! at decode time so queueing and transport already count against the
//! budget. Decoding never panics: every malformed input maps to a typed
//! [`WireError`] (proptest-pinned in `tests/wire_roundtrip.rs`), and
//! frames above [`MAX_FRAME_LEN`] are rejected before any allocation.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use zoomer_graph::{NodeId, Query, Retrieval};
use zoomer_obs::Counter;

use crate::deadline::Deadline;
use crate::error::ServingError;
use crate::router::TenantFairGate;
use crate::sharded::ShardedServer;

/// Frame magic: "ZM" little-endian.
pub const WIRE_MAGIC: u16 = 0x5A4D;
/// Current protocol version.
pub const WIRE_VERSION: u8 = 1;
/// Upper bound on a frame payload; larger length prefixes are rejected
/// before any buffer is allocated for them.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;

/// Why a frame could not be encoded, decoded, or transported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the structure it promised.
    Truncated { needed: usize, got: usize },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized { len: usize },
    /// The first two payload bytes are not [`WIRE_MAGIC`].
    BadMagic(u16),
    /// A version this decoder does not speak.
    UnsupportedVersion(u8),
    /// An unknown frame kind, or a kind the caller did not expect.
    BadKind(u8),
    /// An unknown per-row status byte.
    BadStatus(u8),
    /// Bytes left over after the structure was fully decoded.
    TrailingBytes { extra: usize },
    /// An error frame's message was not UTF-8.
    BadErrorMessage,
    /// The peer sent a well-formed error frame; its message.
    Remote(String),
    /// Socket-level failure.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "bad or unexpected frame kind {k}"),
            WireError::BadStatus(s) => write!(f, "bad response row status {s}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete frame")
            }
            WireError::BadErrorMessage => write!(f, "error frame message is not UTF-8"),
            WireError::Remote(msg) => write!(f, "server error: {msg}"),
            WireError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

/// A decoded request frame: the batch plus its header deadline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestFrame {
    /// Per-batch budget in microseconds; 0 = unbounded.
    pub deadline_us: u64,
    pub queries: Vec<Query>,
}

impl RequestFrame {
    /// The header budget as a running [`Deadline`], started now.
    pub fn deadline(&self) -> Deadline {
        if self.deadline_us == 0 {
            Deadline::none()
        } else {
            Deadline::after(Duration::from_micros(self.deadline_us))
        }
    }
}

/// Per-query outcome at the front door.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Served; the row carries the retrieval.
    Ok,
    /// Shed by per-tenant fair admission before any serving work.
    Shed,
    /// The connection itself was over the front door's concurrent-connection
    /// cap; the client should back off and dial again.
    Rejected,
}

/// One query's row in a response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseRow {
    pub status: ResponseStatus,
    pub retrieval: Retrieval,
}

/// A decoded response frame: one row per query, in request order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseFrame {
    pub rows: Vec<ResponseRow>,
}

/// Little-endian cursor over a payload; every read is bounds-checked.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Oversized { len: usize::MAX })?;
        if end > self.buf.len() {
            return Err(WireError::Truncated { needed: end, got: self.buf.len() });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes { extra: self.buf.len() - self.pos });
        }
        Ok(())
    }
}

fn header(kind: u8, body_hint: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body_hint);
    out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(kind);
    out
}

fn decode_header(c: &mut Cursor<'_>) -> Result<u8, WireError> {
    let magic = c.u16()?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    c.u8()
}

/// Encode a request payload (no length prefix).
pub fn encode_request(frame: &RequestFrame) -> Vec<u8> {
    let mut out = header(KIND_REQUEST, 12 + frame.queries.len() * 16);
    out.extend_from_slice(&frame.deadline_us.to_le_bytes());
    out.extend_from_slice(&(frame.queries.len() as u32).to_le_bytes());
    for q in &frame.queries {
        out.extend_from_slice(&q.user.to_le_bytes());
        out.extend_from_slice(&q.query.to_le_bytes());
        out.extend_from_slice(&q.tenant.to_le_bytes());
        out.extend_from_slice(&q.top_k.to_le_bytes());
    }
    out
}

/// Encode a response payload (no length prefix).
pub fn encode_response(frame: &ResponseFrame) -> Vec<u8> {
    let items: usize = frame.rows.iter().map(|r| r.retrieval.items.len()).sum();
    let mut out = header(KIND_RESPONSE, 4 + frame.rows.len() * 6 + items * 4);
    out.extend_from_slice(&(frame.rows.len() as u32).to_le_bytes());
    for row in &frame.rows {
        out.push(match row.status {
            ResponseStatus::Ok => 0,
            ResponseStatus::Shed => 1,
            ResponseStatus::Rejected => 2,
        });
        out.push(u8::from(row.retrieval.degraded));
        out.extend_from_slice(&(row.retrieval.items.len() as u32).to_le_bytes());
        for &item in &row.retrieval.items {
            out.extend_from_slice(&item.to_le_bytes());
        }
    }
    out
}

/// Encode an error payload (no length prefix).
pub fn encode_error(message: &str) -> Vec<u8> {
    let mut out = header(KIND_ERROR, 4 + message.len());
    out.extend_from_slice(&(message.len() as u32).to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decode a request payload. Rejects any non-request frame kind.
pub fn decode_request(payload: &[u8]) -> Result<RequestFrame, WireError> {
    let mut c = Cursor::new(payload);
    let kind = decode_header(&mut c)?;
    if kind != KIND_REQUEST {
        return Err(WireError::BadKind(kind));
    }
    let deadline_us = c.u64()?;
    let count = c.u32()? as usize;
    // Cheap sanity bound before reserving: each query is 16 payload bytes.
    if count.saturating_mul(16) > payload.len() {
        return Err(WireError::Truncated { needed: 16 + count * 16, got: payload.len() });
    }
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        let (user, query) = (c.u32()?, c.u32()?);
        let (tenant, top_k) = (c.u32()?, c.u32()?);
        queries.push(Query { user, query, tenant, top_k });
    }
    c.finish()?;
    Ok(RequestFrame { deadline_us, queries })
}

/// Decode a response payload. A well-formed error frame surfaces as
/// [`WireError::Remote`]; any other kind is [`WireError::BadKind`].
pub fn decode_response(payload: &[u8]) -> Result<ResponseFrame, WireError> {
    let mut c = Cursor::new(payload);
    let kind = decode_header(&mut c)?;
    if kind == KIND_ERROR {
        let len = c.u32()? as usize;
        let msg = std::str::from_utf8(c.take(len)?).map_err(|_| WireError::BadErrorMessage)?;
        return Err(WireError::Remote(msg.to_string()));
    }
    if kind != KIND_RESPONSE {
        return Err(WireError::BadKind(kind));
    }
    let count = c.u32()? as usize;
    if count.saturating_mul(6) > payload.len() {
        return Err(WireError::Truncated { needed: 8 + count * 6, got: payload.len() });
    }
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let status = match c.u8()? {
            0 => ResponseStatus::Ok,
            1 => ResponseStatus::Shed,
            2 => ResponseStatus::Rejected,
            other => return Err(WireError::BadStatus(other)),
        };
        let degraded = c.u8()? != 0;
        let n_items = c.u32()? as usize;
        if n_items.saturating_mul(4) > payload.len() {
            return Err(WireError::Truncated { needed: n_items * 4, got: payload.len() });
        }
        let mut items = Vec::with_capacity(n_items);
        for _ in 0..n_items {
            items.push(c.u32()? as NodeId);
        }
        rows.push(ResponseRow { status, retrieval: Retrieval { items, degraded } });
    }
    c.finish()?;
    Ok(ResponseFrame { rows })
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len: payload.len() });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame. `Ok(None)` is a clean EOF at a frame
/// boundary (the peer hung up between requests).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(WireError::Truncated { needed: 4, got: filled }),
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len];
    let mut read = 0;
    while read < len {
        match r.read(&mut payload[read..])? {
            0 => return Err(WireError::Truncated { needed: len, got: read }),
            n => read += n,
        }
    }
    Ok(Some(payload))
}

/// Blocking TCP client for the `zoomer-serve` protocol; one in-flight
/// request per connection (the load harness opens one client per worker).
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connect to a `zoomer-serve` front door.
    pub fn connect(addr: &str) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Send one batch and block for its response. `deadline_us == 0` is
    /// unbounded.
    pub fn retrieve(
        &mut self,
        queries: &[Query],
        deadline_us: u64,
    ) -> Result<Vec<ResponseRow>, WireError> {
        let frame = RequestFrame { deadline_us, queries: queries.to_vec() };
        write_frame(&mut self.stream, &encode_request(&frame))?;
        let payload = read_frame(&mut self.stream)?
            .ok_or(WireError::Io(std::io::ErrorKind::UnexpectedEof))?;
        Ok(decode_response(&payload)?.rows)
    }
}

/// Default bound on concurrent handler threads per [`FrontDoor`].
pub const DEFAULT_MAX_CONNS: usize = 1024;

/// The TCP front door: accepts connections, decodes request frames, runs
/// per-tenant fair admission, scatters admitted queries through the
/// [`ShardedServer`], and answers with response frames.
pub struct FrontDoor {
    server: Arc<ShardedServer>,
    gate: Arc<TenantFairGate>,
    max_conns: usize,
    active: Arc<AtomicUsize>,
    conn_rejected: Counter,
}

/// RAII occupancy token for one handler thread; its slot frees on drop, so
/// a handler that panics still releases capacity.
struct ConnSlot {
    active: Arc<AtomicUsize>,
}

impl ConnSlot {
    /// Claim a slot unless `max_conns` handlers are already live
    /// (`max_conns == 0` means unlimited; occupancy is still tracked).
    fn acquire(active: &Arc<AtomicUsize>, max_conns: usize) -> Option<Self> {
        active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                if max_conns != 0 && n >= max_conns {
                    None
                } else {
                    n.checked_add(1)
                }
            })
            .ok()
            .map(|_| Self { active: Arc::clone(active) })
    }
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

impl FrontDoor {
    /// A front door over `server` admitting at most `tenant_capacity`
    /// requests per fairness window (0 disables shedding), with the
    /// concurrent-connection bound at [`DEFAULT_MAX_CONNS`].
    pub fn new(server: Arc<ShardedServer>, tenant_capacity: usize) -> Self {
        let gate = Arc::new(TenantFairGate::new(tenant_capacity, server.metrics_registry()));
        let conn_rejected = server.metrics_registry().counter("serve.frontdoor.conn_rejected");
        Self {
            server,
            gate,
            max_conns: DEFAULT_MAX_CONNS,
            active: Arc::new(AtomicUsize::new(0)),
            conn_rejected,
        }
    }

    /// Bound concurrent connections at `max_conns` (0 = unlimited). A
    /// connection over the cap gets its first request answered with every
    /// row [`ResponseStatus::Rejected`], then the stream is closed.
    pub fn with_max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns;
        self
    }

    /// The admission gate (tests drive it directly).
    pub fn gate(&self) -> &Arc<TenantFairGate> {
        &self.gate
    }

    pub fn server(&self) -> &Arc<ShardedServer> {
        &self.server
    }

    /// Live handler-thread count (occupied connection slots).
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Accept loop: one handler thread per connection, at most `max_conns`
    /// at a time, until `listener` errors (e.g. the socket is closed).
    /// Over-cap connections are answered with a typed rejection and closed
    /// (counted as `serve.frontdoor.conn_rejected`) instead of spawning an
    /// unbounded handler.
    pub fn serve(&self, listener: TcpListener) {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            match ConnSlot::acquire(&self.active, self.max_conns) {
                Some(slot) => {
                    let server = Arc::clone(&self.server);
                    let gate = Arc::clone(&self.gate);
                    std::thread::spawn(move || {
                        let _slot = slot;
                        let _ = handle_connection(stream, &server, &gate);
                    });
                }
                None => {
                    self.conn_rejected.inc();
                    std::thread::spawn(move || {
                        let _ = reject_connection(stream);
                    });
                }
            }
        }
    }

    /// Serve exactly one connection on the caller's thread (tests); does
    /// not consume a connection slot.
    pub fn serve_one(&self, stream: TcpStream) -> Result<(), WireError> {
        handle_connection(stream, &self.server, &self.gate)
    }
}

/// Over-cap path: answer the connection's first frame with a typed
/// rejection — every row [`ResponseStatus::Rejected`], no items — or an
/// error frame if the frame is malformed, then drop the stream. The reply
/// lets a well-behaved client distinguish "server full, back off" from a
/// network failure.
fn reject_connection(mut stream: TcpStream) -> Result<(), WireError> {
    stream.set_nodelay(true)?;
    let Some(payload) = read_frame(&mut stream)? else { return Ok(()) };
    let reply = match decode_request(&payload) {
        Ok(request) => {
            let rows = request
                .queries
                .iter()
                .map(|_| ResponseRow {
                    status: ResponseStatus::Rejected,
                    retrieval: Retrieval { items: Vec::new(), degraded: true },
                })
                .collect();
            encode_response(&ResponseFrame { rows })
        }
        Err(e) => encode_error(&e.to_string()),
    };
    write_frame(&mut stream, &reply)
}

/// Per-connection loop: read request frames until EOF, answer each one.
fn handle_connection(
    mut stream: TcpStream,
    server: &ShardedServer,
    gate: &TenantFairGate,
) -> Result<(), WireError> {
    stream.set_nodelay(true)?;
    while let Some(payload) = read_frame(&mut stream)? {
        let reply = match decode_request(&payload) {
            Ok(request) => match serve_frame(server, gate, &request) {
                Ok(frame) => encode_response(&frame),
                Err(e) => encode_error(&e.to_string()),
            },
            // A malformed frame costs its sender an error reply, not the
            // connection — framing is still intact (the length prefix
            // parsed), so the stream stays usable.
            Err(e) => encode_error(&e.to_string()),
        };
        write_frame(&mut stream, &reply)?;
    }
    Ok(())
}

/// Admission + scatter for one decoded request frame: shed rows never
/// reach the server; admitted rows keep request order.
pub fn serve_frame(
    server: &ShardedServer,
    gate: &TenantFairGate,
    request: &RequestFrame,
) -> Result<ResponseFrame, ServingError> {
    let deadline = request.deadline();
    let admitted_mask: Vec<bool> = request.queries.iter().map(|q| gate.admit(q.tenant)).collect();
    let admitted: Vec<Query> =
        request.queries.iter().zip(&admitted_mask).filter(|(_, &ok)| ok).map(|(&q, _)| q).collect();
    let mut served = if admitted.is_empty() {
        Vec::new()
    } else {
        server.handle_batch_with_deadline(&admitted, deadline)?
    }
    .into_iter();
    let rows = admitted_mask
        .iter()
        .map(|&ok| {
            if ok {
                ResponseRow {
                    status: ResponseStatus::Ok,
                    retrieval: served.next().unwrap_or_else(|| Retrieval::new(Vec::new())),
                }
            } else {
                ResponseRow {
                    status: ResponseStatus::Shed,
                    retrieval: Retrieval { items: Vec::new(), degraded: true },
                }
            }
        })
        .collect();
    Ok(ResponseFrame { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestFrame {
        RequestFrame {
            deadline_us: 1500,
            queries: vec![Query::new(1, 2), Query::new(3, 4).with_tenant(9).with_top_k(7)],
        }
    }

    #[test]
    fn request_roundtrip() {
        let frame = sample_request();
        assert_eq!(decode_request(&encode_request(&frame)), Ok(frame));
    }

    #[test]
    fn response_roundtrip() {
        let frame = ResponseFrame {
            rows: vec![
                ResponseRow {
                    status: ResponseStatus::Ok,
                    retrieval: Retrieval::new(vec![5, 6, 7]),
                },
                ResponseRow {
                    status: ResponseStatus::Shed,
                    retrieval: Retrieval { items: vec![], degraded: true },
                },
                ResponseRow {
                    status: ResponseStatus::Rejected,
                    retrieval: Retrieval { items: vec![], degraded: true },
                },
            ],
        };
        assert_eq!(decode_response(&encode_response(&frame)), Ok(frame));
    }

    #[test]
    fn unknown_status_byte_is_a_typed_error() {
        let frame = ResponseFrame {
            rows: vec![ResponseRow {
                status: ResponseStatus::Ok,
                retrieval: Retrieval::new(vec![]),
            }],
        };
        let mut buf = encode_response(&frame);
        // Row 0's status byte sits after the 4-byte header + 4-byte count.
        buf[8] = 9;
        assert_eq!(decode_response(&buf), Err(WireError::BadStatus(9)));
    }

    #[test]
    fn error_frame_surfaces_as_remote() {
        let err = decode_response(&encode_error("node 9 out of range"));
        assert_eq!(err, Err(WireError::Remote("node 9 out of range".into())));
    }

    #[test]
    fn truncated_and_garbage_frames_are_typed_errors() {
        let good = encode_request(&sample_request());
        for cut in 0..good.len() {
            let err = decode_request(&good[..cut]).expect_err("truncation must fail");
            assert!(matches!(err, WireError::Truncated { .. }), "cut at {cut} gave {err:?}");
        }
        assert_eq!(decode_request(&[0xFF; 8]), Err(WireError::BadMagic(0xFFFF)));
        let mut wrong_version = good.clone();
        wrong_version[2] = 9;
        assert_eq!(decode_request(&wrong_version), Err(WireError::UnsupportedVersion(9)));
        let mut trailing = good;
        trailing.push(0);
        assert_eq!(decode_request(&trailing), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn response_decoder_rejects_request_frames_and_vice_versa() {
        let req = encode_request(&sample_request());
        assert_eq!(decode_response(&req), Err(WireError::BadKind(KIND_REQUEST)));
        let resp = encode_response(&ResponseFrame { rows: vec![] });
        assert_eq!(decode_request(&resp), Err(WireError::BadKind(KIND_RESPONSE)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0; 16]);
        let err = read_frame(&mut buf.as_slice()).expect_err("oversized must fail");
        assert_eq!(err, WireError::Oversized { len: u32::MAX as usize });
    }

    #[test]
    fn frame_io_roundtrip_and_clean_eof() {
        let payload = encode_request(&sample_request());
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        let mut reader = buf.as_slice();
        assert_eq!(read_frame(&mut reader).expect("read"), Some(payload));
        assert_eq!(read_frame(&mut reader).expect("eof"), None);
    }

    #[test]
    fn lying_count_is_rejected() {
        // A request frame claiming 1000 queries but carrying none.
        let mut out = header(KIND_REQUEST, 12);
        out.extend_from_slice(&0u64.to_le_bytes());
        out.extend_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(decode_request(&out), Err(WireError::Truncated { .. })));
    }
}
