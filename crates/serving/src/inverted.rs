//! Two-layer inverted index for term-based retrieval.
//!
//! §VII-E: "In the online serving stage, the two-layer inverted indexes are
//! stored in igraph engine." The first layer maps title terms to the queries
//! containing them; the second maps each query to its retrieval posting —
//! the items ranked for that query by the trained model. A request that
//! misses the dense ANN path (e.g. a brand-new user) can still retrieve by
//! posting-list lookup, and warm queries get precomputed slates.

use std::collections::HashMap;

use zoomer_graph::{HeteroGraph, NodeId, NodeType};

/// Term → queries, query → ranked items.
pub struct InvertedIndex {
    term_to_queries: HashMap<u32, Vec<NodeId>>,
    query_postings: HashMap<NodeId, Vec<NodeId>>,
}

impl InvertedIndex {
    /// Build the first layer from the graph's query term sets; postings are
    /// filled by [`InvertedIndex::set_posting`] (typically from the trained
    /// model's per-query rankings).
    pub fn new(graph: &HeteroGraph) -> Self {
        let mut term_to_queries: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for q in graph.nodes_of_type(NodeType::Query) {
            for &t in graph.features().terms(q) {
                term_to_queries.entry(t).or_default().push(q);
            }
        }
        Self { term_to_queries, query_postings: HashMap::new() }
    }

    /// Install the ranked item posting for a query (second layer).
    pub fn set_posting(&mut self, query: NodeId, ranked_items: Vec<NodeId>) {
        self.query_postings.insert(query, ranked_items);
    }

    /// Queries containing a term (first layer).
    pub fn queries_for_term(&self, term: u32) -> &[NodeId] {
        self.term_to_queries.get(&term).map_or(&[], Vec::as_slice)
    }

    /// Posting for a query (second layer), if installed.
    pub fn posting(&self, query: NodeId) -> Option<&[NodeId]> {
        self.query_postings.get(&query).map(Vec::as_slice)
    }

    /// Term-based retrieval: look up the queries matching the request terms,
    /// then merge their postings by round-robin interleaving (preserving
    /// per-posting rank), deduplicated, up to `k` items.
    pub fn retrieve_by_terms(&self, terms: &[u32], k: usize) -> Vec<NodeId> {
        let mut postings: Vec<&[NodeId]> = Vec::new();
        let mut seen_queries = std::collections::HashSet::new();
        for &t in terms {
            for &q in self.queries_for_term(t) {
                if seen_queries.insert(q) {
                    if let Some(p) = self.posting(q) {
                        postings.push(p);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(k);
        let mut seen_items = std::collections::HashSet::new();
        let max_len = postings.iter().map(|p| p.len()).max().unwrap_or(0);
        'outer: for rank in 0..max_len {
            for p in &postings {
                if let Some(&item) = p.get(rank) {
                    if seen_items.insert(item) {
                        out.push(item);
                        if out.len() >= k {
                            break 'outer;
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of indexed terms / postings.
    pub fn num_terms(&self) -> usize {
        self.term_to_queries.len()
    }

    pub fn num_postings(&self) -> usize {
        self.query_postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_graph::GraphBuilder;

    fn graph() -> HeteroGraph {
        let mut b = GraphBuilder::new(1);
        // Two queries sharing term 7; one query with unique term 9.
        b.add_node(NodeType::Query, vec![], vec![7, 8], &[0.0]); // q0
        b.add_node(NodeType::Query, vec![], vec![7], &[0.0]); // q1
        b.add_node(NodeType::Query, vec![], vec![9], &[0.0]); // q2
        for _ in 0..6 {
            b.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        }
        b.finish()
    }

    #[test]
    fn first_layer_maps_terms_to_queries() {
        let idx = InvertedIndex::new(&graph());
        assert_eq!(idx.queries_for_term(7), &[0, 1]);
        assert_eq!(idx.queries_for_term(8), &[0]);
        assert_eq!(idx.queries_for_term(9), &[2]);
        assert!(idx.queries_for_term(99).is_empty());
        assert_eq!(idx.num_terms(), 3);
    }

    #[test]
    fn retrieval_interleaves_postings_by_rank() {
        let mut idx = InvertedIndex::new(&graph());
        idx.set_posting(0, vec![3, 4, 5]);
        idx.set_posting(1, vec![6, 7]);
        // Term 7 matches q0 and q1 → round-robin: 3, 6, 4, 7, 5.
        let got = idx.retrieve_by_terms(&[7], 10);
        assert_eq!(got, vec![3, 6, 4, 7, 5]);
    }

    #[test]
    fn retrieval_dedups_and_caps_k() {
        let mut idx = InvertedIndex::new(&graph());
        idx.set_posting(0, vec![3, 4]);
        idx.set_posting(1, vec![3, 5]); // shares item 3
        let got = idx.retrieve_by_terms(&[7], 3);
        assert_eq!(got.len(), 3);
        let unique: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(unique.len(), 3);
        assert!(got.contains(&3) && got.contains(&4) && got.contains(&5));
    }

    #[test]
    fn unknown_terms_or_missing_postings_yield_empty() {
        let mut idx = InvertedIndex::new(&graph());
        assert!(idx.retrieve_by_terms(&[42], 5).is_empty());
        // q2 matched but has no posting installed.
        assert!(idx.retrieve_by_terms(&[9], 5).is_empty());
        idx.set_posting(2, vec![8]);
        assert_eq!(idx.retrieve_by_terms(&[9], 5), vec![8]);
        assert_eq!(idx.num_postings(), 1);
    }
}
