//! IVF-Flat approximate nearest neighbor index.
//!
//! The paper feeds trained representations to "an efficient
//! Approximate-Nearest-Neighbors search module (ANN) to generate the inverted
//! index for online serving" (§VI). This is the classic IVF-Flat design: a
//! k-means coarse quantizer partitions vectors into `nlist` inverted lists;
//! a query probes the `nprobe` nearest lists and scores their members
//! exactly by inner product.

use zoomer_tensor::seeded_rng;

use rand::seq::SliceRandom;

/// One inverted list entry.
#[derive(Clone, Debug)]
struct Entry {
    id: u64,
    vector: Vec<f32>,
}

/// IVF-Flat index over inner-product similarity.
pub struct IvfIndex {
    dim: usize,
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<Entry>>,
}

impl IvfIndex {
    /// Build from `(id, vector)` pairs with `nlist` coarse clusters.
    pub fn build(items: &[(u64, Vec<f32>)], nlist: usize, kmeans_iters: usize, seed: u64) -> Self {
        assert!(!items.is_empty(), "cannot index an empty collection");
        let dim = items[0].1.len();
        assert!(items.iter().all(|(_, v)| v.len() == dim), "inconsistent vector widths");
        let nlist = nlist.max(1).min(items.len());

        // k-means on (a sample of) the vectors, Euclidean.
        let mut rng = seeded_rng(seed);
        let mut centroid_seed: Vec<usize> = (0..items.len()).collect();
        centroid_seed.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f32>> = centroid_seed[..nlist]
            .iter()
            .map(|&i| items[i].1.clone())
            .collect();
        let mut assignment = vec![0usize; items.len()];
        for _ in 0..kmeans_iters {
            for (i, (_, v)) in items.iter().enumerate() {
                assignment[i] = nearest(&centroids, v);
            }
            let mut sums = vec![vec![0.0f32; dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for (i, (_, v)) in items.iter().enumerate() {
                counts[assignment[i]] += 1;
                for (s, &x) in sums[assignment[i]].iter_mut().zip(v) {
                    *s += x;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    for s in &mut sums[c] {
                        *s /= counts[c] as f32;
                    }
                    centroids[c] = sums[c].clone();
                }
            }
        }
        let mut lists: Vec<Vec<Entry>> = vec![Vec::new(); nlist];
        for (i, (id, v)) in items.iter().enumerate() {
            lists[assignment[i]].push(Entry { id: *id, vector: v.clone() });
        }
        Self { dim, centroids, lists }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    pub fn len(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate top-`k` by inner product, probing `nprobe` lists.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(u64, f32)> {
        assert_eq!(query.len(), self.dim, "query width mismatch");
        let nprobe = nprobe.max(1).min(self.centroids.len());
        // Nearest centroids by Euclidean distance.
        let mut order: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, euclidean2(c, query)))
            .collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut scored: Vec<(u64, f32)> = Vec::new();
        for &(list, _) in order.iter().take(nprobe) {
            for e in &self.lists[list] {
                let s: f32 = e.vector.iter().zip(query).map(|(&a, &b)| a * b).sum();
                scored.push((e.id, s));
            }
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Exact top-`k` (probes every list) — the recall baseline.
    pub fn exact_search(&self, query: &[f32], k: usize) -> Vec<(u64, f32)> {
        self.search(query, k, self.centroids.len())
    }

    /// Recall@k of approximate vs exact search for a set of queries.
    pub fn recall_at_k(&self, queries: &[Vec<f32>], k: usize, nprobe: usize) -> f64 {
        if queries.is_empty() {
            return 1.0;
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in queries {
            let approx: std::collections::HashSet<u64> =
                self.search(q, k, nprobe).into_iter().map(|(id, _)| id).collect();
            for (id, _) in self.exact_search(q, k) {
                total += 1;
                if approx.contains(&id) {
                    hits += 1;
                }
            }
        }
        hits as f64 / total.max(1) as f64
    }
}

fn nearest(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = euclidean2(c, v);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn euclidean2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn random_items(n: usize, dim: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
        let mut rng = seeded_rng(seed);
        (0..n as u64)
            .map(|id| (id, (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()))
            .collect()
    }

    #[test]
    fn indexes_every_item() {
        let items = random_items(200, 8, 1);
        let idx = IvfIndex::build(&items, 8, 5, 1);
        assert_eq!(idx.len(), 200);
        assert_eq!(idx.nlist(), 8);
        assert_eq!(idx.dim(), 8);
    }

    #[test]
    fn exact_search_finds_true_top1() {
        let items = random_items(300, 8, 2);
        let idx = IvfIndex::build(&items, 10, 5, 2);
        // The best match for an item's own vector is itself (self inner
        // product maximal among normalized-ish random vectors... not strictly
        // guaranteed, so verify against brute force instead).
        let q = &items[42].1;
        let got = idx.exact_search(q, 1)[0].0;
        let brute = items
            .iter()
            .max_by(|a, b| {
                let sa: f32 = a.1.iter().zip(q).map(|(&x, &y)| x * y).sum();
                let sb: f32 = b.1.iter().zip(q).map(|(&x, &y)| x * y).sum();
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap()
            .0;
        assert_eq!(got, brute);
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let items = random_items(500, 16, 3);
        let idx = IvfIndex::build(&items, 16, 6, 3);
        let queries: Vec<Vec<f32>> = random_items(30, 16, 4).into_iter().map(|(_, v)| v).collect();
        let r1 = idx.recall_at_k(&queries, 10, 1);
        let r4 = idx.recall_at_k(&queries, 10, 4);
        let r16 = idx.recall_at_k(&queries, 10, 16);
        assert!(r1 <= r4 + 1e-9 && r4 <= r16 + 1e-9, "{r1} {r4} {r16}");
        assert!((r16 - 1.0).abs() < 1e-9, "full probe must be exact");
        assert!(r4 > 0.3, "nprobe=4 recall too low: {r4}");
    }

    #[test]
    fn search_returns_sorted_topk() {
        let items = random_items(100, 4, 5);
        let idx = IvfIndex::build(&items, 4, 4, 5);
        let res = idx.search(&items[0].1, 7, 2);
        assert!(res.len() <= 7);
        for w in res.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted: {res:?}");
        }
    }

    #[test]
    fn single_item_collection() {
        let items = vec![(9u64, vec![1.0, 0.0])];
        let idx = IvfIndex::build(&items, 4, 3, 6);
        let res = idx.search(&[1.0, 0.0], 5, 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0, 9);
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_build_panics() {
        let _ = IvfIndex::build(&[], 4, 3, 7);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_query_width_panics() {
        let items = random_items(10, 4, 8);
        let idx = IvfIndex::build(&items, 2, 2, 8);
        let _ = idx.search(&[0.0; 3], 1, 1);
    }
}
