//! IVF-Flat approximate nearest neighbor index.
//!
//! The paper feeds trained representations to "an efficient
//! Approximate-Nearest-Neighbors search module (ANN) to generate the inverted
//! index for online serving" (§VI). This is the classic IVF-Flat design: a
//! k-means coarse quantizer partitions vectors into `nlist` inverted lists;
//! a query probes the `nprobe` nearest lists and scores their members
//! exactly by inner product.

use zoomer_obs::{Counter, MetricsRegistry};
use zoomer_tensor::{dot, dot4, kernel::hardware_threads, seeded_rng, Matrix};

use rand::seq::SliceRandom;
use rayon::prelude::*;

use crate::backend::BoundedSearch;
use crate::deadline::Deadline;
use crate::error::ServingError;
use crate::topk::top_k_desc;

/// Minimum batch rows before query-chunk parallelism pays for thread
/// dispatch: below this a batch scores sequentially even on many cores.
pub const PAR_MIN_BATCH_QUERIES: usize = 32;

/// One inverted list: entry ids plus their vectors flattened row-major into
/// a single contiguous buffer (`vectors.len() == ids.len() * dim`), so a
/// scoring pass streams sequentially instead of chasing one heap pointer per
/// entry.
#[derive(Clone, Debug, Default)]
struct InvList {
    ids: Vec<u64>,
    vectors: Vec<f32>,
}

/// Probe-volume counters reported by the index: how many (query, list)
/// probes ran and how many candidate vectors were exactly scored. Tallied
/// locally per scoring pass and published with one `fetch_add` each, so the
/// accounting cost is independent of batch and list sizes.
#[derive(Clone)]
pub struct IvfMetrics {
    pub lists_probed: Counter,
    pub candidates_scored: Counter,
}

/// IVF-Flat index over inner-product similarity.
pub struct IvfIndex {
    dim: usize,
    centroids: Vec<Vec<f32>>,
    lists: Vec<InvList>,
    metrics: Option<IvfMetrics>,
}

impl IvfIndex {
    /// Build from `(id, vector)` pairs with `nlist` coarse clusters.
    pub fn build(items: &[(u64, Vec<f32>)], nlist: usize, kmeans_iters: usize, seed: u64) -> Self {
        assert!(!items.is_empty(), "cannot index an empty collection");
        let dim = items[0].1.len();
        assert!(items.iter().all(|(_, v)| v.len() == dim), "inconsistent vector widths");
        let nlist = nlist.max(1).min(items.len());

        // k-means on (a sample of) the vectors, Euclidean.
        let mut rng = seeded_rng(seed);
        let mut centroid_seed: Vec<usize> = (0..items.len()).collect();
        centroid_seed.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f32>> =
            centroid_seed[..nlist].iter().map(|&i| items[i].1.clone()).collect();
        let mut assignment = vec![0usize; items.len()];
        for _ in 0..kmeans_iters {
            for (i, (_, v)) in items.iter().enumerate() {
                assignment[i] = nearest(&centroids, v);
            }
            let mut sums = vec![vec![0.0f32; dim]; nlist];
            let mut counts = vec![0usize; nlist];
            for (i, (_, v)) in items.iter().enumerate() {
                counts[assignment[i]] += 1;
                for (s, &x) in sums[assignment[i]].iter_mut().zip(v) {
                    *s += x;
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    for s in &mut sums[c] {
                        *s /= counts[c] as f32;
                    }
                    centroids[c] = sums[c].clone();
                }
            }
        }
        let mut lists: Vec<InvList> = vec![InvList::default(); nlist];
        for (i, (id, v)) in items.iter().enumerate() {
            let list = &mut lists[assignment[i]];
            list.ids.push(*id);
            list.vectors.extend_from_slice(v);
        }
        Self { dim, centroids, lists, metrics: None }
    }

    /// Report probe volume into `registry` as the `ann.lists_probed` /
    /// `ann.candidates_scored` counters. Call once at build time (before the
    /// index is shared); counters are always-on but amortized per pass.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(IvfMetrics {
            lists_probed: registry.counter("ann.lists_probed"),
            candidates_scored: registry.counter("ann.candidates_scored"),
        });
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The coarse-quantizer centroids, one row per list. `pub(crate)` so the
    /// quantized backend can adopt this index's exact clustering (same
    /// centroids + same assignment ⇒ the same candidate set at equal
    /// `nprobe`, which is what makes quantized-vs-f32 recall comparable).
    pub(crate) fn centroid_rows(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// One inverted list's `(ids, row-major f32 vectors)`. `pub(crate)` for
    /// the quantized backend's build path.
    pub(crate) fn list_entries(&self, list: usize) -> (&[u64], &[f32]) {
        let il = &self.lists[list];
        (&il.ids, &il.vectors)
    }

    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    pub fn len(&self) -> usize {
        self.lists.iter().map(|l| l.ids.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate top-`k` by inner product, probing `nprobe` lists: a
    /// batch of one through [`Self::search_batch`].
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<Vec<(u64, f32)>, ServingError> {
        self.search_batch(&Matrix::row_vector(query), k, nprobe)?
            .pop()
            .ok_or(ServingError::Internal("one-row batch returned no result rows"))
    }

    /// Multi-query approximate top-`k`: one query per row of `queries`.
    ///
    /// Large batches are split into contiguous query chunks scored on
    /// rayon workers (each worker runs its own list-major pass, so no
    /// shared mutable state); small batches stay on the calling thread.
    /// Either way each query's candidate stream and per-score arithmetic
    /// are identical, so results never depend on batch size or thread
    /// count.
    pub fn search_batch(
        &self,
        queries: &Matrix,
        k: usize,
        nprobe: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        let chunks = if hardware_threads() > 1 && queries.rows() >= PAR_MIN_BATCH_QUERIES {
            hardware_threads()
        } else {
            1
        };
        self.search_batch_chunked(queries, k, nprobe, chunks)
    }

    /// [`Self::search_batch`] with an explicit chunk count — the parallel
    /// split, exposed so tests and benches can force multi-chunk execution
    /// on any machine. Results are identical for every `chunks` value.
    pub fn search_batch_chunked(
        &self,
        queries: &Matrix,
        k: usize,
        nprobe: usize,
        chunks: usize,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        if queries.rows() == 0 {
            return Ok(Vec::new());
        }
        if queries.cols() != self.dim {
            return Err(ServingError::DimensionMismatch {
                expected: self.dim,
                got: queries.cols(),
            });
        }
        let rows = queries.rows();
        let nprobe = nprobe.max(1).min(self.centroids.len());
        let chunks = chunks.clamp(1, rows);
        let scored = if chunks <= 1 {
            self.score_rows(queries, 0, rows, nprobe)
        } else {
            let per = rows.div_ceil(chunks);
            let ranges: Vec<usize> = (0..rows).step_by(per).collect();
            let parts: Vec<Vec<Vec<(u64, f32)>>> = ranges
                .into_par_iter()
                .map(|start| self.score_rows(queries, start, (start + per).min(rows), nprobe))
                .collect();
            parts.into_iter().flatten().collect()
        };
        Ok(scored.into_iter().map(|s| top_k_desc(s, k)).collect())
    }

    /// Score query rows `start..end` against their `nprobe` nearest lists:
    /// the list-major scoring pass, over one contiguous chunk of the batch.
    fn score_rows(
        &self,
        queries: &Matrix,
        start: usize,
        end: usize,
        nprobe: usize,
    ) -> Vec<Vec<(u64, f32)>> {
        // Invert "query → nprobe nearest lists" into "list → probing queries".
        let mut probers: Vec<Vec<u32>> = vec![Vec::new(); self.centroids.len()];
        for qi in start..end {
            let q = queries.row(qi);
            let mut order: Vec<(usize, f32)> =
                self.centroids.iter().enumerate().map(|(i, c)| (i, euclidean2(c, q))).collect();
            let pivot = (nprobe - 1).min(order.len() - 1);
            order.select_nth_unstable_by(pivot, |a, b| {
                a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
            });
            for &(list, _) in order.iter().take(nprobe) {
                probers[list].push(qi as u32);
            }
        }
        // One shared pass over each probed list. Queries are scored four at
        // a time through `dot4`, which feeds four independent accumulator
        // chains per loaded entry element — a single query's dot product is
        // bound by the FMA latency chain; a batch supplies the independent
        // work that fills the pipeline. `dot4` applies `dot`'s exact lane
        // scheme per query, so a score never depends on whether its query
        // fell in a 4-block or the remainder.
        let mut scored: Vec<Vec<(u64, f32)>> = vec![Vec::new(); end - start];
        for (list, qis) in probers.iter().enumerate() {
            self.score_one_list(list, qis, queries, start, &mut scored);
        }
        if let Some(m) = &self.metrics {
            let mut probes = 0u64;
            let mut candidates = 0u64;
            for (list, qis) in probers.iter().enumerate() {
                probes += qis.len() as u64;
                candidates += (qis.len() * self.lists[list].ids.len()) as u64;
            }
            m.lists_probed.add(probes);
            m.candidates_scored.add(candidates);
        }
        scored
    }

    /// Score every query in `qis` (absolute batch row indices) against one
    /// inverted list, appending `(id, score)` pairs to `scored[qi - start]`.
    /// Queries are blocked four at a time through `dot4` exactly like the
    /// batch path always has, so a score never depends on how its query was
    /// grouped or which probing strategy scheduled the list.
    fn score_one_list(
        &self,
        list: usize,
        qis: &[u32],
        queries: &Matrix,
        start: usize,
        scored: &mut [Vec<(u64, f32)>],
    ) {
        if qis.is_empty() {
            return;
        }
        let il = &self.lists[list];
        let d = self.dim;
        for &qi in qis {
            scored[qi as usize - start].reserve(il.ids.len());
        }
        let mut blocks = qis.chunks_exact(4);
        for b in &mut blocks {
            let q0 = &queries.row(b[0] as usize)[..d];
            let q1 = &queries.row(b[1] as usize)[..d];
            let q2 = &queries.row(b[2] as usize)[..d];
            let q3 = &queries.row(b[3] as usize)[..d];
            for (ei, &id) in il.ids.iter().enumerate() {
                let v = &il.vectors[ei * d..ei * d + d];
                let s = dot4(v, q0, q1, q2, q3);
                scored[b[0] as usize - start].push((id, s[0]));
                scored[b[1] as usize - start].push((id, s[1]));
                scored[b[2] as usize - start].push((id, s[2]));
                scored[b[3] as usize - start].push((id, s[3]));
            }
        }
        for &qi in blocks.remainder() {
            let q = queries.row(qi as usize);
            let out = &mut scored[qi as usize - start];
            for (ei, &id) in il.ids.iter().enumerate() {
                let v = &il.vectors[ei * d..ei * d + d];
                out.push((id, dot(v, q)));
            }
        }
    }

    /// Deadline-aware multi-query probe: visit each query's `nprobe` nearest
    /// lists **nearest-first in probe-rank rounds**, checking the deadline
    /// between rounds and stopping early once it expires. Round 0 always
    /// completes, so every query is scored against at least its single
    /// nearest list; stopping after round `r` leaves each query with exactly
    /// its `r+1` nearest lists scored — the same candidates a plain
    /// `nprobe = r+1` search would have produced.
    ///
    /// `on_round(r)` fires at the start of every round (after the expiry
    /// check); the server uses it as a fault-injection point. This path runs
    /// on the calling thread — the degraded probe trades the chunked-batch
    /// parallelism for a between-rounds budget check.
    pub fn search_batch_deadline(
        &self,
        queries: &Matrix,
        k: usize,
        nprobe: usize,
        deadline: &Deadline,
        mut on_round: impl FnMut(usize),
    ) -> Result<BoundedSearch, ServingError> {
        let nprobe = nprobe.max(1).min(self.centroids.len());
        if queries.rows() == 0 {
            return Ok(BoundedSearch {
                results: Vec::new(),
                effective_budget: nprobe,
                full_budget: nprobe,
            });
        }
        if queries.cols() != self.dim {
            return Err(ServingError::DimensionMismatch {
                expected: self.dim,
                got: queries.cols(),
            });
        }
        let rows = queries.rows();
        let by_dist = |a: &(usize, f32), b: &(usize, f32)| {
            a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
        };
        // Per-query probe schedule: the nprobe nearest lists, ascending by
        // centroid distance, so round r probes every query's (r+1)-th
        // nearest list.
        let orders: Vec<Vec<usize>> = (0..rows)
            .map(|qi| {
                let q = queries.row(qi);
                let mut order: Vec<(usize, f32)> =
                    self.centroids.iter().enumerate().map(|(i, c)| (i, euclidean2(c, q))).collect();
                let pivot = (nprobe - 1).min(order.len() - 1);
                order.select_nth_unstable_by(pivot, by_dist);
                order.truncate(nprobe);
                order.sort_by(by_dist);
                order.into_iter().map(|(list, _)| list).collect()
            })
            .collect();
        let mut scored: Vec<Vec<(u64, f32)>> = vec![Vec::new(); rows];
        let mut probers: Vec<Vec<u32>> = vec![Vec::new(); self.centroids.len()];
        let mut probes = 0u64;
        let mut candidates = 0u64;
        let mut effective = nprobe;
        for r in 0..nprobe {
            if r > 0 && deadline.expired() {
                effective = r;
                break;
            }
            on_round(r);
            for p in probers.iter_mut() {
                p.clear();
            }
            for (qi, order) in orders.iter().enumerate() {
                if let Some(&list) = order.get(r) {
                    probers[list].push(qi as u32);
                }
            }
            for (list, qis) in probers.iter().enumerate() {
                self.score_one_list(list, qis, queries, 0, &mut scored);
                probes += qis.len() as u64;
                candidates += (qis.len() * self.lists[list].ids.len()) as u64;
            }
        }
        if let Some(m) = &self.metrics {
            m.lists_probed.add(probes);
            m.candidates_scored.add(candidates);
        }
        Ok(BoundedSearch {
            results: scored.into_iter().map(|s| top_k_desc(s, k)).collect(),
            effective_budget: effective,
            full_budget: nprobe,
        })
    }

    /// Exact top-`k` (probes every list) — the recall baseline.
    pub fn exact_search(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f32)>, ServingError> {
        self.search(query, k, self.centroids.len())
    }

    /// Recall@k of approximate vs exact search for a set of queries.
    pub fn recall_at_k(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        nprobe: usize,
    ) -> Result<f64, ServingError> {
        if queries.is_empty() {
            return Ok(1.0);
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in queries {
            let approx: std::collections::HashSet<u64> =
                self.search(q, k, nprobe)?.into_iter().map(|(id, _)| id).collect();
            for (id, _) in self.exact_search(q, k)? {
                total += 1;
                if approx.contains(&id) {
                    hits += 1;
                }
            }
        }
        Ok(hits as f64 / total.max(1) as f64)
    }
}

fn nearest(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = euclidean2(c, v);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

pub(crate) fn euclidean2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn random_items(n: usize, dim: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
        let mut rng = seeded_rng(seed);
        (0..n as u64).map(|id| (id, (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())).collect()
    }

    #[test]
    fn indexes_every_item() {
        let items = random_items(200, 8, 1);
        let idx = IvfIndex::build(&items, 8, 5, 1);
        assert_eq!(idx.len(), 200);
        assert_eq!(idx.nlist(), 8);
        assert_eq!(idx.dim(), 8);
    }

    #[test]
    fn exact_search_finds_true_top1() {
        let items = random_items(300, 8, 2);
        let idx = IvfIndex::build(&items, 10, 5, 2);
        // The best match for an item's own vector is itself (self inner
        // product maximal among normalized-ish random vectors... not strictly
        // guaranteed, so verify against brute force instead).
        let q = &items[42].1;
        let got = idx.exact_search(q, 1).expect("search")[0].0;
        let brute = items
            .iter()
            .max_by(|a, b| {
                let sa: f32 = a.1.iter().zip(q).map(|(&x, &y)| x * y).sum();
                let sb: f32 = b.1.iter().zip(q).map(|(&x, &y)| x * y).sum();
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap()
            .0;
        assert_eq!(got, brute);
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let items = random_items(500, 16, 3);
        let idx = IvfIndex::build(&items, 16, 6, 3);
        let queries: Vec<Vec<f32>> = random_items(30, 16, 4).into_iter().map(|(_, v)| v).collect();
        let r1 = idx.recall_at_k(&queries, 10, 1).expect("recall");
        let r4 = idx.recall_at_k(&queries, 10, 4).expect("recall");
        let r16 = idx.recall_at_k(&queries, 10, 16).expect("recall");
        assert!(r1 <= r4 + 1e-9 && r4 <= r16 + 1e-9, "{r1} {r4} {r16}");
        assert!((r16 - 1.0).abs() < 1e-9, "full probe must be exact");
        assert!(r4 > 0.3, "nprobe=4 recall too low: {r4}");
    }

    #[test]
    fn search_returns_sorted_topk() {
        let items = random_items(100, 4, 5);
        let idx = IvfIndex::build(&items, 4, 4, 5);
        let res = idx.search(&items[0].1, 7, 2).expect("search");
        assert!(res.len() <= 7);
        for w in res.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted: {res:?}");
        }
    }

    #[test]
    fn batch_search_matches_single_queries() {
        let items = random_items(400, 8, 9);
        let idx = IvfIndex::build(&items, 12, 5, 9);
        let queries: Vec<Vec<f32>> = random_items(17, 8, 10).into_iter().map(|(_, v)| v).collect();
        let rows: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        let batched = idx.search_batch(&Matrix::from_rows(&rows), 10, 3).expect("batch");
        assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(&batched) {
            assert_eq!(
                got,
                &idx.search(q, 10, 3).expect("search"),
                "batch result diverges from single"
            );
        }
    }

    #[test]
    fn chunked_batch_matches_sequential_bitwise() {
        // The parallel split must be invisible: any chunk count, same
        // results (forced chunking so this holds even on one core).
        let items = random_items(300, 8, 12);
        let idx = IvfIndex::build(&items, 10, 4, 12);
        let queries: Vec<Vec<f32>> = random_items(37, 8, 13).into_iter().map(|(_, v)| v).collect();
        let rows: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        let m = Matrix::from_rows(&rows);
        let seq = idx.search_batch_chunked(&m, 10, 3, 1).expect("sequential");
        for chunks in [2usize, 3, 5, 36, 37, 64] {
            let par = idx.search_batch_chunked(&m, 10, 3, chunks).expect("chunked");
            assert_eq!(seq, par, "chunks={chunks} diverges from sequential");
        }
        assert_eq!(seq, idx.search_batch(&m, 10, 3).expect("auto"), "auto dispatch diverges");
    }

    #[test]
    fn deadline_search_with_unbounded_budget_matches_search_batch() {
        let items = random_items(350, 8, 14);
        let idx = IvfIndex::build(&items, 10, 4, 14);
        let queries: Vec<Vec<f32>> = random_items(21, 8, 15).into_iter().map(|(_, v)| v).collect();
        let rows: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        let m = Matrix::from_rows(&rows);
        let mut rounds = Vec::new();
        let bounded = idx
            .search_batch_deadline(&m, 10, 4, &Deadline::none(), |r| rounds.push(r))
            .expect("bounded");
        assert_eq!(bounded.effective_budget, 4);
        assert_eq!(bounded.full_budget, 4);
        assert!(!bounded.capped());
        assert_eq!(rounds, vec![0, 1, 2, 3], "one hook call per probe round");
        let full = idx.search_batch(&m, 10, 4).expect("full");
        assert_eq!(bounded.results, full, "unbounded deadline must match the plain batch probe");
    }

    #[test]
    fn expired_deadline_caps_probe_to_one_round() {
        let items = random_items(350, 8, 16);
        let idx = IvfIndex::build(&items, 10, 4, 16);
        let queries: Vec<Vec<f32>> = random_items(13, 8, 17).into_iter().map(|(_, v)| v).collect();
        let rows: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        let m = Matrix::from_rows(&rows);
        let bounded = idx
            .search_batch_deadline(&m, 10, 4, &Deadline::after(std::time::Duration::ZERO), |_| {})
            .expect("bounded");
        assert_eq!(bounded.effective_budget, 1, "round 0 always completes, nothing more");
        assert!(bounded.capped());
        // One completed round == the candidates of a plain nprobe=1 search.
        let narrow = idx.search_batch(&m, 10, 1).expect("narrow");
        assert_eq!(bounded.results, narrow, "capped probe must equal the equivalent nprobe");
    }

    #[test]
    fn deadline_expiring_mid_probe_stops_between_rounds() {
        let items = random_items(350, 8, 18);
        let idx = IvfIndex::build(&items, 10, 4, 18);
        let queries: Vec<Vec<f32>> = random_items(9, 8, 19).into_iter().map(|(_, v)| v).collect();
        let rows: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        let m = Matrix::from_rows(&rows);
        // Burn the whole budget inside round 1's hook: rounds 0 and 1 score,
        // the round-2 expiry check then stops the probe.
        let deadline = Deadline::after(std::time::Duration::from_millis(5));
        let bounded = idx
            .search_batch_deadline(&m, 10, 4, &deadline, |r| {
                if r == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            })
            .expect("bounded");
        assert_eq!(bounded.effective_budget, 2);
        assert_eq!(bounded.results, idx.search_batch(&m, 10, 2).expect("two-list probe"));
    }

    #[test]
    fn empty_batch_is_empty() {
        let items = random_items(20, 4, 11);
        let idx = IvfIndex::build(&items, 4, 3, 11);
        assert!(idx.search_batch(&Matrix::zeros(0, 4), 5, 2).expect("batch").is_empty());
    }

    #[test]
    fn single_item_collection() {
        let items = vec![(9u64, vec![1.0, 0.0])];
        let idx = IvfIndex::build(&items, 4, 3, 6);
        let res = idx.search(&[1.0, 0.0], 5, 1).expect("search");
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0, 9);
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_build_panics() {
        let _ = IvfIndex::build(&[], 4, 3, 7);
    }

    #[test]
    fn wrong_query_width_is_a_typed_error() {
        let items = random_items(10, 4, 8);
        let idx = IvfIndex::build(&items, 2, 2, 8);
        let err = idx.search(&[0.0; 3], 1, 1).expect_err("mismatched width must be rejected");
        assert_eq!(err, crate::error::ServingError::DimensionMismatch { expected: 4, got: 3 });
    }
}
