//! The brownout degradation ladder: how much quality a batch trades for
//! staying inside its deadline budget.
//!
//! PR 5 gave the server two degradation moves — cap the ANN probe
//! mid-flight, or fall all the way back to the inverted index. This module
//! names the full ladder between "serve at full quality" and "give up on
//! the model path entirely", ordered by how much recall each rung
//! surrenders:
//!
//! | rung | trade | counter |
//! |------|-------|---------|
//! | [`BrownoutRung::Full`]       | none | — |
//! | [`BrownoutRung::SkipWiden`]  | skip the O(pool) exact-rerank widening of under-full lists | `serve.degraded.skip_widen` |
//! | [`BrownoutRung::ShrinkTopK`] | halve each query's result list (and skip widening) | `serve.degraded.topk_shrunk` |
//! | [`BrownoutRung::CapBudget`]  | cap the probe width (`nprobe` / beam) between rounds | `serve.degraded.budget_capped` |
//! | [`BrownoutRung::Fallback`]   | inverted-index posting lookup only | `serve.degraded.fallback` |
//!
//! The rung is selected **per batch** from the remaining deadline budget
//! against an EWMA of recent probe cost ([`BrownoutRung::select`]), so a
//! transient stall sheds exactly as much quality as the clock demands and
//! no more. Each rung's results are quality-dominated by the rung above it
//! at the same seed — pinned by the `brownout_ladder` proptest suite.

use crate::deadline::Deadline;

/// One rung of the brownout ladder, ordered mildest → harshest. The derived
/// `Ord` is the ladder order: `Full < SkipWiden < ShrinkTopK < CapBudget <
/// Fallback`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BrownoutRung {
    /// Full-quality serving: wide probe, exact widening, full top-k.
    Full,
    /// Skip the exact-rerank widening of under-full result lists — the
    /// O(pool) scan is the first cost a tight budget cannot afford.
    SkipWiden,
    /// Halve each query's top-k (and skip widening): rank work and reply
    /// size shrink, the probe still runs at full width.
    ShrinkTopK,
    /// Cap the probe budget (`nprobe` for IVF, beam width for the proximity
    /// graph) between rounds; widening skipped, top-k halved.
    CapBudget,
    /// Answer from the inverted index alone — no embedding, no probe.
    Fallback,
}

impl BrownoutRung {
    /// Every rung, mildest first (bench sweeps iterate this).
    pub const ALL: [BrownoutRung; 5] = [
        BrownoutRung::Full,
        BrownoutRung::SkipWiden,
        BrownoutRung::ShrinkTopK,
        BrownoutRung::CapBudget,
        BrownoutRung::Fallback,
    ];

    /// Pick the rung for a batch from its remaining budget and the EWMA of
    /// recent ANN-probe cost (`0` = no history yet).
    ///
    /// An unbounded deadline is always [`BrownoutRung::Full`] — the ladder
    /// does not exist without a budget. An expired one is
    /// [`BrownoutRung::Fallback`]. With no probe history the batch runs at
    /// [`BrownoutRung::CapBudget`]: the round-major probe measures itself
    /// and self-caps only if the budget actually runs out, so a generous
    /// deadline's first batch still serves at full quality. Otherwise the
    /// rung comes from how many probes' worth of budget remain: ≥4× EWMA is
    /// comfortable (`Full`), each lost probe-width of slack steps one rung
    /// down, and under 2× the probe itself must be capped.
    pub fn select(deadline: &Deadline, ann_ewma_ns: u64) -> Self {
        if !deadline.is_bounded() {
            return BrownoutRung::Full;
        }
        let Some(remaining) = deadline.remaining() else {
            return BrownoutRung::Fallback;
        };
        if remaining.is_zero() {
            return BrownoutRung::Fallback;
        }
        if ann_ewma_ns == 0 {
            return BrownoutRung::CapBudget;
        }
        let remaining_ns = u64::try_from(remaining.as_nanos()).unwrap_or(u64::MAX);
        let probes_left = remaining_ns / ann_ewma_ns;
        match probes_left {
            0..=1 => BrownoutRung::CapBudget,
            2 => BrownoutRung::ShrinkTopK,
            3 => BrownoutRung::SkipWiden,
            _ => BrownoutRung::Full,
        }
    }

    /// The per-query result size at this rung: rungs at or past
    /// [`BrownoutRung::ShrinkTopK`] halve the requested `k` (rounding up,
    /// never below 1 for a nonzero request).
    pub fn shrunk_k(self, k: usize) -> usize {
        if self >= BrownoutRung::ShrinkTopK {
            k.div_ceil(2)
        } else {
            k
        }
    }

    /// Whether this rung still runs the exact-rerank widening of under-full
    /// result lists (only [`BrownoutRung::Full`] does).
    pub fn widens(self) -> bool {
        self == BrownoutRung::Full
    }

    /// Stable short name for reports and bench axes.
    pub fn name(self) -> &'static str {
        match self {
            BrownoutRung::Full => "full",
            BrownoutRung::SkipWiden => "skip_widen",
            BrownoutRung::ShrinkTopK => "shrink_topk",
            BrownoutRung::CapBudget => "cap_budget",
            BrownoutRung::Fallback => "fallback",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ladder_order_is_mildest_to_harshest() {
        let mut sorted = BrownoutRung::ALL;
        sorted.sort();
        assert_eq!(sorted, BrownoutRung::ALL, "ALL must already be in ladder order");
        assert!(BrownoutRung::Full < BrownoutRung::SkipWiden);
        assert!(BrownoutRung::CapBudget < BrownoutRung::Fallback);
    }

    #[test]
    fn unbounded_deadline_is_always_full() {
        assert_eq!(BrownoutRung::select(&Deadline::none(), 0), BrownoutRung::Full);
        assert_eq!(BrownoutRung::select(&Deadline::none(), u64::MAX), BrownoutRung::Full);
    }

    #[test]
    fn expired_deadline_is_fallback() {
        let d = Deadline::after(Duration::ZERO);
        assert_eq!(BrownoutRung::select(&d, 0), BrownoutRung::Fallback);
        assert_eq!(BrownoutRung::select(&d, 1_000), BrownoutRung::Fallback);
    }

    #[test]
    fn no_probe_history_runs_capped() {
        // ewma == 0: the self-measuring round-major probe, which equals the
        // full-quality path whenever the budget turns out to suffice.
        let d = Deadline::after(Duration::from_secs(600));
        assert_eq!(BrownoutRung::select(&d, 0), BrownoutRung::CapBudget);
    }

    #[test]
    fn remaining_budget_steps_down_the_ladder() {
        let ewma = Duration::from_millis(10).as_nanos() as u64;
        let at = |ms: u64| BrownoutRung::select(&Deadline::after(Duration::from_millis(ms)), ewma);
        // Generous margin for timing skew between `after` and `select`: the
        // budget sits mid-bucket, many EWMAs away from each boundary.
        assert_eq!(at(55), BrownoutRung::Full, "≥4 probes of slack");
        assert_eq!(at(35), BrownoutRung::SkipWiden, "3 probes of slack");
        assert_eq!(at(25), BrownoutRung::ShrinkTopK, "2 probes of slack");
        assert_eq!(at(15), BrownoutRung::CapBudget, "under 2 probes of slack");
    }

    #[test]
    fn shrink_applies_from_shrink_topk_down() {
        assert_eq!(BrownoutRung::Full.shrunk_k(10), 10);
        assert_eq!(BrownoutRung::SkipWiden.shrunk_k(10), 10);
        assert_eq!(BrownoutRung::ShrinkTopK.shrunk_k(10), 5);
        assert_eq!(BrownoutRung::CapBudget.shrunk_k(7), 4, "rounds up");
        assert_eq!(BrownoutRung::Fallback.shrunk_k(1), 1, "never below 1");
        assert_eq!(BrownoutRung::CapBudget.shrunk_k(0), 0);
    }

    #[test]
    fn only_full_widens() {
        for rung in BrownoutRung::ALL {
            assert_eq!(rung.widens(), rung == BrownoutRung::Full);
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = BrownoutRung::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names, ["full", "skip_widen", "shrink_topk", "cap_budget", "fallback"]);
    }
}
