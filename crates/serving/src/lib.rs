//! Online serving for the Zoomer reproduction.
//!
//! §VI/§VII-E: after training, embeddings feed an ANN module that builds the
//! inverted index served by iGraph; online, Zoomer caches each user/query
//! node's k last-visited neighbors (k = 30), refreshes those caches
//! asynchronously, keeps only the edge-level attention at inference, and
//! answers thousands of QPS at millisecond latency.
//!
//! Components:
//! - [`ann`] — IVF-Flat approximate nearest neighbor index (k-means coarse
//!   quantizer + inverted lists, inner-product scoring).
//! - [`cache`] — per-node neighbor cache with asynchronous refresh worker.
//! - [`frozen`] — a thread-safe, tape-free snapshot of a trained model used
//!   on the serving path (edge attention only).
//! - [`server`] — the retrieval server: focal → cached neighbors → online
//!   embedding → ANN lookup.
//! - [`load`] — open- and closed-loop QPS/latency harnesses (Fig 9),
//!   including batched request coalescing through `handle_batch`.
//!
//! Panic-freedom: this crate is the hot path. Request-path entry points
//! return [`ServingError`] instead of panicking, enforced by the in-repo
//! `zoomer-lint` gate (rule L001) with `clippy::disallowed_methods` as the
//! second layer — see `DESIGN.md` § "Static analysis & panic-freedom".

#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

pub mod ann;
pub mod cache;
pub mod error;
pub mod frozen;
pub mod inverted;
pub mod load;
pub mod server;

pub use ann::IvfIndex;
pub use cache::NeighborCache;
pub use error::ServingError;
pub use frozen::FrozenModel;
pub use inverted::InvertedIndex;
pub use load::{
    run_batched_load_test, run_closed_loop, run_load_test, LatencyStats, ThroughputStats,
};
pub use server::{OnlineServer, ServingConfig};
