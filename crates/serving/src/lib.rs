//! Online serving for the Zoomer reproduction.
//!
//! §VI/§VII-E: after training, embeddings feed an ANN module that builds the
//! inverted index served by iGraph; online, Zoomer caches each user/query
//! node's k last-visited neighbors (k = 30), refreshes those caches
//! asynchronously, keeps only the edge-level attention at inference, and
//! answers thousands of QPS at millisecond latency.
//!
//! Components:
//! - [`backend`] — the [`SearchBackend`] trait and the enum-dispatched
//!   [`Backend`] the server retrieves through: IVF-Flat ([`ann`]), the exact
//!   flat scan ([`ExactSearch`]), the relevance proximity graph
//!   ([`proximity`]), or the int8-quantized IVF with exact f32 rerank
//!   ([`quantized`]). Selected via `ServingConfig::backend`.
//! - [`ann`] — IVF-Flat approximate nearest neighbor index (k-means coarse
//!   quantizer + inverted lists, inner-product scoring).
//! - [`proximity`] — navigable neighbor graph over the frozen tower's item
//!   embeddings, beam-searched under the frozen relevance score.
//! - [`topk`] — the shared top-k reduction every backend ranks through.
//! - [`cache`] — per-node neighbor cache with DOI-tiered (degree-of-interest)
//!   admission/eviction and an asynchronous refresh worker whose shed
//!   refreshes retry from a bounded jittered side queue.
//! - [`brownout`] — the counted degradation ladder ([`BrownoutRung`]):
//!   skip-widening → shrunk top-k → capped probe → inverted fallback,
//!   selected per batch from the remaining deadline budget.
//! - [`frozen`] — a thread-safe, tape-free snapshot of a trained model used
//!   on the serving path (edge attention only).
//! - [`server`] — the retrieval server: focal → cached neighbors → online
//!   embedding → ANN lookup.
//! - [`load`] — the unified open-/closed-loop QPS/latency harness (Fig 9):
//!   one [`run_load`] entry point driven by a [`LoadTestSpec`], reporting
//!   per-stage percentile breakdowns through the metrics registry, with a
//!   bounded admission queue and a [`ShedPolicy`] for overload runs.
//! - [`deadline`] / [`fault`] — overload robustness: per-batch latency
//!   budgets ([`Deadline`]) that degrade recall instead of latency when
//!   spent, and a deterministic seed-driven [`FaultInjector`] for latency
//!   spikes, injected panics, and poisoned-lock drills.
//! - Observability: servers are constructed with [`OnlineServer::builder`]
//!   and optionally attach a `zoomer_obs::MetricsRegistry`; `handle_batch`
//!   times each stage (cache resolve / embed / ANN probe / rank) into it,
//!   and [`NeighborCache::stats`] reports named [`CacheStats`].
//!
//! Panic-freedom: this crate is the hot path. Request-path entry points
//! return [`ServingError`] instead of panicking, enforced by the in-repo
//! `zoomer-lint` gate (rule L001) with `clippy::disallowed_methods` as the
//! second layer — see `DESIGN.md` § "Static analysis & panic-freedom".

#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

pub mod ann;
pub mod backend;
pub mod brownout;
pub mod cache;
pub mod deadline;
pub mod error;
pub mod fault;
pub mod frozen;
pub mod inverted;
pub mod load;
pub mod proximity;
pub mod quantized;
pub mod router;
pub mod server;
pub mod sharded;
pub mod topk;
pub mod wire;

pub use ann::{IvfIndex, IvfMetrics};
pub use backend::{
    Backend, BackendKind, BackendStats, BoundedSearch, ExactSearch, IvfBackend, SearchBackend,
};
pub use brownout::BrownoutRung;
pub use cache::{doi_score, CacheRefresher, DoiTier, NeighborCache, RefreshConfig};
pub use deadline::Deadline;
pub use error::ServingError;
pub use fault::{FaultInjector, FaultPlan, FaultSite};
pub use frozen::FrozenModel;
pub use inverted::InvertedIndex;
pub use load::{
    run_load, Arrival, LatencySummary, LoadReport, LoadTestSpec, QueryService, ShedPolicy,
    StageSummary,
};
pub use proximity::ProximityGraph;
pub use quantized::{QuantMemory, QuantizedIvf, DEFAULT_RERANK_FACTOR};
pub use router::TenantFairGate;
pub use server::{OnlineServer, ScoredRetrieval, ServerBuilder, ServingConfig};
pub use sharded::ShardedServer;
pub use wire::{
    FrontDoor, RequestFrame, ResponseFrame, ResponseRow, ResponseStatus, WireClient, WireError,
    DEFAULT_MAX_CONNS, MAX_FRAME_LEN, WIRE_VERSION,
};
pub use zoomer_graph::{queries_from_pairs, Query, Retrieval, ShardingConfig};
pub use zoomer_obs::CacheStats;
