//! The online retrieval server: request → focal → cached neighbors →
//! online embedding → ANN lookup → ranked item ids.

use std::sync::Arc;

use zoomer_graph::{HeteroGraph, NodeId};
use zoomer_sampler::{FocalBiasedSampler, FocalContext, NeighborSampler};
use zoomer_tensor::seeded_rng;

use crate::ann::IvfIndex;
use crate::cache::NeighborCache;
use crate::frozen::FrozenModel;
use crate::inverted::InvertedIndex;

/// Serving-stack parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServingConfig {
    /// Cached neighbors per node (paper: 30).
    pub cache_k: usize,
    /// Items returned per request.
    pub top_k: usize,
    /// IVF lists probed per query.
    pub nprobe: usize,
    /// Coarse clusters in the ANN index.
    pub nlist: usize,
    /// Disable the neighbor cache (ablation: sample neighbors per request).
    pub disable_cache: bool,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self { cache_k: 30, top_k: 100, nprobe: 4, nlist: 32, disable_cache: false }
    }
}

/// A shareable (`Arc`-cloneable, `&self`) online retrieval server.
pub struct OnlineServer {
    graph: Arc<HeteroGraph>,
    frozen: Arc<FrozenModel>,
    index: Arc<IvfIndex>,
    /// Two-layer term → query → item index (§VII-E's iGraph layout) used by
    /// the term-retrieval fallback path.
    inverted: Arc<InvertedIndex>,
    cache: Arc<NeighborCache>,
    config: ServingConfig,
    sampler: FocalBiasedSampler,
}

impl Clone for OnlineServer {
    fn clone(&self) -> Self {
        Self {
            graph: Arc::clone(&self.graph),
            frozen: Arc::clone(&self.frozen),
            index: Arc::clone(&self.index),
            inverted: Arc::clone(&self.inverted),
            cache: Arc::clone(&self.cache),
            config: self.config,
            sampler: self.sampler,
        }
    }
}

impl OnlineServer {
    /// Build the server: embed every pool item through the frozen item tower
    /// and construct the inverted ANN index (§VI's offline-to-online hand-
    /// off).
    pub fn build(
        graph: Arc<HeteroGraph>,
        frozen: FrozenModel,
        item_pool: &[NodeId],
        config: ServingConfig,
        seed: u64,
    ) -> Self {
        assert!(!item_pool.is_empty(), "cannot serve an empty item pool");
        let items: Vec<(u64, Vec<f32>)> = item_pool
            .iter()
            .map(|&i| (i as u64, frozen.item_embedding(i)))
            .collect();
        // Size the coarse quantizer to the pool (≈√N, capped by config) so
        // small pools keep enough candidates per probe.
        let nlist = config
            .nlist
            .min(((items.len() as f64).sqrt().ceil()) as usize)
            .max(1);
        let index = IvfIndex::build(&items, nlist, 8, seed);
        // Second retrieval layer: per-query postings ranked by the frozen
        // item tower against the query's own online embedding.
        let mut inverted = InvertedIndex::new(&graph);
        for q in graph.nodes_of_type(zoomer_graph::NodeType::Query) {
            let focal = frozen.focal_vector(&graph, &[q]);
            let emb = frozen.online_embedding(q, &[], &focal);
            let ranked: Vec<NodeId> = index
                .search(&emb, config.top_k, config.nprobe.max(4))
                .into_iter()
                .map(|(id, _)| id as NodeId)
                .collect();
            if !ranked.is_empty() {
                inverted.set_posting(q, ranked);
            }
        }
        Self {
            graph,
            frozen: Arc::new(frozen),
            index: Arc::new(index),
            inverted: Arc::new(inverted),
            cache: Arc::new(NeighborCache::new(config.cache_k)),
            config,
            sampler: FocalBiasedSampler::default(),
        }
    }

    /// Term-based retrieval fallback (cold users / no dense request vector):
    /// look the terms up in the two-layer inverted index.
    pub fn handle_by_terms(&self, terms: &[u32]) -> Vec<NodeId> {
        self.inverted.retrieve_by_terms(terms, self.config.top_k)
    }

    pub fn inverted(&self) -> &InvertedIndex {
        &self.inverted
    }

    pub fn config(&self) -> ServingConfig {
        self.config
    }

    pub fn cache(&self) -> &NeighborCache {
        &self.cache
    }

    pub fn index(&self) -> &IvfIndex {
        &self.index
    }

    fn neighbors_for(&self, node: NodeId, focal_ctx: &FocalContext) -> Vec<NodeId> {
        let compute = || {
            // Deterministic per-node RNG: the focal sampler ignores it anyway.
            let mut rng = seeded_rng(node as u64);
            self.sampler
                .sample(&self.graph, node, focal_ctx, self.config.cache_k, &mut rng)
        };
        if self.config.disable_cache {
            let mut fresh = compute();
            fresh.truncate(self.config.cache_k);
            fresh
        } else {
            self.cache.get_or_compute(node, compute).as_ref().clone()
        }
    }

    /// Handle one retrieval request: returns ranked item node ids.
    pub fn handle(&self, user: NodeId, query: NodeId) -> Vec<NodeId> {
        let focal_ctx = FocalContext::for_request(&self.graph, user, query);
        let user_nbrs = self.neighbors_for(user, &focal_ctx);
        let query_nbrs = self.neighbors_for(query, &focal_ctx);
        let focal = self.frozen.focal_vector(&self.graph, &[user, query]);
        let uq = self
            .frozen
            .request_embedding(user, query, &user_nbrs, &query_nbrs, &focal);
        let mut found = self.index.search(&uq, self.config.top_k, self.config.nprobe);
        if found.len() < self.config.top_k && found.len() < self.index.len() {
            // Under-filled probe set (small pool or skewed clusters): widen
            // to an exact scan rather than return a short list.
            found = self.index.exact_search(&uq, self.config.top_k);
        }
        found.into_iter().map(|(id, _)| id as NodeId).collect()
    }

    /// Warm the cache for a set of nodes (deployment pre-fill).
    pub fn warm_cache(&self, nodes: &[NodeId]) {
        if self.config.disable_cache {
            return;
        }
        for &n in nodes {
            // Use the node itself as a neutral focal for the warm fill.
            let ctx = FocalContext::from_nodes(&self.graph, &[n]);
            let _ = self.cache.get_or_compute(n, || {
                let mut rng = seeded_rng(n as u64);
                self.sampler
                    .sample(&self.graph, n, &ctx, self.config.cache_k, &mut rng)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_data::{TaobaoConfig, TaobaoData};
    use zoomer_graph::NodeType;
    use zoomer_model::{ModelConfig, UnifiedCtrModel};

    fn build_server(disable_cache: bool) -> (TaobaoData, OnlineServer) {
        let data = TaobaoData::generate(TaobaoConfig::tiny(81));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(11, dd));
        let frozen = crate::frozen::FrozenModel::from_model(&mut model, &data.graph);
        let graph = Arc::new(zoomer_graph::read_snapshot(zoomer_graph::write_snapshot(
            &data.graph,
        ))
        .expect("snapshot roundtrip"));
        let items = data.item_nodes();
        let server = OnlineServer::build(
            graph,
            frozen,
            &items,
            ServingConfig { top_k: 20, disable_cache, ..Default::default() },
            81,
        );
        (data, server)
    }

    #[test]
    fn handle_returns_topk_items() {
        let (data, server) = build_server(false);
        let log = &data.logs[0];
        let result = server.handle(log.user, log.query);
        assert_eq!(result.len(), 20);
        for &item in &result {
            assert_eq!(data.graph.node_type(item), NodeType::Item);
        }
        // No duplicates.
        let set: std::collections::HashSet<_> = result.iter().collect();
        assert_eq!(set.len(), result.len());
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let (data, server) = build_server(false);
        let log = &data.logs[0];
        let first = server.handle(log.user, log.query);
        let (_, misses_after_first) = server.cache().stats();
        let second = server.handle(log.user, log.query);
        let (hits, misses) = server.cache().stats();
        assert_eq!(first, second, "same request must be deterministic");
        assert_eq!(misses, misses_after_first, "second request should not miss");
        assert!(hits >= 2);
    }

    #[test]
    fn cache_disabled_still_serves() {
        let (data, server) = build_server(true);
        let log = &data.logs[0];
        let result = server.handle(log.user, log.query);
        assert_eq!(result.len(), 20);
        assert_eq!(server.cache().len(), 0, "cache must stay empty when disabled");
    }

    #[test]
    fn warm_cache_prefills() {
        let (data, server) = build_server(false);
        let users: Vec<NodeId> = (0..10).collect();
        server.warm_cache(&users);
        assert!(server.cache().len() >= 10);
        let _ = data;
    }

    #[test]
    fn concurrent_requests_are_consistent() {
        let (data, server) = build_server(false);
        let log = data.logs[0].clone();
        let baseline = server.handle(log.user, log.query);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = server.clone();
                let expected = baseline.clone();
                let (u, q) = (log.user, log.query);
                scope.spawn(move || {
                    for _ in 0..25 {
                        assert_eq!(s.handle(u, q), expected);
                    }
                });
            }
        });
    }

    #[test]
    fn term_retrieval_returns_items_from_matching_queries() {
        let (data, server) = build_server(false);
        // Use a real query's terms; its posting must be reachable by term.
        let q = data.logs[0].query;
        let terms = data.graph.features().terms(q).to_vec();
        assert!(!terms.is_empty());
        let got = server.handle_by_terms(&terms);
        assert!(!got.is_empty(), "term retrieval found nothing");
        for &item in &got {
            assert_eq!(data.graph.node_type(item), NodeType::Item);
        }
        assert!(got.len() <= server.config().top_k);
        // Unknown terms retrieve nothing.
        assert!(server.handle_by_terms(&[9_999_999]).is_empty());
        assert!(server.inverted().num_postings() > 0);
    }

    #[test]
    fn retrieval_prefers_intent_aligned_items() {
        // Items retrieved for a request should, on average, be closer to the
        // query's content vector than random items (structure sanity; exact
        // quality is measured in the benches after training).
        let (data, server) = build_server(false);
        let log = &data.logs[3];
        let retrieved = server.handle(log.user, log.query);
        let qv = data.graph.dense_feature(log.query);
        let mean_sim = |items: &[NodeId]| {
            items
                .iter()
                .map(|&i| zoomer_tensor::cosine_similarity(qv, data.graph.dense_feature(i)))
                .sum::<f32>()
                / items.len().max(1) as f32
        };
        let all_items = data.item_nodes();
        let retrieved_sim = mean_sim(&retrieved);
        let pool_sim = mean_sim(&all_items);
        // Untrained towers give weak signal; require only non-collapse.
        assert!(retrieved_sim.is_finite() && pool_sim.is_finite());
    }
}
