//! The online retrieval server: request → focal → cached neighbors →
//! online embedding → ANN lookup → ranked item ids.
//!
//! Execution is batch-first: [`OnlineServer::handle_batch`] resolves the
//! neighbor cache for a whole batch under one lock round, runs the frozen
//! towers as one stacked matmul per layer, and issues a multi-query ANN
//! probe that visits each coarse list once per batch. A single request is a
//! batch of one through the same path.
//!
//! Under a bounded deadline the batch serves at a
//! [`BrownoutRung`](crate::brownout::BrownoutRung) chosen from the
//! remaining budget — full quality, skip-widening, shrunk top-k, capped
//! probe, or inverted-index fallback — each rung counted under
//! `serve.degraded.*`.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rayon::prelude::*;
use zoomer_graph::{HeteroGraph, NodeId, Query, Retrieval, ShardingConfig};
use zoomer_obs::{Counter, Histogram, MetricsRegistry, Snapshot, StageTimer};
use zoomer_sampler::{FocalBiasedSampler, FocalContext, NeighborSampler};
use zoomer_tensor::{seeded_rng, Matrix};

use crate::ann::IvfIndex;
use crate::backend::{Backend, BackendKind, ExactSearch, IvfBackend, SearchBackend};
use crate::brownout::BrownoutRung;
use crate::cache::NeighborCache;
use crate::deadline::Deadline;
use crate::error::ServingError;
use crate::fault::{FaultInjector, FaultSite};
use crate::frozen::{neutral_topk_neighbors, FrozenModel};
use crate::inverted::InvertedIndex;
use crate::proximity::ProximityGraph;
use crate::quantized::QuantizedIvf;

/// A request's resolved (user-neighborhood, query-neighborhood) pair, shared
/// with the cache without copying.
pub(crate) type NeighborPair = (Arc<Vec<NodeId>>, Arc<Vec<NodeId>>);

/// Ranked item postings computed for one chunk of query nodes at build time.
type QueryPostings = Vec<(NodeId, Vec<NodeId>)>;

/// A budget-aware retrieval probe's outcome: per-query scored candidates,
/// plus whether the probe was capped below the backend's configured budget
/// (`nprobe` for IVF, beam width for the proximity graph).
type BudgetedProbe = Result<(Vec<Vec<(u64, f32)>>, bool), ServingError>;

/// Serving-stack parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServingConfig {
    /// Cached neighbors per node (paper: 30).
    pub cache_k: usize,
    /// Items returned per request.
    pub top_k: usize,
    /// Which retrieval backend the server probes — see
    /// [`crate::backend::SearchBackend`]. IVF-Flat (the default, the
    /// paper's setup), the exact flat scan, or the relevance proximity
    /// graph.
    pub backend: BackendKind,
    /// IVF lists probed per query (IVF backend only).
    pub nprobe: usize,
    /// Coarse clusters in the ANN index (IVF backend only).
    pub nlist: usize,
    /// Out-degree of the navigable neighbor graph (proximity backend only).
    pub graph_degree: usize,
    /// Beam width of the proximity-graph search (proximity backend only).
    /// Plays the role `nprobe` plays for IVF: the recall/latency knob the
    /// deadline ladder caps under pressure.
    pub beam_width: usize,
    /// Minimum IVF lists probed when ranking the per-query postings at
    /// *build* time. The build-time ranking is offline and runs once, so it
    /// can afford a wider probe than the serving-path `nprobe`; the
    /// effective build probe is `nprobe.max(build_nprobe)`. Historically a
    /// hidden `max(4)` — now explicit so a deliberately narrow `nprobe`
    /// study can set `build_nprobe: 1` and actually get a narrow build.
    pub build_nprobe: usize,
    /// Shortlist widening for the quantized backend: the int8 scan keeps
    /// `rerank_factor × top_k` candidates per query, which the exact f32
    /// rerank then narrows back to `top_k`. Larger values recover more of
    /// the recall lost to quantization at proportionally more f32 work on
    /// the shortlist (never on the full probed set). Ignored by the other
    /// backends.
    pub rerank_factor: usize,
    /// Disable the neighbor cache (ablation: sample neighbors per request).
    pub disable_cache: bool,
    /// Per-batch latency budget. `None` (the default) is unbounded and
    /// leaves the request path exactly as it was before deadlines existed.
    /// With a budget: an already-expired batch is rejected at admission
    /// ([`ServingError::DeadlineExceeded`]); past admission the server
    /// degrades instead of erroring — it caps the ANN probe mid-flight and
    /// falls back to inverted-index-only retrieval when the budget is spent,
    /// counting `serve.degraded.*`.
    pub deadline: Option<Duration>,
    /// Neighbor-cache entry bound (second-chance eviction beyond it).
    pub cache_capacity: usize,
    /// Shard/replica layout for [`crate::sharded::ShardedServer`]: how many
    /// scatter-gather shards the item pool splits into and how many worker
    /// threads drain each shard's queue. A plain [`OnlineServer`] ignores it;
    /// the default is the degenerate 1×1 layout, so an un-sharded config is
    /// bit-identical to the pre-sharding server.
    pub sharding: ShardingConfig,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            cache_k: 30,
            top_k: 100,
            backend: BackendKind::Ivf,
            nprobe: 4,
            nlist: 32,
            graph_degree: 12,
            beam_width: 32,
            build_nprobe: 4,
            rerank_factor: crate::quantized::DEFAULT_RERANK_FACTOR,
            disable_cache: false,
            deadline: None,
            cache_capacity: NeighborCache::DEFAULT_CAPACITY,
            sharding: ShardingConfig::single(),
        }
    }
}

/// A scored, per-query retrieval: what the scatter-gather router needs from
/// each shard to merge honestly — item ids *with* their relevance scores
/// (ids alone cannot be interleaved across shards) plus the degraded flag.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoredRetrieval {
    /// `(item id, score)` pairs, descending score.
    pub items: Vec<(u64, f32)>,
    /// True when this answer came off the degraded ladder.
    pub degraded: bool,
}

impl ScoredRetrieval {
    /// Drop the scores, keeping rank order — the public [`Retrieval`] shape.
    pub fn into_retrieval(self) -> Retrieval {
        Retrieval {
            items: self.items.into_iter().map(|(id, _)| id as NodeId).collect(),
            degraded: self.degraded,
        }
    }
}

/// Pre-registered metric handles for the request path. Built once at server
/// construction (the only time the registry lock is taken); recording is
/// relaxed atomics through these handles, and no-ops down to one relaxed
/// load per stage while the registry is disabled.
struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    requests: Counter,
    batches: Counter,
    /// Batches rejected at admission with an already-spent budget.
    deadline_exceeded: Counter,
    /// Requests answered from the inverted-index fallback (budget spent
    /// after admission).
    degraded_fallback: Counter,
    /// Batches whose retrieval probe was capped below the backend's
    /// configured budget (`nprobe` for IVF, beam width for the proximity
    /// graph): `serve.degraded.budget_capped`.
    degraded_budget: Counter,
    /// Legacy alias for `degraded_budget`. The name predates multi-backend
    /// serving (`serve.degraded.nprobe_capped`); it stays registered and
    /// mirrors every increment so existing dashboards keep reading until
    /// they migrate to the canonical name.
    degraded_nprobe: Counter,
    /// Batches served at [`BrownoutRung::SkipWiden`]: the exact-rerank
    /// widening of under-full lists was skipped (`serve.degraded.skip_widen`).
    degraded_skip_widen: Counter,
    /// Batches served at [`BrownoutRung::ShrinkTopK`]: each query's top-k
    /// was halved (`serve.degraded.topk_shrunk`).
    degraded_topk: Counter,
    /// EWMA of the ANN stage's cost in ns, measured only when a deadline is
    /// bounded; feeds the next batch's at-risk-probe decision.
    ann_ewma_ns: AtomicU64,
    stage_cache: Histogram,
    stage_embed: Histogram,
    stage_ann: Histogram,
    stage_rank: Histogram,
}

impl ServerMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            requests: registry.counter("serve.requests"),
            batches: registry.counter("serve.batches"),
            deadline_exceeded: registry.counter("serve.deadline_exceeded"),
            degraded_fallback: registry.counter("serve.degraded.fallback"),
            degraded_budget: registry.counter("serve.degraded.budget_capped"),
            degraded_nprobe: registry.counter("serve.degraded.nprobe_capped"),
            degraded_skip_widen: registry.counter("serve.degraded.skip_widen"),
            degraded_topk: registry.counter("serve.degraded.topk_shrunk"),
            ann_ewma_ns: AtomicU64::new(0),
            stage_cache: registry.histogram("serve.stage.cache_resolve_ns"),
            stage_embed: registry.histogram("serve.stage.embed_ns"),
            stage_ann: registry.histogram("serve.stage.ann_probe_ns"),
            stage_rank: registry.histogram("serve.stage.rank_ns"),
            registry,
        }
    }
}

/// A shareable (`Arc`-cloneable, `&self`) online retrieval server.
pub struct OnlineServer {
    graph: Arc<HeteroGraph>,
    frozen: Arc<FrozenModel>,
    /// The retrieval backend (enum-dispatched: no dynamic call in the hot
    /// probe loop), selected by [`ServingConfig::backend`].
    backend: Arc<Backend>,
    /// Two-layer term → query → item index (§VII-E's iGraph layout) used by
    /// the term-retrieval fallback path.
    inverted: Arc<InvertedIndex>,
    cache: Arc<NeighborCache>,
    config: ServingConfig,
    sampler: FocalBiasedSampler,
    metrics: Arc<ServerMetrics>,
    /// Deterministic fault injector (tests/harnesses only); `None` in
    /// production and on every pre-existing code path.
    fault: Option<Arc<FaultInjector>>,
}

impl Clone for OnlineServer {
    fn clone(&self) -> Self {
        Self {
            graph: Arc::clone(&self.graph),
            frozen: Arc::clone(&self.frozen),
            backend: Arc::clone(&self.backend),
            inverted: Arc::clone(&self.inverted),
            cache: Arc::clone(&self.cache),
            config: self.config,
            sampler: self.sampler,
            metrics: Arc::clone(&self.metrics),
            fault: self.fault.clone(),
        }
    }
}

/// Step-by-step construction of an [`OnlineServer`] — the supported way to
/// build one (`OnlineServer::builder()`). Each input has a typed setter;
/// validation happens once, at [`ServerBuilder::build`].
///
/// ```ignore
/// let server = OnlineServer::builder()
///     .graph(graph)
///     .frozen(frozen)
///     .item_pool(&items)
///     .config(ServingConfig { top_k: 20, ..Default::default() })
///     .seed(81)
///     .metrics(registry) // optional: observability registry
///     .build()?;
/// ```
#[derive(Default)]
pub struct ServerBuilder {
    pub(crate) graph: Option<Arc<HeteroGraph>>,
    pub(crate) graph_bytes: Option<bytes::Bytes>,
    pub(crate) frozen: Option<FrozenModel>,
    /// Shared-tower alternative to `frozen`: the sharded builder hands every
    /// shard the same `Arc` so N shards do not hold N copies of the weights.
    pub(crate) frozen_shared: Option<Arc<FrozenModel>>,
    pub(crate) item_pool: Vec<NodeId>,
    pub(crate) config: ServingConfig,
    pub(crate) seed: u64,
    pub(crate) metrics: Option<Arc<MetricsRegistry>>,
    pub(crate) fault: Option<Arc<FaultInjector>>,
}

impl ServerBuilder {
    /// The graph snapshot to serve against (required).
    pub fn graph(mut self, graph: Arc<HeteroGraph>) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The graph as raw snapshot bytes (v1 or v2), decoded at
    /// [`ServerBuilder::build`] with the wall time recorded into the
    /// `serve.snapshot.load_ns` histogram — the deployment path where the
    /// serving tier receives a compact binary snapshot instead of an
    /// in-process graph. Ignored when [`ServerBuilder::graph`] is also set.
    pub fn graph_snapshot(mut self, bytes: bytes::Bytes) -> Self {
        self.graph_bytes = Some(bytes);
        self
    }

    /// The frozen (tape-free) model towers (required).
    pub fn frozen(mut self, frozen: FrozenModel) -> Self {
        self.frozen = Some(frozen);
        self
    }

    /// The item candidate pool to index (required, non-empty).
    pub fn item_pool(mut self, item_pool: &[NodeId]) -> Self {
        self.item_pool = item_pool.to_vec();
        self
    }

    /// Serving-stack parameters (defaults to [`ServingConfig::default`]).
    pub fn config(mut self, config: ServingConfig) -> Self {
        self.config = config;
        self
    }

    /// Seed for the ANN coarse quantizer's k-means (defaults to 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Shard/replica layout, equivalent to setting
    /// [`ServingConfig::sharding`]. Read by
    /// [`crate::sharded::ShardedServer::build`]; a plain
    /// [`ServerBuilder::build`] validates it but serves single-shard.
    pub fn sharding(mut self, sharding: ShardingConfig) -> Self {
        self.config.sharding = sharding;
        self
    }

    /// Attach an observability registry: per-stage latency histograms,
    /// request counters, and ANN probe-volume counters all report into it.
    /// Without one the server still runs a private disabled registry, so the
    /// request path is identical either way.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Arm a deterministic [`FaultInjector`] on the request path (latency
    /// spikes and injected actions at stage boundaries). For tests and
    /// fault-injection harnesses; servers built without one pay a single
    /// `Option` check per stage.
    pub fn fault(mut self, injector: Arc<FaultInjector>) -> Self {
        self.fault = Some(injector);
        self
    }

    /// Validate the inputs and build the server: embed every pool item
    /// through the frozen item tower and construct the inverted ANN index
    /// (§VI's offline-to-online hand-off).
    pub fn build(self) -> Result<OnlineServer, ServingError> {
        // Resolve the graph: an in-process handle wins; otherwise decode the
        // snapshot bytes here, timing the decode (the v2 format makes this a
        // section-table walk plus bulk copies — see `zoomer_graph::snapshot`).
        let mut snapshot_load_ns = None;
        let graph = match (self.graph, self.graph_bytes) {
            (Some(g), _) => g,
            (None, Some(raw)) => {
                let started = Instant::now();
                let g = zoomer_graph::read_snapshot(raw)?;
                snapshot_load_ns = Some(started.elapsed().as_nanos() as u64);
                Arc::new(g)
            }
            (None, None) => {
                return Err(ServingError::InvalidConfig("server builder needs a graph"))
            }
        };
        let frozen: Arc<FrozenModel> = match (self.frozen_shared, self.frozen) {
            (Some(shared), _) => shared,
            (None, Some(owned)) => Arc::new(owned),
            (None, None) => {
                return Err(ServingError::InvalidConfig("server builder needs a frozen model"))
            }
        };
        let config = self.config;
        if self.item_pool.is_empty() {
            return Err(ServingError::InvalidConfig("cannot serve an empty item pool"));
        }
        if config.top_k == 0 {
            return Err(ServingError::InvalidConfig("top_k must be positive"));
        }
        if config.nprobe == 0 || config.nlist == 0 {
            return Err(ServingError::InvalidConfig("nprobe and nlist must be positive"));
        }
        if config.backend == BackendKind::Proximity
            && (config.graph_degree == 0 || config.beam_width == 0)
        {
            return Err(ServingError::InvalidConfig(
                "graph_degree and beam_width must be positive",
            ));
        }
        if config.backend == BackendKind::Quantized && config.rerank_factor == 0 {
            return Err(ServingError::InvalidConfig("rerank_factor must be positive"));
        }
        if config.cache_capacity == 0 {
            return Err(ServingError::InvalidConfig("cache_capacity must be positive"));
        }
        if config.sharding.num_shards == 0 || config.sharding.replicas_per_shard == 0 {
            return Err(ServingError::InvalidConfig(
                "sharding needs at least one shard and one replica",
            ));
        }
        let num_nodes = graph.num_nodes();
        if let Some(&node) = self.item_pool.iter().find(|&&i| i as usize >= num_nodes) {
            return Err(ServingError::NodeOutOfRange { node, num_nodes });
        }
        // Item tower over the whole pool as one stacked matmul.
        let item_matrix = frozen.item_embeddings(&self.item_pool);
        let items: Vec<(u64, Vec<f32>)> = self
            .item_pool
            .iter()
            .enumerate()
            .map(|(r, &i)| (i as u64, item_matrix.row(r).to_vec()))
            .collect();
        // Stand the configured retrieval backend up over the pool.
        let mut backend = match config.backend {
            BackendKind::Ivf => {
                // Size the coarse quantizer to the pool (≈√N, capped by
                // config) so small pools keep enough candidates per probe.
                let nlist = config.nlist.min(((items.len() as f64).sqrt().ceil()) as usize).max(1);
                let index = IvfIndex::build(&items, nlist, 8, self.seed);
                Backend::Ivf(IvfBackend::new(index, config.nprobe, config.build_nprobe))
            }
            BackendKind::Quantized => {
                // Same coarse-quantizer sizing as IVF: the quantized index
                // adopts an IVF partition, so equal configs probe the same
                // lists and recall deltas measure quantization alone.
                let nlist = config.nlist.min(((items.len() as f64).sqrt().ceil()) as usize).max(1);
                Backend::Quantized(QuantizedIvf::build(
                    &items,
                    nlist,
                    8,
                    self.seed,
                    config.nprobe,
                    config.rerank_factor,
                ))
            }
            BackendKind::Exact => Backend::Exact(ExactSearch::build(&items)),
            BackendKind::Proximity => Backend::Proximity(ProximityGraph::build(
                &items,
                config.graph_degree,
                config.beam_width,
            )),
        };
        // Second retrieval layer: per-query postings ranked by the frozen
        // item tower against the query's own online embedding (with no
        // cached neighborhood that embedding is the query's base vector).
        // Queries are chunked into batched probes and the chunks run in
        // parallel. This ranking is offline, so the backend may afford a
        // wider budget than the serving path (IVF probes at least
        // `build_nprobe` lists regardless of the serving-path `nprobe`).
        let queries: Vec<NodeId> = graph.nodes_of_type(zoomer_graph::NodeType::Query);
        let chunks: Vec<&[NodeId]> = queries.chunks(64).collect();
        let postings: Vec<Result<QueryPostings, ServingError>> = chunks
            .par_iter()
            .map(|chunk| {
                let mut embs = Matrix::zeros(chunk.len(), frozen.embed_dim());
                for (r, &q) in chunk.iter().enumerate() {
                    embs.row_mut(r).copy_from_slice(&frozen.online_embedding(q, &[], &[]));
                }
                Ok(backend
                    .offline_rank_batch(&embs, config.top_k)?
                    .into_iter()
                    .zip(chunk.iter())
                    .map(|(ranked, &q)| {
                        (q, ranked.into_iter().map(|(id, _)| id as NodeId).collect())
                    })
                    .collect())
            })
            .collect();
        let mut inverted = InvertedIndex::new(&graph);
        for chunk_postings in postings {
            for (q, ranked) in chunk_postings? {
                if !ranked.is_empty() {
                    inverted.set_posting(q, ranked);
                }
            }
        }
        // Attach probe-volume counters only now, after the offline posting
        // ranking, so serve-time metrics are not polluted by build work.
        let registry = self.metrics.unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        backend.attach_metrics(&registry);
        if let Some(ns) = snapshot_load_ns {
            registry.histogram("serve.snapshot.load_ns").record(ns);
        }
        Ok(OnlineServer {
            graph,
            frozen,
            backend: Arc::new(backend),
            inverted: Arc::new(inverted),
            cache: Arc::new(NeighborCache::with_capacity(config.cache_k, config.cache_capacity)),
            config,
            sampler: FocalBiasedSampler::default(),
            metrics: Arc::new(ServerMetrics::new(registry)),
            fault: self.fault,
        })
    }
}

impl OnlineServer {
    /// Start building a server; see [`ServerBuilder`].
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Reject any request node id outside the loaded graph before it can
    /// reach code that indexes adjacency or feature arrays.
    pub(crate) fn validate_nodes(
        &self,
        nodes: impl IntoIterator<Item = NodeId>,
    ) -> Result<(), ServingError> {
        let num_nodes = self.graph.num_nodes();
        for node in nodes {
            if node as usize >= num_nodes {
                return Err(ServingError::NodeOutOfRange { node, num_nodes });
            }
        }
        Ok(())
    }

    /// Term-based retrieval fallback (cold users / no dense request vector):
    /// look the terms up in the two-layer inverted index.
    pub fn handle_by_terms(&self, terms: &[u32]) -> Vec<NodeId> {
        self.inverted.retrieve_by_terms(terms, self.config.top_k)
    }

    pub fn inverted(&self) -> &InvertedIndex {
        &self.inverted
    }

    pub fn config(&self) -> ServingConfig {
        self.config
    }

    pub fn cache(&self) -> &NeighborCache {
        &self.cache
    }

    /// The retrieval backend this server probes (enum-dispatched; use
    /// [`Backend::as_ivf`] to reach IVF-specific knobs when the configured
    /// backend is IVF).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    pub fn graph(&self) -> &HeteroGraph {
        &self.graph
    }

    /// The observability registry this server reports into (the one passed
    /// to [`ServerBuilder::metrics`], or a private disabled one).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics.registry
    }

    /// Point-in-time snapshot of every metric, with the neighbor cache's
    /// counters ingested first so hits/misses/refreshes appear next to the
    /// stage timings.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.registry.ingest_cache("cache", self.cache.stats());
        self.metrics.registry.snapshot()
    }

    /// Resolve the user/query neighborhoods for a whole batch.
    ///
    /// Cached path: one `get_many` read-lock sweep over every node in the
    /// batch, one `insert_many` write for the misses. Cache entries are
    /// always the node's neutral-focal top-k ([`neutral_topk_neighbors`] —
    /// the same definition `warm_cache` and offline eval use), so an entry
    /// never depends on which request happened to materialize it.
    ///
    /// `disable_cache` (ablation) samples fresh per request under the
    /// request's own focal context, like the paper's no-cache variant.
    pub(crate) fn resolve_neighbors(
        &self,
        requests: &[Query],
    ) -> Result<Vec<NeighborPair>, ServingError> {
        if self.config.disable_cache {
            return Ok(requests
                .iter()
                .map(|r| {
                    let (u, q) = r.pair();
                    let ctx = FocalContext::for_request(&self.graph, u, q);
                    let sample = |n: NodeId| {
                        let mut rng = seeded_rng(n as u64);
                        let mut fresh = self.sampler.sample(
                            &self.graph,
                            n,
                            &ctx,
                            self.config.cache_k,
                            &mut rng,
                        );
                        fresh.truncate(self.config.cache_k);
                        Arc::new(fresh)
                    };
                    (sample(u), sample(q))
                })
                .collect());
        }
        let nodes: Vec<NodeId> = requests.iter().flat_map(|r| [r.user, r.query]).collect();
        let found = self.cache.get_many(&nodes);
        let mut seen = HashSet::new();
        let missing: Vec<NodeId> = nodes
            .iter()
            .zip(&found)
            .filter(|(n, f)| f.is_none() && seen.insert(**n))
            .map(|(&n, _)| n)
            .collect();
        let computed: Vec<(NodeId, Vec<NodeId>)> = missing
            .iter()
            .map(|&n| (n, neutral_topk_neighbors(&self.graph, n, self.config.cache_k)))
            .collect();
        let inserted = self.cache.insert_many(computed);
        let filled: std::collections::HashMap<NodeId, Arc<Vec<NodeId>>> =
            missing.into_iter().zip(inserted).collect();
        let resolve = |i: usize| -> Result<Arc<Vec<NodeId>>, ServingError> {
            match &found[i] {
                Some(hit) => Ok(Arc::clone(hit)),
                None => filled
                    .get(&nodes[i])
                    .map(Arc::clone)
                    .ok_or(ServingError::Internal("cache miss sweep lost a node")),
            }
        };
        (0..requests.len()).map(|i| Ok((resolve(2 * i)?, resolve(2 * i + 1)?))).collect()
    }

    /// The per-query result size: the request's own `top_k` when set, the
    /// server default otherwise (`top_k == 0` is the tuple-era "whatever the
    /// server is configured for").
    #[inline]
    pub(crate) fn effective_top_k(&self, q: &Query) -> usize {
        if q.top_k == 0 {
            self.config.top_k
        } else {
            q.top_k as usize
        }
    }

    /// Handle a batch of retrieval requests: one [`Retrieval`] per
    /// [`Query`], element-wise identical to serving each query in its own
    /// batch of one.
    ///
    /// A malformed request (e.g. a node id outside the graph) yields an
    /// `Err` for this batch only; the server state is untouched and it keeps
    /// serving subsequent batches.
    ///
    /// The batch runs under the configured [`ServingConfig::deadline`] (if
    /// any), started at the moment this call admits the batch.
    pub fn handle_batch(&self, queries: &[Query]) -> Result<Vec<Retrieval>, ServingError> {
        self.handle_batch_with_deadline(queries, Deadline::from_config(self.config.deadline))
    }

    /// [`Self::handle_batch`] under an explicit, possibly already-running
    /// [`Deadline`] (e.g. one started when the request was enqueued, so
    /// queueing delay counts against the budget).
    ///
    /// Deadline semantics: an expired budget at admission is an error
    /// ([`ServingError::DeadlineExceeded`]); once admitted the batch always
    /// produces a response — the server degrades (caps the ANN probe between
    /// rounds, or answers from the inverted index alone) rather than wasting
    /// work already done. `Deadline::none()` reads no clock and leaves the
    /// path byte-identical to the pre-deadline server.
    pub fn handle_batch_with_deadline(
        &self,
        queries: &[Query],
        deadline: Deadline,
    ) -> Result<Vec<Retrieval>, ServingError> {
        Ok(self
            .handle_batch_scored(queries, deadline)?
            .into_iter()
            .map(ScoredRetrieval::into_retrieval)
            .collect())
    }

    /// The full request path, keeping scores: what a scatter-gather shard
    /// returns to the router so per-shard top-k lists can be merged by
    /// score. [`Self::handle_batch_with_deadline`] is exactly this with the
    /// scores dropped, so the scored and unscored paths can never diverge.
    pub fn handle_batch_scored(
        &self,
        queries: &[Query],
        deadline: Deadline,
    ) -> Result<Vec<ScoredRetrieval>, ServingError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        self.validate_nodes(queries.iter().flat_map(|r| [r.user, r.query]))?;
        let m = &*self.metrics;
        if deadline.expired() {
            m.deadline_exceeded.inc();
            return Err(ServingError::DeadlineExceeded { stage: "admission" });
        }
        m.batches.inc();
        m.requests.add(queries.len() as u64);

        self.fire_fault(FaultSite::CacheResolve);
        let t = StageTimer::start(&m.stage_cache);
        let neighbors = self.resolve_neighbors(queries)?;
        t.stop();
        if deadline.expired() {
            return Ok(self.degraded_fallback_batch(queries));
        }

        self.fire_fault(FaultSite::Embed);
        let t = StageTimer::start(&m.stage_embed);
        let neighbor_slices: Vec<(&[NodeId], &[NodeId])> =
            neighbors.iter().map(|(u, q)| (u.as_slice(), q.as_slice())).collect();
        let uq = self.frozen.embed_requests(&self.graph, queries, &neighbor_slices);
        t.stop();

        self.rank_scored(&uq, queries, &deadline)
    }

    /// Probe + rank the already-embedded batch: the back half of
    /// [`Self::handle_batch_scored`], from the ANN probe onward. Split out
    /// so a scatter-gather shard worker can run exactly this code over its
    /// own partitioned backend against router-computed embeddings — any
    /// drift between the sharded and single-shard rank paths would be a
    /// second copy of this function, so there is none.
    pub(crate) fn rank_scored(
        &self,
        uq: &Matrix,
        queries: &[Query],
        deadline: &Deadline,
    ) -> Result<Vec<ScoredRetrieval>, ServingError> {
        let rung = BrownoutRung::select(deadline, self.ann_cost_ewma_ns());
        self.rank_scored_at(uq, queries, deadline, rung)
    }

    /// [`Self::rank_scored`] at a rung chosen by the caller instead of this
    /// server's own EWMA — how the scatter-gather router imposes one
    /// worst-shard rung on every shard of a batch. Execution stays
    /// *adaptive*: a `CapBudget` batch runs the self-measuring round-major
    /// probe and only degrades if the budget actually runs out, so a
    /// prescribed rung never makes a batch worse than its deadline demands.
    pub(crate) fn rank_scored_at(
        &self,
        uq: &Matrix,
        queries: &[Query],
        deadline: &Deadline,
        rung: BrownoutRung,
    ) -> Result<Vec<ScoredRetrieval>, ServingError> {
        // The fault fires before the expiry check so an injected ANN-stage
        // spike deterministically exercises the fallback path.
        self.fire_fault(FaultSite::AnnProbe);
        if rung == BrownoutRung::Fallback || deadline.expired() {
            return Ok(self.degraded_fallback_batch(queries));
        }
        self.rank_at_rung(uq, queries, deadline, rung, false)
    }

    /// The shared back half of the organic ([`Self::rank_scored_at`]) and
    /// forced ([`Self::handle_batch_scored_forced`]) ladders: probe at the
    /// rung's width, count the rung realized, truncate/widen per row.
    /// `forced` switches `CapBudget` from the adaptive round-major probe to
    /// the prescriptive floor probe and keeps the EWMA unpolluted.
    fn rank_at_rung(
        &self,
        uq: &Matrix,
        queries: &[Query],
        deadline: &Deadline,
        rung: BrownoutRung,
        forced: bool,
    ) -> Result<Vec<ScoredRetrieval>, ServingError> {
        let m = &*self.metrics;
        // The backend probe runs once per batch at the widest k any query in
        // the batch asked for; narrower queries truncate their own row. With
        // every query at the default this is exactly the old single-k probe.
        // Shrinking rungs shrink at truncate time, not probe time: a top-k
        // probe's first k/2 entries are exactly the top-k/2 probe, so the
        // single wide probe serves every rung.
        let batch_k = queries.iter().map(|q| self.effective_top_k(q)).max().unwrap_or(0);
        let t = StageTimer::start(&m.stage_ann);
        let (found, capped) = match (rung, forced) {
            (BrownoutRung::CapBudget, false) => self.probe_bounded(uq, batch_k, deadline)?,
            (BrownoutRung::CapBudget, true) => {
                let floor = self.backend.search_batch_floor(uq, batch_k)?;
                let capped = floor.capped();
                (floor.results, capped)
            }
            _ => {
                let probe = self.probe_timed(uq, batch_k, deadline, forced)?;
                (probe, false)
            }
        };
        t.stop();

        // The rung this batch *realized*: an adaptive `CapBudget` probe that
        // never hit its budget is a full-width probe — the batch served at
        // `Full` and counts nothing (this is what keeps a generous deadline
        // byte-identical to no deadline). Only the realized rung's counter
        // moves, so the `serve.degraded.*` family partitions degraded
        // batches instead of double-counting them.
        let realized = if rung == BrownoutRung::CapBudget && !capped && !forced {
            BrownoutRung::Full
        } else {
            rung
        };
        match realized {
            BrownoutRung::Full => {}
            BrownoutRung::SkipWiden => m.degraded_skip_widen.inc(),
            BrownoutRung::ShrinkTopK => m.degraded_topk.inc(),
            BrownoutRung::CapBudget => {
                m.degraded_budget.inc();
                m.degraded_nprobe.inc();
            }
            // Fallback never reaches the probe path.
            BrownoutRung::Fallback => {}
        }

        let t = StageTimer::start(&m.stage_rank);
        let mut out = Vec::with_capacity(found.len());
        // Only a Full-rung batch widens: the exact scan exists to fill
        // under-full result lists and costs O(pool), exactly the work every
        // degraded rung exists to avoid.
        let widen = realized.widens() && !deadline.expired();
        for (i, mut f) in found.into_iter().enumerate() {
            let k = realized.shrunk_k(self.effective_top_k(&queries[i]));
            f.truncate(k);
            if widen && f.len() < k && f.len() < self.backend.len() {
                // Under-filled probe set (small pool, skewed clusters, or a
                // narrow beam): widen to an exact scan rather than return a
                // short list.
                f = self.backend.exact_search(uq.row(i), k)?;
            }
            out.push(ScoredRetrieval { items: f, degraded: realized != BrownoutRung::Full });
        }
        t.stop();
        Ok(out)
    }

    #[inline]
    fn fire_fault(&self, site: FaultSite) {
        if let Some(f) = &self.fault {
            f.fire(site);
        }
    }

    /// The adaptive at-risk probe (`CapBudget` rung, organic): round-major
    /// with a between-rounds expiry check, stopping early if the budget
    /// runs out — a capped probe equals a plain probe at the backend's
    /// smaller budget (`nprobe` for IVF, beam width for the proximity
    /// graph), trading recall for latency. Returns the per-query candidates
    /// and whether the probe was actually capped; feeds the EWMA either way.
    fn probe_bounded(&self, uq: &Matrix, top_k: usize, deadline: &Deadline) -> BudgetedProbe {
        let m = &*self.metrics;
        let ewma = m.ann_ewma_ns.load(Ordering::Relaxed);
        let t0 = Instant::now();
        let bounded = self.backend.search_batch_deadline(uq, top_k, deadline, &mut |_| {
            self.fire_fault(FaultSite::AnnRound)
        })?;
        let capped = bounded.capped();
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        m.ann_ewma_ns.store(if ewma == 0 { ns } else { (3 * ewma + ns) / 4 }, Ordering::Relaxed);
        Ok((bounded.results, capped))
    }

    /// The plain full-width probe, timed into the EWMA when a bounded
    /// deadline is watching (forced rungs measure nothing: a bench sweep
    /// must not teach the server that probes are cheap or dear).
    fn probe_timed(
        &self,
        uq: &Matrix,
        top_k: usize,
        deadline: &Deadline,
        forced: bool,
    ) -> Result<Vec<Vec<(u64, f32)>>, ServingError> {
        if forced || !deadline.is_bounded() {
            return self.backend.search_batch(uq, top_k);
        }
        let m = &*self.metrics;
        let ewma = m.ann_ewma_ns.load(Ordering::Relaxed);
        let t0 = Instant::now();
        let found = self.backend.search_batch(uq, top_k)?;
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        m.ann_ewma_ns.store(if ewma == 0 { ns } else { (3 * ewma + ns) / 4 }, Ordering::Relaxed);
        Ok(found)
    }

    /// EWMA of recent ANN-probe cost in ns (0 until a bounded-deadline batch
    /// has run). The scatter-gather router reads every shard's EWMA and
    /// drives the whole batch at the worst shard's rung.
    pub fn ann_cost_ewma_ns(&self) -> u64 {
        self.metrics.ann_ewma_ns.load(Ordering::Relaxed)
    }

    /// Budget-spent fallback: answer every request from the inverted index
    /// alone (term/posting lookup, no embedding or ANN work), truncated to
    /// the request's top-k. Requests with no posting get an empty list — a
    /// degraded answer within the deadline beats a complete answer after it.
    ///
    /// Fallback answers carry synthetic descending rank scores (`-rank`):
    /// the posting list is an ordering, not a scoring, and the router only
    /// needs scores that preserve that order when it merges shards.
    pub(crate) fn degraded_fallback_batch(&self, requests: &[Query]) -> Vec<ScoredRetrieval> {
        self.metrics.degraded_fallback.add(requests.len() as u64);
        requests
            .iter()
            .map(|r| {
                let items = self
                    .inverted
                    .posting(r.query)
                    .map(|p| {
                        p.iter()
                            .take(self.effective_top_k(r))
                            .enumerate()
                            .map(|(rank, &id)| (id as u64, -(rank as f32)))
                            .collect()
                    })
                    .unwrap_or_default();
                ScoredRetrieval { items, degraded: true }
            })
            .collect()
    }

    /// Serve a batch at a **prescribed** [`BrownoutRung`], bypassing the
    /// budget-driven selection: the harness entry point behind the
    /// `brownout_ladder` domination proptest and `fig_overload`'s per-rung
    /// sweep. `CapBudget` probes the backend's floor width
    /// ([`SearchBackend::search_batch_floor`]) rather than the adaptive
    /// round-major probe, so the rung means the same thing on every run; no
    /// rung here feeds the cost EWMA. Rung counters move exactly as an
    /// organic batch at the same rung would move them.
    pub fn handle_batch_scored_forced(
        &self,
        queries: &[Query],
        rung: BrownoutRung,
    ) -> Result<Vec<ScoredRetrieval>, ServingError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        self.validate_nodes(queries.iter().flat_map(|r| [r.user, r.query]))?;
        let m = &*self.metrics;
        m.batches.inc();
        m.requests.add(queries.len() as u64);
        if rung == BrownoutRung::Fallback {
            return Ok(self.degraded_fallback_batch(queries));
        }
        let neighbors = self.resolve_neighbors(queries)?;
        let neighbor_slices: Vec<(&[NodeId], &[NodeId])> =
            neighbors.iter().map(|(u, q)| (u.as_slice(), q.as_slice())).collect();
        let uq = self.frozen.embed_requests(&self.graph, queries, &neighbor_slices);
        self.rank_at_rung(&uq, queries, &Deadline::none(), rung, true)
    }

    /// Warm the cache for a set of nodes (deployment pre-fill). Fills the
    /// same neutral-focal entries the request path computes on a miss, so
    /// pre-warmed and cold-started servers serve identical results.
    pub fn warm_cache(&self, nodes: &[NodeId]) -> Result<(), ServingError> {
        if self.config.disable_cache {
            return Ok(());
        }
        self.validate_nodes(nodes.iter().copied())?;
        let found = self.cache.get_many(nodes);
        let mut seen = HashSet::new();
        let missing: Vec<NodeId> = nodes
            .iter()
            .zip(&found)
            .filter(|(n, f)| f.is_none() && seen.insert(**n))
            .map(|(&n, _)| n)
            .collect();
        let computed: Vec<(NodeId, Vec<NodeId>)> = missing
            .par_iter()
            .map(|&n| (n, neutral_topk_neighbors(&self.graph, n, self.config.cache_k)))
            .collect();
        self.cache.insert_many(computed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_data::{TaobaoConfig, TaobaoData};
    use zoomer_graph::NodeType;
    use zoomer_model::{ModelConfig, UnifiedCtrModel};

    fn build_server(disable_cache: bool) -> (TaobaoData, OnlineServer) {
        build_server_cfg(ServingConfig { top_k: 20, disable_cache, ..Default::default() })
    }

    fn build_server_cfg(config: ServingConfig) -> (TaobaoData, OnlineServer) {
        let data = TaobaoData::generate(TaobaoConfig::tiny(81));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(11, dd));
        let frozen = crate::frozen::FrozenModel::from_model(&mut model, &data.graph);
        let graph = Arc::new(
            zoomer_graph::read_snapshot(zoomer_graph::write_snapshot(&data.graph))
                .expect("snapshot roundtrip"),
        );
        let items = data.item_nodes();
        let server = OnlineServer::builder()
            .graph(graph)
            .frozen(frozen)
            .item_pool(&items)
            .config(config)
            .seed(81)
            .build()
            .expect("server build");
        (data, server)
    }

    /// Batch-of-one through the typed API — the old `handle` semantics the
    /// bulk of these tests were written against.
    fn one(
        server: &OnlineServer,
        user: NodeId,
        query: NodeId,
    ) -> Result<Vec<NodeId>, ServingError> {
        Ok(server
            .handle_batch(&[Query::new(user, query)])?
            .pop()
            .map(|r| r.items)
            .unwrap_or_default())
    }

    #[test]
    fn handle_returns_topk_items() {
        let (data, server) = build_server(false);
        let log = &data.logs[0];
        let result = one(&server, log.user, log.query).expect("serve");
        assert_eq!(result.len(), 20);
        for &item in &result {
            assert_eq!(data.graph.node_type(item), NodeType::Item);
        }
        // No duplicates.
        let set: std::collections::HashSet<_> = result.iter().collect();
        assert_eq!(set.len(), result.len());
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let (data, server) = build_server(false);
        let log = &data.logs[0];
        let first = one(&server, log.user, log.query).expect("serve");
        let misses_after_first = server.cache().stats().misses;
        let second = one(&server, log.user, log.query).expect("serve");
        let stats = server.cache().stats();
        assert_eq!(first, second, "same request must be deterministic");
        assert_eq!(stats.misses, misses_after_first, "second request should not miss");
        assert!(stats.hits >= 2);
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn cache_disabled_still_serves() {
        let (data, server) = build_server(true);
        let log = &data.logs[0];
        let result = one(&server, log.user, log.query).expect("serve");
        assert_eq!(result.len(), 20);
        assert_eq!(server.cache().len(), 0, "cache must stay empty when disabled");
    }

    #[test]
    fn warm_cache_prefills() {
        let (data, server) = build_server(false);
        let users: Vec<NodeId> = (0..10).collect();
        server.warm_cache(&users).expect("warm");
        assert!(server.cache().len() >= 10);
        let _ = data;
    }

    #[test]
    fn handle_batch_matches_sequential_handles() {
        let (data, server) = build_server(false);
        let requests: Vec<Query> = data
            .logs
            .iter()
            .take(8)
            .map(|l| Query::new(l.user, l.query))
            // Duplicate a pair inside the batch to cover same-batch reuse.
            .chain(std::iter::once(Query::new(data.logs[0].user, data.logs[0].query)))
            .collect();
        let batched = server.handle_batch(&requests).expect("serve batch");
        assert_eq!(batched.len(), requests.len());
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(
                batched[i].items,
                one(&server, r.user, r.query).expect("serve"),
                "request {i} diverges"
            );
        }
    }

    #[test]
    fn handle_batch_of_empty_is_empty() {
        let (_, server) = build_server(false);
        assert!(server.handle_batch(&[]).expect("serve batch").is_empty());
    }

    #[test]
    fn malformed_request_is_rejected_and_server_keeps_serving() {
        let (data, server) = build_server(false);
        let log = &data.logs[0];
        let before = one(&server, log.user, log.query).expect("serve");
        // A node id past the end of the graph must come back as a typed
        // error for that batch alone...
        let bogus = server.graph().num_nodes() as NodeId + 7;
        let err = server
            .handle_batch(&[Query::new(log.user, log.query), Query::new(bogus, log.query)])
            .expect_err("out-of-range node must be rejected");
        assert_eq!(
            err,
            crate::error::ServingError::NodeOutOfRange {
                node: bogus,
                num_nodes: server.graph().num_nodes()
            }
        );
        assert!(one(&server, log.user, bogus).is_err());
        assert!(server.warm_cache(&[bogus]).is_err());
        // ...while subsequent well-formed batches serve identically.
        let after = one(&server, log.user, log.query).expect("server must keep serving");
        assert_eq!(before, after, "rejected request must not perturb server state");
    }

    #[test]
    fn zero_deadline_is_rejected_at_admission_not_a_panic() {
        let (data, server) = build_server_cfg(ServingConfig {
            top_k: 20,
            deadline: Some(Duration::ZERO),
            ..Default::default()
        });
        let log = &data.logs[0];
        let err = server
            .handle_batch(&[Query::new(log.user, log.query)])
            .expect_err("a zero budget must be rejected at admission");
        assert_eq!(err, ServingError::DeadlineExceeded { stage: "admission" });
        // Rejection is typed and counted — never a panic, never a served batch.
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("serve.deadline_exceeded"), Some(1));
        assert_eq!(snap.counter("serve.batches"), Some(0), "rejected batch must not be admitted");
        // An empty batch is still the empty answer, even with a spent budget.
        assert!(server.handle_batch(&[]).expect("empty batch").is_empty());
    }

    #[test]
    fn generous_deadline_serves_identically_to_no_deadline() {
        let (data, unbounded) = build_server(false);
        let (_, bounded) = build_server_cfg(ServingConfig {
            top_k: 20,
            deadline: Some(Duration::from_secs(600)),
            ..Default::default()
        });
        let requests: Vec<Query> =
            data.logs.iter().take(6).map(|l| Query::new(l.user, l.query)).collect();
        assert_eq!(
            unbounded.handle_batch(&requests).expect("serve unbounded"),
            bounded.handle_batch(&requests).expect("serve bounded"),
            "an unspent budget must not change any answer"
        );
        let snap = bounded.metrics_snapshot();
        assert_eq!(snap.counter("serve.degraded.fallback"), Some(0));
        assert_eq!(snap.counter("serve.degraded.budget_capped"), Some(0));
        assert_eq!(snap.counter("serve.degraded.nprobe_capped"), Some(0));
    }

    #[test]
    fn zero_cache_capacity_is_a_build_error() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(84));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(11, dd));
        let frozen = crate::frozen::FrozenModel::from_model(&mut model, &data.graph);
        let items = data.item_nodes();
        assert!(matches!(
            OnlineServer::builder()
                .graph(Arc::new(data.graph))
                .frozen(frozen)
                .item_pool(&items)
                .config(ServingConfig { cache_capacity: 0, ..Default::default() })
                .build(),
            Err(ServingError::InvalidConfig("cache_capacity must be positive"))
        ));
    }

    #[test]
    fn empty_item_pool_is_a_build_error() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(82));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(11, dd));
        let frozen = crate::frozen::FrozenModel::from_model(&mut model, &data.graph);
        let err = match OnlineServer::builder()
            .graph(Arc::new(data.graph))
            .frozen(frozen)
            .item_pool(&[])
            .seed(82)
            .build()
        {
            Ok(_) => panic!("empty pool must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(err, crate::error::ServingError::InvalidConfig(_)));
    }

    #[test]
    fn builder_rejects_missing_inputs_and_zero_params() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(83));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(11, dd));
        let frozen = crate::frozen::FrozenModel::from_model(&mut model, &data.graph);
        let items = data.item_nodes();
        let graph = Arc::new(data.graph);
        // No graph.
        assert!(matches!(
            OnlineServer::builder().frozen(frozen).item_pool(&items).build(),
            Err(crate::error::ServingError::InvalidConfig(_))
        ));
        // No frozen model.
        assert!(matches!(
            OnlineServer::builder().graph(Arc::clone(&graph)).item_pool(&items).build(),
            Err(crate::error::ServingError::InvalidConfig(_))
        ));
        // Degenerate config values are rejected at build, not at request time.
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(11, dd));
        let frozen = crate::frozen::FrozenModel::from_model(&mut model, &graph);
        assert!(matches!(
            OnlineServer::builder()
                .graph(graph)
                .frozen(frozen)
                .item_pool(&items)
                .config(ServingConfig { top_k: 0, ..Default::default() })
                .build(),
            Err(crate::error::ServingError::InvalidConfig(_))
        ));
    }

    #[test]
    fn handle_batch_without_cache_matches_handle() {
        let (data, server) = build_server(true);
        let requests: Vec<Query> =
            data.logs.iter().take(5).map(|l| Query::new(l.user, l.query)).collect();
        let batched = server.handle_batch(&requests).expect("serve batch");
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(batched[i].items, one(&server, r.user, r.query).expect("serve"));
        }
    }

    #[test]
    fn warm_cache_matches_request_path() {
        // A warm-cache prefill must produce the same entries the request
        // path computes on a cold miss, so results are arrival-order
        // independent.
        let (data, cold_server) = build_server(false);
        let (_, warm_server) = build_server(false);
        let log = &data.logs[0];
        let cold = one(&cold_server, log.user, log.query).expect("serve");
        warm_server.warm_cache(&[log.user, log.query]).expect("warm");
        let warm = one(&warm_server, log.user, log.query).expect("serve");
        assert_eq!(cold, warm, "warm-cache entries must match request-path entries");
    }

    #[test]
    fn concurrent_batches_are_consistent() {
        let (data, server) = build_server(false);
        let requests: Vec<Query> =
            data.logs.iter().take(6).map(|l| Query::new(l.user, l.query)).collect();
        let baseline = server.handle_batch(&requests).expect("serve batch");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = server.clone();
                let expected = baseline.clone();
                let reqs = requests.clone();
                scope.spawn(move || {
                    for _ in 0..10 {
                        assert_eq!(s.handle_batch(&reqs).expect("serve batch"), expected);
                    }
                });
            }
        });
    }

    #[test]
    fn concurrent_requests_are_consistent() {
        let (data, server) = build_server(false);
        let log = data.logs[0].clone();
        let baseline = one(&server, log.user, log.query).expect("serve");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = server.clone();
                let expected = baseline.clone();
                let (u, q) = (log.user, log.query);
                scope.spawn(move || {
                    for _ in 0..25 {
                        assert_eq!(one(&s, u, q).expect("serve"), expected);
                    }
                });
            }
        });
    }

    #[test]
    fn term_retrieval_returns_items_from_matching_queries() {
        let (data, server) = build_server(false);
        // Use a real query's terms; its posting must be reachable by term.
        let q = data.logs[0].query;
        let terms = data.graph.features().terms(q).to_vec();
        assert!(!terms.is_empty());
        let got = server.handle_by_terms(&terms);
        assert!(!got.is_empty(), "term retrieval found nothing");
        for &item in &got {
            assert_eq!(data.graph.node_type(item), NodeType::Item);
        }
        assert!(got.len() <= server.config().top_k);
        // Unknown terms retrieve nothing.
        assert!(server.handle_by_terms(&[9_999_999]).is_empty());
        assert!(server.inverted().num_postings() > 0);
    }

    #[test]
    fn retrieval_prefers_intent_aligned_items() {
        // Items retrieved for a request should, on average, be closer to the
        // query's content vector than random items (structure sanity; exact
        // quality is measured in the benches after training).
        let (data, server) = build_server(false);
        let log = &data.logs[3];
        let retrieved = one(&server, log.user, log.query).expect("serve");
        let qv = data.graph.dense_feature(log.query);
        let mean_sim = |items: &[NodeId]| {
            items
                .iter()
                .map(|&i| zoomer_tensor::cosine_similarity(qv, data.graph.dense_feature(i)))
                .sum::<f32>()
                / items.len().max(1) as f32
        };
        let all_items = data.item_nodes();
        let retrieved_sim = mean_sim(&retrieved);
        let pool_sim = mean_sim(&all_items);
        // Untrained towers give weak signal; require only non-collapse.
        assert!(retrieved_sim.is_finite() && pool_sim.is_finite());
    }

    /// Fixture pieces for building a second server over the same data.
    fn fixture(
        seed: u64,
    ) -> (TaobaoData, Arc<HeteroGraph>, crate::frozen::FrozenModel, Vec<NodeId>) {
        let data = TaobaoData::generate(TaobaoConfig::tiny(seed));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(11, dd));
        let frozen = crate::frozen::FrozenModel::from_model(&mut model, &data.graph);
        let graph = Arc::new(
            zoomer_graph::read_snapshot(zoomer_graph::write_snapshot(&data.graph))
                .expect("snapshot roundtrip"),
        );
        let items = data.item_nodes();
        (data, graph, frozen, items)
    }

    #[test]
    fn exact_backend_serves_topk_items() {
        let (data, server) = build_server_cfg(ServingConfig {
            top_k: 20,
            backend: BackendKind::Exact,
            ..Default::default()
        });
        assert_eq!(server.backend().kind(), BackendKind::Exact);
        let requests: Vec<Query> =
            data.logs.iter().take(6).map(|l| Query::new(l.user, l.query)).collect();
        let batched = server.handle_batch(&requests).expect("serve batch");
        for (i, (r, row)) in requests.iter().zip(&batched).enumerate() {
            assert_eq!(row.len(), 20);
            for &item in &row.items {
                assert_eq!(data.graph.node_type(item), NodeType::Item, "request {i}");
            }
            assert_eq!(
                row.items,
                one(&server, r.user, r.query).expect("serve"),
                "request {i} diverges"
            );
        }
    }

    #[test]
    fn proximity_backend_serves_topk_items() {
        let (data, server) = build_server_cfg(ServingConfig {
            top_k: 20,
            backend: BackendKind::Proximity,
            graph_degree: 8,
            beam_width: 40,
            ..Default::default()
        });
        assert_eq!(server.backend().kind(), BackendKind::Proximity);
        let requests: Vec<Query> =
            data.logs.iter().take(6).map(|l| Query::new(l.user, l.query)).collect();
        let batched = server.handle_batch(&requests).expect("serve batch");
        for (i, (r, row)) in requests.iter().zip(&batched).enumerate() {
            assert_eq!(row.len(), 20);
            let set: std::collections::HashSet<_> = row.items.iter().collect();
            assert_eq!(set.len(), row.len(), "request {i} returned duplicates");
            assert_eq!(
                row.items,
                one(&server, r.user, r.query).expect("serve"),
                "request {i} diverges"
            );
        }
    }

    #[test]
    fn quantized_backend_serves_topk_items() {
        let (data, server) = build_server_cfg(ServingConfig {
            top_k: 20,
            backend: BackendKind::Quantized,
            ..Default::default()
        });
        assert_eq!(server.backend().kind(), BackendKind::Quantized);
        let quant = server.backend().as_quantized().expect("quantized backend");
        assert!(
            quant.memory_footprint().compression_ratio() >= 4.0,
            "int8 code store must be at least 4x smaller than the f32 rerank store"
        );
        let requests: Vec<Query> =
            data.logs.iter().take(6).map(|l| Query::new(l.user, l.query)).collect();
        let batched = server.handle_batch(&requests).expect("serve batch");
        for (i, (r, row)) in requests.iter().zip(&batched).enumerate() {
            assert_eq!(row.len(), 20);
            for &item in &row.items {
                assert_eq!(data.graph.node_type(item), NodeType::Item, "request {i}");
            }
            assert_eq!(
                row.items,
                one(&server, r.user, r.query).expect("serve"),
                "request {i} diverges"
            );
        }
    }

    #[test]
    fn quantized_backend_rejects_zero_rerank_factor() {
        let (_, graph, frozen, items) = fixture(81);
        let result = OnlineServer::builder()
            .graph(graph)
            .frozen(frozen)
            .item_pool(&items)
            .config(ServingConfig {
                backend: BackendKind::Quantized,
                rerank_factor: 0,
                ..Default::default()
            })
            .build();
        match result {
            Err(ServingError::InvalidConfig(msg)) => {
                assert_eq!(msg, "rerank_factor must be positive");
            }
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("rerank_factor 0 must be rejected"),
        }
    }

    #[test]
    fn builder_decodes_snapshot_bytes_and_times_the_load() {
        let (data, _, frozen, items) = fixture(81);
        let registry = Arc::new(zoomer_obs::MetricsRegistry::enabled());
        let server = OnlineServer::builder()
            .graph_snapshot(zoomer_graph::write_snapshot(&data.graph))
            .frozen(frozen)
            .item_pool(&items)
            .config(ServingConfig { top_k: 10, ..Default::default() })
            .metrics(Arc::clone(&registry))
            .build()
            .expect("server from snapshot bytes");
        assert_eq!(server.graph().num_nodes(), data.graph.num_nodes());
        let snap = registry.snapshot();
        let load = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve.snapshot.load_ns")
            .expect("load histogram registered");
        assert_eq!(load.count, 1, "exactly one snapshot decode must be timed");
        let log = &data.logs[0];
        assert_eq!(one(&server, log.user, log.query).expect("serve").len(), 10);
    }

    #[test]
    fn exact_backend_matches_a_full_probe_ivf_server() {
        // At recall=1 settings (IVF probing every list) both backends run
        // the same frozen relevance arithmetic, so the served rankings must
        // agree item-for-item.
        let (data, graph, frozen, items) = fixture(87);
        let wide = items.len();
        let ivf = OnlineServer::builder()
            .graph(Arc::clone(&graph))
            .frozen(frozen.clone())
            .item_pool(&items)
            .config(ServingConfig { top_k: 15, nprobe: wide, nlist: wide, ..Default::default() })
            .seed(87)
            .build()
            .expect("ivf build");
        let exact = OnlineServer::builder()
            .graph(graph)
            .frozen(frozen)
            .item_pool(&items)
            .config(ServingConfig { top_k: 15, backend: BackendKind::Exact, ..Default::default() })
            .seed(87)
            .build()
            .expect("exact build");
        let requests: Vec<Query> =
            data.logs.iter().take(8).map(|l| Query::new(l.user, l.query)).collect();
        assert_eq!(
            ivf.handle_batch(&requests).expect("ivf serve"),
            exact.handle_batch(&requests).expect("exact serve"),
            "full-probe IVF and the exact backend must serve identically"
        );
    }

    #[test]
    fn proximity_backend_rejects_zero_graph_params() {
        let (_, graph, frozen, items) = fixture(88);
        assert!(matches!(
            OnlineServer::builder()
                .graph(graph)
                .frozen(frozen)
                .item_pool(&items)
                .config(ServingConfig {
                    backend: BackendKind::Proximity,
                    graph_degree: 0,
                    ..Default::default()
                })
                .build(),
            Err(ServingError::InvalidConfig("graph_degree and beam_width must be positive"))
        ));
    }

    #[test]
    fn backend_stats_count_served_probes() {
        let (data, graph, frozen, items) = fixture(89);
        let registry = Arc::new(zoomer_obs::MetricsRegistry::enabled());
        let server = OnlineServer::builder()
            .graph(graph)
            .frozen(frozen)
            .item_pool(&items)
            .config(ServingConfig { top_k: 10, backend: BackendKind::Exact, ..Default::default() })
            .seed(89)
            .metrics(Arc::clone(&registry))
            .build()
            .expect("build");
        let requests: Vec<Query> =
            data.logs.iter().take(5).map(|l| Query::new(l.user, l.query)).collect();
        server.handle_batch(&requests).expect("serve");
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("serve.backend.queries"), Some(5));
        assert_eq!(
            snap.counter("serve.backend.candidates_scored"),
            Some(5 * items.len() as u64),
            "the exact backend scores the whole pool per query"
        );
    }

    #[test]
    fn build_nprobe_controls_the_offline_posting_probe() {
        // Regression for the hidden `nprobe.max(4)`: the *effective* build
        // probe is `nprobe.max(build_nprobe)`, so swapping the two values
        // must rank identical postings even though the serving-path nprobe
        // differs. Before the fix, `build_nprobe` did not exist and a small
        // nprobe was silently widened to 4 with no way to turn that off.
        let (_, graph, frozen, items) = fixture(85);
        let wide = graph.nodes_of_type(zoomer_graph::NodeType::Query).len().max(8);
        let narrow_serve = OnlineServer::builder()
            .graph(Arc::clone(&graph))
            .frozen(frozen.clone())
            .item_pool(&items)
            .config(ServingConfig { nprobe: 1, build_nprobe: wide, ..Default::default() })
            .seed(85)
            .build()
            .expect("build");
        let wide_serve = OnlineServer::builder()
            .graph(Arc::clone(&graph))
            .frozen(frozen)
            .item_pool(&items)
            .config(ServingConfig { nprobe: wide, build_nprobe: 1, ..Default::default() })
            .seed(85)
            .build()
            .expect("build");
        let queries = graph.nodes_of_type(zoomer_graph::NodeType::Query);
        assert!(!queries.is_empty());
        for &q in &queries {
            assert_eq!(
                narrow_serve.inverted().posting(q),
                wide_serve.inverted().posting(q),
                "query {q}: build-time probe must be nprobe.max(build_nprobe)"
            );
        }
    }

    #[test]
    fn metrics_record_per_stage_timings() {
        let (data, graph, frozen, items) = fixture(86);
        let registry = Arc::new(zoomer_obs::MetricsRegistry::enabled());
        let server = OnlineServer::builder()
            .graph(graph)
            .frozen(frozen)
            .item_pool(&items)
            .config(ServingConfig { top_k: 10, ..Default::default() })
            .seed(86)
            .metrics(Arc::clone(&registry))
            .build()
            .expect("build");
        assert!(Arc::ptr_eq(server.metrics_registry(), &registry));
        // Build-time posting ranking must not leak into serve-time counters.
        assert_eq!(registry.snapshot().counter("ann.lists_probed"), Some(0));
        let requests: Vec<Query> =
            data.logs.iter().take(6).map(|l| Query::new(l.user, l.query)).collect();
        server.handle_batch(&requests).expect("serve");
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(6));
        assert_eq!(snap.counter("serve.batches"), Some(1));
        for stage in [
            "serve.stage.cache_resolve_ns",
            "serve.stage.embed_ns",
            "serve.stage.ann_probe_ns",
            "serve.stage.rank_ns",
        ] {
            let h = snap.histogram(stage).unwrap_or_else(|| panic!("{stage} missing"));
            assert_eq!(h.count, 1, "{stage} must record once per batch");
            assert!(h.p50() > 0, "{stage} must measure real time");
        }
        assert!(snap.counter("ann.lists_probed").expect("ingested") > 0);
        assert!(snap.counter("cache.misses").expect("ingested") > 0);
    }

    #[test]
    fn disabled_registry_keeps_counters_but_skips_histograms() {
        let (data, server) = build_server(false);
        let log = &data.logs[0];
        one(&server, log.user, log.query).expect("serve");
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(1), "counters are always-on");
        let h = snap.histogram("serve.stage.embed_ns").expect("registered");
        assert_eq!(h.count, 0, "disabled registry must not time stages");
    }
}
