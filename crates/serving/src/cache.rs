//! Per-node neighbor caches with asynchronous refresh.
//!
//! §VII-E: "we deploy caches for dynamically storing k last visited
//! neighbors for each user and query nodes, thus avoiding the overhead for
//! the aggregation operation. In our production deployment, k is set to 30.
//! Besides, the cache updating is fully asynchronous from users' timely
//! requests." The request path only ever reads the cache; misses enqueue a
//! refresh and fall back to computing inline (first touch) — subsequent
//! requests hit.
//!
//! Overload robustness: the cache is **capacity-bounded** (second-chance
//! eviction, so a miss-heavy or adversarial request stream cannot grow the
//! map without limit) and the refresher queue is **bounded with
//! drop-on-full** plus a pending-node dedup set, so the refresh path can
//! never block a request or queue N recomputes for one hot node.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crossbeam::channel::{bounded, Sender};
use zoomer_graph::NodeId;
use zoomer_obs::CacheStats;

/// One cached entry plus its second-chance reference bit. The bit is set on
/// every hit (under the read lock — it is atomic precisely so readers can
/// flip it) and cleared as the clock hand sweeps past during eviction.
struct Slot {
    neighbors: Arc<Vec<NodeId>>,
    referenced: AtomicBool,
}

/// The locked interior: the entry map plus the clock ring the second-chance
/// hand walks. Invariant: `ring` holds exactly the keys of `map`, each once.
struct ClockState {
    map: HashMap<NodeId, Slot>,
    ring: Vec<NodeId>,
    hand: usize,
}

/// Thread-safe neighbor cache: node → up-to-`k` cached neighbor ids, at most
/// `capacity` entries (second-chance eviction beyond that).
pub struct NeighborCache {
    k: usize,
    capacity: usize,
    state: RwLock<ClockState>,
    hits: AtomicU64,
    misses: AtomicU64,
    refreshes: AtomicU64,
    evictions: AtomicU64,
}

impl NeighborCache {
    /// Default entry bound: generous (a production cache holds millions of
    /// user/query entries) but finite, so an unconfigured cache still cannot
    /// grow without limit.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// `k` = neighbors cached per node (paper: 30), with the default
    /// capacity bound.
    pub fn new(k: usize) -> Self {
        Self::with_capacity(k, Self::DEFAULT_CAPACITY)
    }

    /// `k` neighbors per node, at most `capacity` entries (minimum 1).
    pub fn with_capacity(k: usize, capacity: usize) -> Self {
        Self {
            k,
            capacity: capacity.max(1),
            state: RwLock::new(ClockState { map: HashMap::new(), ring: Vec::new(), hand: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    /// The entry bound; `len() <= capacity()` always holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquire the state read lock, recovering from poisoning: a reader that
    /// panicked mid-`get` cannot have left the map partially mutated, so the
    /// data is intact and later callers must keep being served rather than
    /// propagate the panic (zoomer-lint rule L003).
    fn read_state(&self) -> RwLockReadGuard<'_, ClockState> {
        self.state.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the state write lock, recovering from poisoning. Every write
    /// below goes through [`Self::install_locked`], whose map/ring updates
    /// are completed per entry before anything can observe them — a
    /// panicking holder between entries leaves a structurally sound state.
    fn write_state(&self) -> RwLockWriteGuard<'_, ClockState> {
        self.state.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Install `node → neighbors` under the held write lock, evicting via
    /// the second-chance clock if the cache is full.
    fn install_locked(&self, state: &mut ClockState, node: NodeId, neighbors: Arc<Vec<NodeId>>) {
        if let Some(slot) = state.map.get_mut(&node) {
            // Replace in place (refresh path); the entry is demonstrably
            // live, so it keeps its second chance.
            slot.neighbors = neighbors;
            slot.referenced.store(true, Ordering::Relaxed);
            return;
        }
        if state.ring.len() < self.capacity {
            state.ring.push(node);
            state.map.insert(node, Slot { neighbors, referenced: AtomicBool::new(false) });
            return;
        }
        // Second-chance sweep: entries referenced since the hand last passed
        // get one lap of grace; the first unreferenced entry is evicted and
        // its ring slot reused. After one full lap every bit is clear, so
        // the sweep ends within 2·capacity steps (the cap below is belt and
        // braces against an invariant break, not a reachable path).
        let len = state.ring.len();
        let mut steps = 0usize;
        let idx = loop {
            let idx = state.hand % len;
            let candidate = state.ring[idx];
            let referenced = state
                .map
                .get(&candidate)
                .map(|s| s.referenced.swap(false, Ordering::Relaxed))
                .unwrap_or(false);
            state.hand = (idx + 1) % len;
            steps += 1;
            if !referenced || steps >= 2 * len {
                break idx;
            }
        };
        let victim = state.ring[idx];
        state.map.remove(&victim);
        state.ring[idx] = node;
        state.map.insert(node, Slot { neighbors, referenced: AtomicBool::new(false) });
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Cached neighbors, or `None` on a miss. A hit sets the entry's
    /// reference bit, shielding it from the next eviction sweep.
    pub fn get(&self, node: NodeId) -> Option<Arc<Vec<NodeId>>> {
        let state = self.read_state();
        let found = state.map.get(&node).map(|slot| {
            slot.referenced.store(true, Ordering::Relaxed);
            Arc::clone(&slot.neighbors)
        });
        drop(state);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Read through: return cached neighbors or compute-and-insert inline.
    pub fn get_or_compute(
        &self,
        node: NodeId,
        compute: impl FnOnce() -> Vec<NodeId>,
    ) -> Arc<Vec<NodeId>> {
        if let Some(hit) = self.get(node) {
            return hit;
        }
        let mut fresh = compute();
        fresh.truncate(self.k);
        let arc = Arc::new(fresh);
        self.install_locked(&mut self.write_state(), node, Arc::clone(&arc));
        arc
    }

    /// Batched lookup under a single read lock: one `Option` per requested
    /// node, in order. Hit/miss counters advance once per node, matching a
    /// sequence of [`Self::get`] calls.
    pub fn get_many(&self, nodes: &[NodeId]) -> Vec<Option<Arc<Vec<NodeId>>>> {
        let state = self.read_state();
        let found: Vec<Option<Arc<Vec<NodeId>>>> = nodes
            .iter()
            .map(|n| {
                state.map.get(n).map(|slot| {
                    slot.referenced.store(true, Ordering::Relaxed);
                    Arc::clone(&slot.neighbors)
                })
            })
            .collect();
        drop(state);
        let hits = found.iter().filter(|f| f.is_some()).count() as u64;
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(nodes.len() as u64 - hits, Ordering::Relaxed);
        found
    }

    /// Batched insert under a single write lock (fills after a `get_many`
    /// miss sweep). Entries are truncated to `k` like every other insert.
    pub fn insert_many(&self, entries: Vec<(NodeId, Vec<NodeId>)>) -> Vec<Arc<Vec<NodeId>>> {
        let arcs: Vec<(NodeId, Arc<Vec<NodeId>>)> = entries
            .into_iter()
            .map(|(n, mut v)| {
                v.truncate(self.k);
                (n, Arc::new(v))
            })
            .collect();
        let mut state = self.write_state();
        arcs.into_iter()
            .map(|(n, a)| {
                self.install_locked(&mut state, n, Arc::clone(&a));
                a
            })
            .collect()
    }

    /// Replace a node's cached neighbors (refresh path; counts toward
    /// [`CacheStats::refreshes`]).
    pub fn put(&self, node: NodeId, mut neighbors: Vec<NodeId>) {
        neighbors.truncate(self.k);
        self.install_locked(&mut self.write_state(), node, Arc::new(neighbors));
        self.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    pub fn len(&self) -> usize {
        self.read_state().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters as a named [`CacheStats`] — the type the
    /// metrics registry ingests (`MetricsRegistry::ingest_cache`). Hit rate
    /// is derived there: `stats().hit_rate()`.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Background refresher: owns a worker thread that recomputes cache entries
/// "fully asynchronous from users' timely requests".
///
/// The queue is bounded: a full queue **drops** the refresh request (the
/// entry simply stays stale a little longer) instead of ever blocking the
/// request path. A pending-node set deduplicates requests, so N misses on
/// one hot node cost one recompute, not N.
pub struct CacheRefresher {
    tx: Option<Sender<NodeId>>,
    handle: Option<std::thread::JoinHandle<u64>>,
    pending: Arc<Mutex<HashSet<NodeId>>>,
    deduped: AtomicU64,
    dropped: AtomicU64,
}

impl CacheRefresher {
    /// Default refresh queue depth: deep enough that drops only happen under
    /// sustained overload, shallow enough to bound memory and staleness.
    pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

    /// Spawn a refresher that recomputes entries with `compute` and installs
    /// them into `cache`, with the default queue depth.
    pub fn spawn(
        cache: Arc<NeighborCache>,
        compute: impl Fn(NodeId) -> Vec<NodeId> + Send + 'static,
    ) -> Self {
        Self::with_queue_capacity(cache, Self::DEFAULT_QUEUE_CAPACITY, compute)
    }

    /// [`Self::spawn`] with an explicit queue depth (minimum 1).
    pub fn with_queue_capacity(
        cache: Arc<NeighborCache>,
        queue_capacity: usize,
        compute: impl Fn(NodeId) -> Vec<NodeId> + Send + 'static,
    ) -> Self {
        let (tx, rx) = bounded::<NodeId>(queue_capacity.max(1));
        let pending = Arc::new(Mutex::new(HashSet::new()));
        let worker_pending = Arc::clone(&pending);
        let handle = std::thread::spawn(move || {
            let mut refreshed = 0u64;
            for node in rx {
                cache.put(node, compute(node));
                // Clear pending only after the entry is installed, so a
                // request arriving mid-refresh dedups against the compute
                // that is already producing its answer.
                worker_pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&node);
                refreshed += 1;
            }
            refreshed
        });
        Self {
            tx: Some(tx),
            handle: Some(handle),
            pending,
            deduped: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Enqueue a refresh; never blocks the request path. Returns whether the
    /// request was accepted: `false` means it was deduplicated against an
    /// already-pending refresh for the same node, or dropped because the
    /// queue is full (the entry stays stale — strictly better than stalling
    /// a user request on background work).
    pub fn request_refresh(&self, node: NodeId) -> bool {
        let Some(tx) = &self.tx else {
            return false;
        };
        {
            let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
            if !pending.insert(node) {
                drop(pending);
                self.deduped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        match tx.try_send(node) {
            Ok(()) => true,
            Err(_) => {
                self.pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&node);
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Requests deduplicated against an already-pending refresh.
    pub fn deduped(&self) -> u64 {
        self.deduped.load(Ordering::Relaxed)
    }

    /// Requests dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain the queue and stop; returns how many entries were refreshed,
    /// or an error if the worker thread panicked (e.g. a panicking
    /// `compute` closure) instead of taking the caller down with it.
    pub fn shutdown(mut self) -> Result<u64, crate::error::ServingError> {
        drop(self.tx.take());
        match self.handle.take() {
            Some(h) => {
                h.join().map_err(|_| crate::error::ServingError::WorkerPanicked("cache refresher"))
            }
            None => Ok(0),
        }
    }
}

impl Drop for CacheRefresher {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Test-only surface. `with_write_lock` runs caller-supplied code while
/// holding the cache's write lock — exactly the shape L007 bans from the
/// request path — and exists solely so the poisoned-lock scenario can
/// panic inside the critical section. Keeping it under `#[cfg(test)]`
/// makes it impossible for production code to reach.
#[cfg(test)]
impl NeighborCache {
    pub fn with_write_lock<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.write_state();
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn miss_then_hit() {
        let cache = NeighborCache::new(30);
        assert!(cache.get(5).is_none());
        let v = cache.get_or_compute(5, || vec![1, 2, 3]);
        assert_eq!(*v, vec![1, 2, 3]);
        assert_eq!(*cache.get(5).expect("now cached"), vec![1, 2, 3]);
        let s = cache.stats();
        // get miss + get_or_compute miss + get hit
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn truncates_to_k() {
        let cache = NeighborCache::new(3);
        cache.put(1, (0..10).collect());
        assert_eq!(cache.get(1).expect("cached").len(), 3);
        let v = cache.get_or_compute(2, || (0..10).collect());
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn get_many_counts_like_sequential_gets() {
        let cache = NeighborCache::new(4);
        cache.put(1, vec![10]);
        cache.put(3, vec![30]);
        let found = cache.get_many(&[1, 2, 3, 2]);
        assert_eq!(found.len(), 4);
        assert_eq!(**found[0].as_ref().expect("hit"), vec![10]);
        assert!(found[1].is_none());
        assert_eq!(**found[2].as_ref().expect("hit"), vec![30]);
        assert!(found[3].is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
    }

    #[test]
    fn insert_many_truncates_and_installs() {
        let cache = NeighborCache::new(2);
        let arcs = cache.insert_many(vec![(1, vec![1, 2, 3, 4]), (2, vec![5])]);
        assert_eq!(*arcs[0], vec![1, 2]);
        assert_eq!(*arcs[1], vec![5]);
        assert_eq!(*cache.get(1).expect("cached"), vec![1, 2]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn hit_rate_tracks_queries() {
        let cache = NeighborCache::new(2);
        cache.put(1, vec![9]);
        for _ in 0..8 {
            let _ = cache.get(1);
        }
        let _ = cache.get(2); // miss
        assert!((cache.stats().hit_rate() - 8.0 / 9.0).abs() < 1e-9);
        assert_eq!(cache.stats().refreshes, 1, "put() is the refresh path");
    }

    #[test]
    fn capacity_bounds_len_under_churn() {
        let capacity = 16;
        let cache = NeighborCache::with_capacity(4, capacity);
        assert_eq!(cache.capacity(), capacity);
        for n in 0..500u32 {
            cache.put(n, vec![n]);
            assert!(
                cache.len() <= capacity,
                "len {} exceeds capacity after insert {n}",
                cache.len()
            );
        }
        assert_eq!(cache.len(), capacity);
        let s = cache.stats();
        assert_eq!(s.evictions, 500 - capacity as u64, "every insert past capacity evicts once");
        // The same accounting arrives through every insert path.
        cache.insert_many(vec![(1000, vec![1]), (1001, vec![2])]);
        let _ = cache.get_or_compute(1002, || vec![3]);
        assert_eq!(cache.len(), capacity);
        assert_eq!(cache.stats().evictions, 503 - capacity as u64);
    }

    #[test]
    fn hot_entries_survive_churn() {
        let cache = NeighborCache::with_capacity(4, 8);
        cache.put(999, vec![1, 2]);
        assert!(cache.get(999).is_some());
        for n in 0..200u32 {
            cache.put(n, vec![n]);
            // The hot node keeps getting hit between insertions, re-arming
            // its second chance every time the clock hand clears it.
            assert!(cache.get(999).is_some(), "hot entry evicted after {} cold inserts", n + 1);
        }
        assert!(cache.len() <= 8);
        // A node never touched again did not survive the churn.
        assert!(cache.get(0).is_none());
    }

    #[test]
    fn replacing_an_existing_entry_never_evicts() {
        let cache = NeighborCache::with_capacity(4, 2);
        cache.put(1, vec![1]);
        cache.put(2, vec![2]);
        for _ in 0..10 {
            cache.put(1, vec![7]);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0, "in-place replacement is not an eviction");
        assert_eq!(*cache.get(1).expect("replaced"), vec![7]);
        assert_eq!(*cache.get(2).expect("untouched"), vec![2]);
    }

    #[test]
    fn refresher_updates_entries_asynchronously() {
        let cache = Arc::new(NeighborCache::new(5));
        cache.put(7, vec![1]);
        let refresher =
            CacheRefresher::spawn(Arc::clone(&cache), |node| vec![node + 100, node + 101]);
        assert!(refresher.request_refresh(7));
        assert!(refresher.request_refresh(8));
        let done = refresher.shutdown().expect("refresher finished cleanly");
        assert_eq!(done, 2);
        assert_eq!(*cache.get(7).expect("refreshed"), vec![107, 108]);
        assert_eq!(*cache.get(8).expect("filled"), vec![108, 109]);
    }

    #[test]
    fn duplicate_refresh_requests_dedup_to_one_compute() {
        let cache = Arc::new(NeighborCache::new(5));
        // Gate the compute closure so the worker sits inside the first
        // refresh while the duplicates arrive.
        let (entered_tx, entered_rx) = unbounded::<NodeId>();
        let (gate_tx, gate_rx) = unbounded::<()>();
        let refresher = CacheRefresher::spawn(Arc::clone(&cache), move |n| {
            let _ = entered_tx.send(n);
            let _ = gate_rx.recv();
            vec![n + 1]
        });
        assert!(refresher.request_refresh(42), "first request must enqueue");
        assert_eq!(entered_rx.recv(), Ok(42), "worker must start the refresh");
        for _ in 0..99 {
            assert!(!refresher.request_refresh(42), "duplicates must dedup");
        }
        assert_eq!(refresher.deduped(), 99);
        let _ = gate_tx.send(());
        let done = refresher.shutdown().expect("clean shutdown");
        assert_eq!(done, 1, "100 requests for one node must compute once");
        assert_eq!(*cache.get(42).expect("refreshed"), vec![43]);
    }

    #[test]
    fn full_refresh_queue_drops_instead_of_blocking() {
        let cache = Arc::new(NeighborCache::new(5));
        let (entered_tx, entered_rx) = unbounded::<NodeId>();
        let (gate_tx, gate_rx) = unbounded::<()>();
        let refresher = CacheRefresher::with_queue_capacity(Arc::clone(&cache), 2, move |n| {
            let _ = entered_tx.send(n);
            let _ = gate_rx.recv();
            vec![n]
        });
        assert!(refresher.request_refresh(1));
        // The worker is now blocked inside compute(1) and the queue is empty.
        assert_eq!(entered_rx.recv(), Ok(1));
        assert!(refresher.request_refresh(2));
        assert!(refresher.request_refresh(3));
        // Queue full: further requests return immediately as drops rather
        // than blocking the (simulated) request thread.
        assert!(!refresher.request_refresh(4));
        assert!(!refresher.request_refresh(5));
        assert_eq!(refresher.dropped(), 2);
        // Drops are drops, not dedups: the pending entry was cleared, so a
        // dropped node could be re-requested later.
        assert_eq!(refresher.deduped(), 0);
        for _ in 0..3 {
            let _ = gate_tx.send(());
        }
        let done = refresher.shutdown().expect("clean shutdown");
        assert_eq!(done, 3);
        assert!(cache.get(4).is_none(), "dropped request must not refresh");
    }

    #[test]
    fn panicking_refresher_reports_worker_panicked() {
        let cache = Arc::new(NeighborCache::new(5));
        let refresher = CacheRefresher::spawn(Arc::clone(&cache), |_| panic!("compute blew up"));
        refresher.request_refresh(1);
        let err = refresher.shutdown().expect_err("panicked worker must surface as an error");
        assert!(matches!(err, crate::error::ServingError::WorkerPanicked(_)));
    }

    #[test]
    fn poisoned_lock_does_not_wedge_subsequent_callers() {
        // A thread that panics while holding the state lock poisons a std
        // RwLock. The cache must recover (the map itself is never left
        // mid-mutation) instead of cascading that one panic into every
        // later request thread.
        let cache = Arc::new(NeighborCache::new(4));
        cache.put(1, vec![9]);
        let poisoner = Arc::clone(&cache);
        let panicked = std::thread::spawn(move || {
            poisoner.with_write_lock(|| {
                panic!("simulated request-thread panic while holding the cache lock")
            })
        })
        .join();
        assert!(panicked.is_err(), "poisoner thread must have panicked");
        // Reads, batched reads, writes and batched writes all still work.
        let found = cache.get_many(&[1, 2]);
        assert_eq!(**found[0].as_ref().expect("pre-poison entry survives"), vec![9]);
        assert!(found[1].is_none());
        cache.insert_many(vec![(2, vec![5, 6])]);
        assert_eq!(*cache.get(2).expect("insert after poison"), vec![5, 6]);
        cache.put(3, vec![7]);
        assert_eq!(*cache.get_or_compute(4, || vec![8]), vec![8]);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let cache = Arc::new(NeighborCache::with_capacity(4, 32));
        std::thread::scope(|scope| {
            let c = Arc::clone(&cache);
            scope.spawn(move || {
                for n in 0..500u32 {
                    c.put(n % 50, vec![n]);
                }
            });
            for _ in 0..4 {
                let c = Arc::clone(&cache);
                scope.spawn(move || {
                    for n in 0..500u32 {
                        let _ = c.get(n % 50);
                    }
                });
            }
        });
        assert!(cache.len() <= 32, "capacity bound must hold under concurrency");
    }
}
