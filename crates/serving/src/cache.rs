//! Per-node neighbor caches with asynchronous refresh.
//!
//! §VII-E: "we deploy caches for dynamically storing k last visited
//! neighbors for each user and query nodes, thus avoiding the overhead for
//! the aggregation operation. In our production deployment, k is set to 30.
//! Besides, the cache updating is fully asynchronous from users' timely
//! requests." The request path only ever reads the cache; misses enqueue a
//! refresh and fall back to computing inline (first touch) — subsequent
//! requests hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crossbeam::channel::{unbounded, Sender};
use zoomer_graph::NodeId;
use zoomer_obs::CacheStats;

/// Thread-safe neighbor cache: node → up-to-`k` cached neighbor ids.
pub struct NeighborCache {
    k: usize,
    map: RwLock<HashMap<NodeId, Arc<Vec<NodeId>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    refreshes: AtomicU64,
}

impl NeighborCache {
    /// `k` = neighbors cached per node (paper: 30).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    /// Acquire the map read lock, recovering from poisoning: a reader that
    /// panicked mid-`get` cannot have left the map partially mutated, so the
    /// data is intact and later callers must keep being served rather than
    /// propagate the panic (zoomer-lint rule L003).
    fn read_map(&self) -> RwLockReadGuard<'_, HashMap<NodeId, Arc<Vec<NodeId>>>> {
        self.map.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the map write lock, recovering from poisoning. Every write
    /// below is a single `HashMap::insert` per entry — there is no
    /// multi-step critical section a panic could tear — so the recovered map
    /// is always structurally sound.
    fn write_map(&self) -> RwLockWriteGuard<'_, HashMap<NodeId, Arc<Vec<NodeId>>>> {
        self.map.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Cached neighbors, or `None` on a miss.
    pub fn get(&self, node: NodeId) -> Option<Arc<Vec<NodeId>>> {
        let found = self.read_map().get(&node).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Read through: return cached neighbors or compute-and-insert inline.
    pub fn get_or_compute(
        &self,
        node: NodeId,
        compute: impl FnOnce() -> Vec<NodeId>,
    ) -> Arc<Vec<NodeId>> {
        if let Some(hit) = self.get(node) {
            return hit;
        }
        let mut fresh = compute();
        fresh.truncate(self.k);
        let arc = Arc::new(fresh);
        self.write_map().insert(node, Arc::clone(&arc));
        arc
    }

    /// Batched lookup under a single read lock: one `Option` per requested
    /// node, in order. Hit/miss counters advance once per node, matching a
    /// sequence of [`Self::get`] calls.
    pub fn get_many(&self, nodes: &[NodeId]) -> Vec<Option<Arc<Vec<NodeId>>>> {
        let map = self.read_map();
        let found: Vec<Option<Arc<Vec<NodeId>>>> =
            nodes.iter().map(|n| map.get(n).cloned()).collect();
        drop(map);
        let hits = found.iter().filter(|f| f.is_some()).count() as u64;
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(nodes.len() as u64 - hits, Ordering::Relaxed);
        found
    }

    /// Batched insert under a single write lock (fills after a `get_many`
    /// miss sweep). Entries are truncated to `k` like every other insert.
    pub fn insert_many(&self, entries: Vec<(NodeId, Vec<NodeId>)>) -> Vec<Arc<Vec<NodeId>>> {
        let arcs: Vec<(NodeId, Arc<Vec<NodeId>>)> = entries
            .into_iter()
            .map(|(n, mut v)| {
                v.truncate(self.k);
                (n, Arc::new(v))
            })
            .collect();
        let mut map = self.write_map();
        arcs.iter()
            .map(|(n, a)| {
                map.insert(*n, Arc::clone(a));
                Arc::clone(a)
            })
            .collect()
    }

    /// Replace a node's cached neighbors (refresh path; counts toward
    /// [`CacheStats::refreshes`]).
    pub fn put(&self, node: NodeId, mut neighbors: Vec<NodeId>) {
        neighbors.truncate(self.k);
        self.write_map().insert(node, Arc::new(neighbors));
        self.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    pub fn len(&self) -> usize {
        self.read_map().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters as a named [`CacheStats`] — the type the
    /// metrics registry ingests (`MetricsRegistry::ingest_cache`). Hit rate
    /// is derived there: `stats().hit_rate()`.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
        }
    }
}

/// Background refresher: owns a worker thread that recomputes cache entries
/// "fully asynchronous from users' timely requests".
pub struct CacheRefresher {
    tx: Option<Sender<NodeId>>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl CacheRefresher {
    /// Spawn a refresher that recomputes entries with `compute` and installs
    /// them into `cache`.
    pub fn spawn(
        cache: Arc<NeighborCache>,
        compute: impl Fn(NodeId) -> Vec<NodeId> + Send + 'static,
    ) -> Self {
        let (tx, rx) = unbounded::<NodeId>();
        let handle = std::thread::spawn(move || {
            let mut refreshed = 0u64;
            for node in rx {
                cache.put(node, compute(node));
                refreshed += 1;
            }
            refreshed
        });
        Self { tx: Some(tx), handle: Some(handle) }
    }

    /// Enqueue a refresh; never blocks the request path.
    pub fn request_refresh(&self, node: NodeId) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(node);
        }
    }

    /// Drain the queue and stop; returns how many entries were refreshed,
    /// or an error if the worker thread panicked (e.g. a panicking
    /// `compute` closure) instead of taking the caller down with it.
    pub fn shutdown(mut self) -> Result<u64, crate::error::ServingError> {
        drop(self.tx.take());
        match self.handle.take() {
            Some(h) => {
                h.join().map_err(|_| crate::error::ServingError::WorkerPanicked("cache refresher"))
            }
            None => Ok(0),
        }
    }
}

impl Drop for CacheRefresher {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let cache = NeighborCache::new(30);
        assert!(cache.get(5).is_none());
        let v = cache.get_or_compute(5, || vec![1, 2, 3]);
        assert_eq!(*v, vec![1, 2, 3]);
        assert_eq!(*cache.get(5).expect("now cached"), vec![1, 2, 3]);
        let s = cache.stats();
        // get miss + get_or_compute miss + get hit
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn truncates_to_k() {
        let cache = NeighborCache::new(3);
        cache.put(1, (0..10).collect());
        assert_eq!(cache.get(1).expect("cached").len(), 3);
        let v = cache.get_or_compute(2, || (0..10).collect());
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn get_many_counts_like_sequential_gets() {
        let cache = NeighborCache::new(4);
        cache.put(1, vec![10]);
        cache.put(3, vec![30]);
        let found = cache.get_many(&[1, 2, 3, 2]);
        assert_eq!(found.len(), 4);
        assert_eq!(**found[0].as_ref().expect("hit"), vec![10]);
        assert!(found[1].is_none());
        assert_eq!(**found[2].as_ref().expect("hit"), vec![30]);
        assert!(found[3].is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
    }

    #[test]
    fn insert_many_truncates_and_installs() {
        let cache = NeighborCache::new(2);
        let arcs = cache.insert_many(vec![(1, vec![1, 2, 3, 4]), (2, vec![5])]);
        assert_eq!(*arcs[0], vec![1, 2]);
        assert_eq!(*arcs[1], vec![5]);
        assert_eq!(*cache.get(1).expect("cached"), vec![1, 2]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn hit_rate_tracks_queries() {
        let cache = NeighborCache::new(2);
        cache.put(1, vec![9]);
        for _ in 0..8 {
            let _ = cache.get(1);
        }
        let _ = cache.get(2); // miss
        assert!((cache.stats().hit_rate() - 8.0 / 9.0).abs() < 1e-9);
        assert_eq!(cache.stats().refreshes, 1, "put() is the refresh path");
    }

    #[test]
    fn refresher_updates_entries_asynchronously() {
        let cache = Arc::new(NeighborCache::new(5));
        cache.put(7, vec![1]);
        let refresher =
            CacheRefresher::spawn(Arc::clone(&cache), |node| vec![node + 100, node + 101]);
        refresher.request_refresh(7);
        refresher.request_refresh(8);
        let done = refresher.shutdown().expect("refresher finished cleanly");
        assert_eq!(done, 2);
        assert_eq!(*cache.get(7).expect("refreshed"), vec![107, 108]);
        assert_eq!(*cache.get(8).expect("filled"), vec![108, 109]);
    }

    #[test]
    fn panicking_refresher_reports_worker_panicked() {
        let cache = Arc::new(NeighborCache::new(5));
        let refresher = CacheRefresher::spawn(Arc::clone(&cache), |_| panic!("compute blew up"));
        refresher.request_refresh(1);
        let err = refresher.shutdown().expect_err("panicked worker must surface as an error");
        assert!(matches!(err, crate::error::ServingError::WorkerPanicked(_)));
    }

    #[test]
    fn poisoned_lock_does_not_wedge_subsequent_callers() {
        // A thread that panics while holding the map lock poisons a std
        // RwLock. The cache must recover (the map itself is never left
        // mid-mutation) instead of cascading that one panic into every
        // later request thread.
        let cache = Arc::new(NeighborCache::new(4));
        cache.put(1, vec![9]);
        let poisoner = Arc::clone(&cache);
        let panicked = std::thread::spawn(move || {
            let _guard = poisoner.map.write();
            panic!("simulated request-thread panic while holding the cache lock");
        })
        .join();
        assert!(panicked.is_err(), "poisoner thread must have panicked");
        // Reads, batched reads, writes and batched writes all still work.
        let found = cache.get_many(&[1, 2]);
        assert_eq!(**found[0].as_ref().expect("pre-poison entry survives"), vec![9]);
        assert!(found[1].is_none());
        cache.insert_many(vec![(2, vec![5, 6])]);
        assert_eq!(*cache.get(2).expect("insert after poison"), vec![5, 6]);
        cache.put(3, vec![7]);
        assert_eq!(*cache.get_or_compute(4, || vec![8]), vec![8]);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let cache = Arc::new(NeighborCache::new(4));
        std::thread::scope(|scope| {
            let c = Arc::clone(&cache);
            scope.spawn(move || {
                for n in 0..500u32 {
                    c.put(n % 50, vec![n]);
                }
            });
            for _ in 0..4 {
                let c = Arc::clone(&cache);
                scope.spawn(move || {
                    for n in 0..500u32 {
                        let _ = c.get(n % 50);
                    }
                });
            }
        });
        assert!(cache.len() <= 50);
    }
}
