//! Per-node neighbor caches with asynchronous refresh.
//!
//! §VII-E: "we deploy caches for dynamically storing k last visited
//! neighbors for each user and query nodes, thus avoiding the overhead for
//! the aggregation operation. In our production deployment, k is set to 30.
//! Besides, the cache updating is fully asynchronous from users' timely
//! requests." The request path only ever reads the cache; misses enqueue a
//! refresh and fall back to computing inline (first touch) — subsequent
//! requests hit.
//!
//! Eviction is **degree-of-interest aware**: every entry carries a DOI
//! score
//!
//! ```text
//! DOI = α·Recency + β·Frequency + γ·ExplicitInterest − δ·DistanceFromFocus
//! ```
//!
//! folded into four tiers (High / Medium / Low / Ghost). The second-chance
//! clock sweep evicts Ghost and Low entries before it will consider Medium,
//! and refuses to evict a High-tier entry for a colder newcomer at all
//! (DOI-gated admission), so a one-shot adversarial scan cannot flush the
//! focal-hot working set. Hit counters decay on a logical-tick schedule so
//! yesterday's hot node does not stay High forever.
//!
//! Overload robustness: the cache is **capacity-bounded** and the refresher
//! queue is **bounded** with a pending-node dedup set. A refresh the full
//! queue sheds is parked on a bounded retry side queue (deterministic
//! per-node jitter) and re-driven by the worker instead of being lost until
//! the next organic miss; drops, retries, and recoveries are counted
//! (`serve.cache.refresh.*`).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use zoomer_graph::NodeId;
use zoomer_obs::{CacheStats, Counter, MetricsRegistry};

/// DOI weight on the recency term (`1 / (1 + ticks_since_last_touch)`).
pub const DOI_RECENCY_WEIGHT: f32 = 0.30;
/// DOI weight on the decayed hit-frequency term
/// (`ln(1 + hits) / ln(1 + max_hits)`).
pub const DOI_FREQUENCY_WEIGHT: f32 = 0.20;
/// DOI weight on explicit interest (a pinned entry).
pub const DOI_EXPLICIT_WEIGHT: f32 = 0.30;
/// DOI weight (subtractive) on hop distance from the focal set.
pub const DOI_DISTANCE_WEIGHT: f32 = 0.20;
/// Focal distances at or beyond this count as maximally far (term = 1).
pub const DOI_MAX_FOCAL_DISTANCE: u8 = 4;

/// Hit counters (and the cache-wide max they normalize against) halve every
/// this many installs, so frequency reflects the recent request mix rather
/// than all-time totals.
const DOI_DECAY_PERIOD: u64 = 1024;

/// Degree-of-interest tier, ordered coldest → hottest. Eviction consumes
/// the low end first; [`DoiTier::High`] entries are admission-protected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DoiTier {
    /// Score below 0.10: effectively forgotten, first out.
    Ghost,
    /// Score in [0.10, 0.30): cold, evicted before anything warmer.
    Low,
    /// Score in [0.30, 0.65): warm; evicted only when no Ghost/Low exists.
    Medium,
    /// Score at or above 0.65: focal-hot; never evicted for a colder
    /// newcomer.
    High,
}

impl DoiTier {
    /// Tier thresholds over the DOI score.
    pub fn from_score(score: f32) -> Self {
        if score >= 0.65 {
            DoiTier::High
        } else if score >= 0.30 {
            DoiTier::Medium
        } else if score >= 0.10 {
            DoiTier::Low
        } else {
            DoiTier::Ghost
        }
    }
}

/// The degree-of-interest score of one cache entry, in roughly [-δ, α+β+γ].
///
/// This runs under the cache's locks on every eviction sweep, so it is
/// written panic-free by construction: saturating age arithmetic, clamped
/// distance, and a guarded log normalizer (zoomer-lint L001 pins this —
/// see `crates/lint/tests/fixtures.rs`).
pub fn doi_score(
    now_tick: u64,
    last_touch_tick: u64,
    hits: u64,
    max_hits: u64,
    focal_distance: u8,
    pinned: bool,
) -> f32 {
    let age = now_tick.saturating_sub(last_touch_tick) as f32;
    let recency = 1.0 / (1.0 + age);
    let denom = (1.0 + max_hits.max(1) as f32).ln();
    let frequency = if denom > 0.0 { (1.0 + hits as f32).ln() / denom } else { 0.0 };
    let explicit = if pinned { 1.0 } else { 0.0 };
    let distance =
        (focal_distance.min(DOI_MAX_FOCAL_DISTANCE) as f32) / DOI_MAX_FOCAL_DISTANCE.max(1) as f32;
    DOI_RECENCY_WEIGHT * recency
        + DOI_FREQUENCY_WEIGHT * frequency.clamp(0.0, 1.0)
        + DOI_EXPLICIT_WEIGHT * explicit
        - DOI_DISTANCE_WEIGHT * distance
}

/// One cached entry: the neighbor list, the second-chance reference bit,
/// and the DOI inputs. Everything mutated on the read path (hits, touch
/// tick, the bit) is atomic precisely so readers can update it under the
/// read lock.
struct Slot {
    neighbors: Arc<Vec<NodeId>>,
    referenced: AtomicBool,
    /// Decayed hit counter (halved every [`DOI_DECAY_PERIOD`] installs).
    hits: AtomicU64,
    /// Logical install tick of the last touch (hit, install, or refresh).
    last_touch: AtomicU64,
    /// Explicit interest: pinned entries carry the γ term.
    pinned: AtomicBool,
    /// Hop distance from the focal set; request-path entries are distance 0
    /// (the requested node itself), prefetched frontier entries sit further
    /// out and go first.
    focal_distance: u8,
}

impl Slot {
    fn new(neighbors: Arc<Vec<NodeId>>, tick: u64, focal_distance: u8) -> Self {
        Self {
            neighbors,
            referenced: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            last_touch: AtomicU64::new(tick),
            pinned: AtomicBool::new(false),
            focal_distance,
        }
    }

    fn score(&self, now_tick: u64, max_hits: u64) -> f32 {
        doi_score(
            now_tick,
            self.last_touch.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            max_hits,
            self.focal_distance,
            self.pinned.load(Ordering::Relaxed),
        )
    }

    fn tier(&self, now_tick: u64, max_hits: u64) -> DoiTier {
        DoiTier::from_score(self.score(now_tick, max_hits))
    }
}

/// The locked interior: the entry map plus the clock ring the second-chance
/// hand walks. Invariant: `ring` holds exactly the keys of `map`, each once.
struct ClockState {
    map: HashMap<NodeId, Slot>,
    ring: Vec<NodeId>,
    hand: usize,
}

/// Thread-safe neighbor cache: node → up-to-`k` cached neighbor ids, at most
/// `capacity` entries (DOI-tiered second-chance eviction beyond that).
pub struct NeighborCache {
    k: usize,
    capacity: usize,
    state: RwLock<ClockState>,
    /// Logical clock: advances once per fresh install; recency ages against
    /// it instead of wall time so behavior is deterministic under test.
    tick: AtomicU64,
    /// Cache-wide max decayed hit count — the frequency normalizer.
    max_hits: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    refreshes: AtomicU64,
    evictions: AtomicU64,
    /// Installs refused because every resident entry was High-tier and
    /// warmer than the newcomer (DOI-gated admission).
    admission_rejected: AtomicU64,
}

impl NeighborCache {
    /// Default entry bound: generous (a production cache holds millions of
    /// user/query entries) but finite, so an unconfigured cache still cannot
    /// grow without limit.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// `k` = neighbors cached per node (paper: 30), with the default
    /// capacity bound.
    pub fn new(k: usize) -> Self {
        Self::with_capacity(k, Self::DEFAULT_CAPACITY)
    }

    /// `k` neighbors per node, at most `capacity` entries (minimum 1).
    pub fn with_capacity(k: usize, capacity: usize) -> Self {
        Self {
            k,
            capacity: capacity.max(1),
            state: RwLock::new(ClockState { map: HashMap::new(), ring: Vec::new(), hand: 0 }),
            tick: AtomicU64::new(0),
            max_hits: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    /// The entry bound; `len() <= capacity()` always holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquire the state read lock, recovering from poisoning: a reader that
    /// panicked mid-`get` cannot have left the map partially mutated, so the
    /// data is intact and later callers must keep being served rather than
    /// propagate the panic (zoomer-lint rule L003).
    fn read_state(&self) -> RwLockReadGuard<'_, ClockState> {
        self.state.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the state write lock, recovering from poisoning. Every write
    /// below goes through [`Self::install_locked`], whose map/ring updates
    /// are completed per entry before anything can observe them — a
    /// panicking holder between entries leaves a structurally sound state.
    fn write_state(&self) -> RwLockWriteGuard<'_, ClockState> {
        self.state.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record a touch on a resident slot (read path: under the read lock).
    fn touch(&self, slot: &Slot) {
        slot.referenced.store(true, Ordering::Relaxed);
        slot.last_touch.store(self.tick.load(Ordering::Relaxed), Ordering::Relaxed);
        let h = slot.hits.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_hits.fetch_max(h, Ordering::Relaxed);
    }

    /// Halve every decayed hit counter (and the normalizer) once per
    /// [`DOI_DECAY_PERIOD`] installs, so frequency tracks the recent mix.
    fn maybe_decay(&self, state: &mut ClockState, tick: u64) {
        if tick == 0 || !tick.is_multiple_of(DOI_DECAY_PERIOD) {
            return;
        }
        for slot in state.map.values() {
            let h = slot.hits.load(Ordering::Relaxed);
            slot.hits.store(h / 2, Ordering::Relaxed);
        }
        let m = self.max_hits.load(Ordering::Relaxed);
        self.max_hits.store(m / 2, Ordering::Relaxed);
    }

    /// Install `node → neighbors` under the held write lock, evicting via
    /// the DOI-tiered second-chance clock if the cache is full. Returns
    /// whether the entry was installed: `false` means admission was refused
    /// because every resident entry was High-tier and warmer than this
    /// newcomer.
    fn install_locked(
        &self,
        state: &mut ClockState,
        node: NodeId,
        neighbors: Arc<Vec<NodeId>>,
        focal_distance: u8,
    ) -> bool {
        if let Some(slot) = state.map.get_mut(&node) {
            // Replace in place (refresh path); the entry is demonstrably
            // live, so it keeps its second chance, its hit history, and its
            // pin.
            slot.neighbors = neighbors;
            slot.referenced.store(true, Ordering::Relaxed);
            slot.last_touch.store(self.tick.load(Ordering::Relaxed), Ordering::Relaxed);
            return true;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        self.maybe_decay(state, tick);
        if state.ring.len() < self.capacity {
            state.ring.push(node);
            state.map.insert(node, Slot::new(neighbors, tick, focal_distance));
            return true;
        }
        // DOI-tiered second-chance sweep. Pass 1 walks up to two laps
        // seeking an unreferenced Ghost/Low entry (after one lap every
        // reference bit is clear, so the second lap finds any Ghost/Low
        // entry that exists), noting the lowest tier seen. Pass 2 runs only
        // when nothing at or below Low exists but something below High
        // does: one more lap (bits now clear) takes the first Medium entry.
        // If every resident is High-tier, the install itself is refused —
        // a one-shot scan must not flush the focal-hot working set.
        let len = state.ring.len();
        let max_hits = self.max_hits.load(Ordering::Relaxed);
        let mut lowest_seen = DoiTier::High;
        let mut victim: Option<usize> = None;
        let mut steps = 0usize;
        while steps < 2 * len {
            let idx = state.hand % len;
            let candidate = state.ring[idx];
            state.hand = (idx + 1) % len;
            steps += 1;
            let Some(slot) = state.map.get(&candidate) else {
                // Invariant break (ring key missing from map): reuse the
                // slot rather than walk forever.
                victim = Some(idx);
                break;
            };
            let referenced = slot.referenced.swap(false, Ordering::Relaxed);
            let tier = slot.tier(tick, max_hits);
            if tier < lowest_seen {
                lowest_seen = tier;
            }
            if !referenced && tier <= DoiTier::Low {
                victim = Some(idx);
                break;
            }
        }
        if victim.is_none() && lowest_seen < DoiTier::High {
            let mut steps = 0usize;
            while steps < len {
                let idx = state.hand % len;
                let candidate = state.ring[idx];
                state.hand = (idx + 1) % len;
                steps += 1;
                let is_victim = state
                    .map
                    .get(&candidate)
                    .map(|s| s.tier(tick, max_hits) <= DoiTier::Medium)
                    .unwrap_or(true);
                if is_victim {
                    victim = Some(idx);
                    break;
                }
            }
        }
        let Some(idx) = victim else {
            // DOI-gated admission: every resident entry is High-tier, and a
            // fresh entry scores at most α + β (no pin, no history) — below
            // the High threshold. Caching this newcomer would trade hot
            // state for a one-shot scan; keep the working set instead.
            self.admission_rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        let evicted = state.ring[idx];
        state.map.remove(&evicted);
        state.ring[idx] = node;
        state.map.insert(node, Slot::new(neighbors, tick, focal_distance));
        self.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Cached neighbors, or `None` on a miss. A hit sets the entry's
    /// reference bit and advances its DOI recency/frequency terms,
    /// shielding it from the next eviction sweep.
    pub fn get(&self, node: NodeId) -> Option<Arc<Vec<NodeId>>> {
        let state = self.read_state();
        let found = state.map.get(&node).map(|slot| {
            self.touch(slot);
            Arc::clone(&slot.neighbors)
        });
        drop(state);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Read through: return cached neighbors or compute-and-insert inline.
    pub fn get_or_compute(
        &self,
        node: NodeId,
        compute: impl FnOnce() -> Vec<NodeId>,
    ) -> Arc<Vec<NodeId>> {
        if let Some(hit) = self.get(node) {
            return hit;
        }
        let mut fresh = compute();
        fresh.truncate(self.k);
        let arc = Arc::new(fresh);
        self.install_locked(&mut self.write_state(), node, Arc::clone(&arc), 0);
        arc
    }

    /// Batched lookup under a single read lock: one `Option` per requested
    /// node, in order. Hit/miss counters advance once per node, matching a
    /// sequence of [`Self::get`] calls.
    pub fn get_many(&self, nodes: &[NodeId]) -> Vec<Option<Arc<Vec<NodeId>>>> {
        let state = self.read_state();
        let found: Vec<Option<Arc<Vec<NodeId>>>> = nodes
            .iter()
            .map(|n| {
                state.map.get(n).map(|slot| {
                    self.touch(slot);
                    Arc::clone(&slot.neighbors)
                })
            })
            .collect();
        drop(state);
        let hits = found.iter().filter(|f| f.is_some()).count() as u64;
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(nodes.len() as u64 - hits, Ordering::Relaxed);
        found
    }

    /// Batched insert under a single write lock (fills after a `get_many`
    /// miss sweep). Entries are truncated to `k` like every other insert.
    pub fn insert_many(&self, entries: Vec<(NodeId, Vec<NodeId>)>) -> Vec<Arc<Vec<NodeId>>> {
        let arcs: Vec<(NodeId, Arc<Vec<NodeId>>)> = entries
            .into_iter()
            .map(|(n, mut v)| {
                v.truncate(self.k);
                (n, Arc::new(v))
            })
            .collect();
        let mut state = self.write_state();
        arcs.into_iter()
            .map(|(n, a)| {
                self.install_locked(&mut state, n, Arc::clone(&a), 0);
                a
            })
            .collect()
    }

    /// Replace a node's cached neighbors (refresh path; counts toward
    /// [`CacheStats::refreshes`]).
    pub fn put(&self, node: NodeId, neighbors: Vec<NodeId>) {
        self.put_at_distance(node, neighbors, 0);
    }

    /// [`Self::put`] for an entry `focal_distance` hops out from the focal
    /// set (prefetch path): farther entries score lower DOI and are evicted
    /// first.
    pub fn put_at_distance(&self, node: NodeId, mut neighbors: Vec<NodeId>, focal_distance: u8) {
        neighbors.truncate(self.k);
        self.install_locked(&mut self.write_state(), node, Arc::new(neighbors), focal_distance);
        self.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// Pin a resident entry (explicit interest — the DOI γ term). Returns
    /// whether the node was resident. Pinned + recently touched entries
    /// reach [`DoiTier::High`] and are admission-protected.
    pub fn pin(&self, node: NodeId) -> bool {
        let state = self.read_state();
        match state.map.get(&node) {
            Some(slot) => {
                slot.pinned.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// A resident entry's current DOI score, or `None` if not cached.
    /// Observability only: reads no counters, touches nothing.
    pub fn doi(&self, node: NodeId) -> Option<f32> {
        let state = self.read_state();
        let max_hits = self.max_hits.load(Ordering::Relaxed);
        let tick = self.tick.load(Ordering::Relaxed);
        state.map.get(&node).map(|s| s.score(tick, max_hits))
    }

    /// A resident entry's current DOI tier, or `None` if not cached.
    pub fn tier(&self, node: NodeId) -> Option<DoiTier> {
        self.doi(node).map(DoiTier::from_score)
    }

    /// Installs refused by DOI-gated admission (all residents High-tier).
    pub fn admissions_rejected(&self) -> u64 {
        self.admission_rejected.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.read_state().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters as a named [`CacheStats`] — the type the
    /// metrics registry ingests (`MetricsRegistry::ingest_cache`). Hit rate
    /// is derived there: `stats().hit_rate()`. Admission rejections are
    /// separate ([`Self::admissions_rejected`], mirrored to the registry as
    /// `cache.admission_rejected`).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Configuration for [`CacheRefresher`]: queue depth plus the retry side
/// queue that catches refreshes the full queue sheds.
#[derive(Clone, Copy, Debug)]
pub struct RefreshConfig {
    /// Main refresh queue depth (minimum 1).
    pub queue_capacity: usize,
    /// Retry side-queue depth; `0` disables retry entirely (a shed refresh
    /// is then lost until the next organic miss, but still counted).
    pub retry_capacity: usize,
    /// Base backoff before a shed refresh is retried.
    pub retry_backoff: Duration,
    /// Maximum deterministic per-node jitter added to the backoff, so a
    /// burst of shed refreshes does not retry as a thundering herd.
    pub retry_jitter: Duration,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        Self {
            queue_capacity: CacheRefresher::DEFAULT_QUEUE_CAPACITY,
            retry_capacity: 128,
            retry_backoff: Duration::from_millis(2),
            retry_jitter: Duration::from_millis(6),
        }
    }
}

/// SplitMix64 — the per-node jitter hash. Deterministic so tests (and
/// incident forensics) can reproduce a retry schedule exactly.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A refresh the full queue shed, parked until `due`.
type RetryEntry = (Instant, NodeId);

/// Background refresher: owns a worker thread that recomputes cache entries
/// "fully asynchronous from users' timely requests".
///
/// The queue is bounded: a full queue **sheds** the refresh request instead
/// of ever blocking the request path — but a shed refresh is not lost: it
/// parks on a bounded retry side queue (backoff + deterministic per-node
/// jitter) that the worker drains between arrivals, so the entry is
/// recovered without waiting for the next organic miss. A pending-node set
/// deduplicates requests, so N misses on one hot node cost one recompute,
/// not N. Counters: `serve.cache.refresh.dropped` (queue-full sheds),
/// `.retried` (retry attempts), `.recovered` (retries that landed).
pub struct CacheRefresher {
    tx: Option<Sender<NodeId>>,
    handle: Option<std::thread::JoinHandle<u64>>,
    pending: Arc<Mutex<HashSet<NodeId>>>,
    retry: Arc<Mutex<VecDeque<RetryEntry>>>,
    config: RefreshConfig,
    deduped: AtomicU64,
    dropped: Counter,
    retried: Counter,
    recovered: Counter,
}

impl CacheRefresher {
    /// Default refresh queue depth: deep enough that drops only happen under
    /// sustained overload, shallow enough to bound memory and staleness.
    pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

    /// How often the worker polls the retry side queue while idle.
    const RETRY_POLL: Duration = Duration::from_millis(1);

    /// Spawn a refresher that recomputes entries with `compute` and installs
    /// them into `cache`, with the default queue depth and retry policy,
    /// counting into a private registry.
    pub fn spawn(
        cache: Arc<NeighborCache>,
        compute: impl Fn(NodeId) -> Vec<NodeId> + Send + 'static,
    ) -> Self {
        Self::spawn_with(cache, RefreshConfig::default(), &MetricsRegistry::new(), compute)
    }

    /// [`Self::spawn`] with an explicit queue depth (minimum 1) and the
    /// default retry policy.
    pub fn with_queue_capacity(
        cache: Arc<NeighborCache>,
        queue_capacity: usize,
        compute: impl Fn(NodeId) -> Vec<NodeId> + Send + 'static,
    ) -> Self {
        Self::spawn_with(
            cache,
            RefreshConfig { queue_capacity, ..RefreshConfig::default() },
            &MetricsRegistry::new(),
            compute,
        )
    }

    /// Full-control constructor: explicit [`RefreshConfig`] and the registry
    /// the `serve.cache.refresh.*` counters report into.
    pub fn spawn_with(
        cache: Arc<NeighborCache>,
        config: RefreshConfig,
        registry: &MetricsRegistry,
        compute: impl Fn(NodeId) -> Vec<NodeId> + Send + 'static,
    ) -> Self {
        let (tx, rx) = bounded::<NodeId>(config.queue_capacity.max(1));
        let pending = Arc::new(Mutex::new(HashSet::new()));
        let retry = Arc::new(Mutex::new(VecDeque::<RetryEntry>::new()));
        let retried = registry.counter("serve.cache.refresh.retried");
        let recovered = registry.counter("serve.cache.refresh.recovered");
        let worker_pending = Arc::clone(&pending);
        let worker_retry = Arc::clone(&retry);
        let worker_retried = retried.clone();
        let worker_recovered = recovered.clone();
        let retry_enabled = config.retry_capacity > 0;
        let handle = std::thread::spawn(move || {
            let mut refreshed = 0u64;
            let refresh = |node: NodeId, refreshed: &mut u64| {
                cache.put(node, compute(node));
                // Clear pending only after the entry is installed, so a
                // request arriving mid-refresh dedups against the compute
                // that is already producing its answer.
                worker_pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&node);
                *refreshed += 1;
            };
            let drain_due = |refreshed: &mut u64| loop {
                let due = {
                    let mut q = worker_retry.lock().unwrap_or_else(PoisonError::into_inner);
                    let now = Instant::now();
                    let pos = q.iter().position(|(at, _)| *at <= now);
                    pos.and_then(|p| q.remove(p))
                };
                let Some((_, node)) = due else { break };
                worker_retried.inc();
                refresh(node, refreshed);
                worker_recovered.inc();
            };
            if retry_enabled {
                loop {
                    match rx.recv_timeout(Self::RETRY_POLL) {
                        Ok(node) => refresh(node, &mut refreshed),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    drain_due(&mut refreshed);
                }
                // Shutdown flush: a shed refresh must not be lost just
                // because the refresher is going down — retry everything
                // still parked, due or not.
                loop {
                    let next =
                        worker_retry.lock().unwrap_or_else(PoisonError::into_inner).pop_front();
                    let Some((_, node)) = next else { break };
                    worker_retried.inc();
                    refresh(node, &mut refreshed);
                    worker_recovered.inc();
                }
            } else {
                for node in rx {
                    refresh(node, &mut refreshed);
                }
            }
            refreshed
        });
        Self {
            tx: Some(tx),
            handle: Some(handle),
            pending,
            retry,
            config,
            deduped: AtomicU64::new(0),
            dropped: registry.counter("serve.cache.refresh.dropped"),
            retried,
            recovered,
        }
    }

    /// Enqueue a refresh; never blocks the request path. Returns whether the
    /// request was accepted onto the main queue: `false` means it was
    /// deduplicated against an already-pending refresh for the same node, or
    /// the queue was full — in which case the refresh is parked on the retry
    /// side queue (when enabled) rather than lost, and counted as a drop
    /// either way.
    pub fn request_refresh(&self, node: NodeId) -> bool {
        let Some(tx) = &self.tx else {
            return false;
        };
        {
            let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
            if !pending.insert(node) {
                drop(pending);
                self.deduped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        match tx.try_send(node) {
            Ok(()) => true,
            Err(_) => {
                self.dropped.inc();
                if self.config.retry_capacity > 0 {
                    let mut q = self.retry.lock().unwrap_or_else(PoisonError::into_inner);
                    if q.len() < self.config.retry_capacity {
                        let jitter_ns = self.config.retry_jitter.as_nanos() as u64;
                        let jitter = if jitter_ns == 0 {
                            Duration::ZERO
                        } else {
                            Duration::from_nanos(splitmix64(node as u64) % jitter_ns)
                        };
                        let due = Instant::now() + self.config.retry_backoff + jitter;
                        q.push_back((due, node));
                        // Keep the node in pending: duplicates arriving while
                        // it waits out its backoff still dedup.
                        return false;
                    }
                }
                // Retry disabled or side queue full: the refresh really is
                // lost until the next organic miss.
                self.pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&node);
                false
            }
        }
    }

    /// Requests deduplicated against an already-pending refresh.
    pub fn deduped(&self) -> u64 {
        self.deduped.load(Ordering::Relaxed)
    }

    /// Requests shed because the main queue was full
    /// (`serve.cache.refresh.dropped`) — parked for retry when the side
    /// queue has room and retry is enabled.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Retry attempts driven off the side queue
    /// (`serve.cache.refresh.retried`).
    pub fn retried(&self) -> u64 {
        self.retried.get()
    }

    /// Shed refreshes that eventually landed via retry
    /// (`serve.cache.refresh.recovered`).
    pub fn recovered(&self) -> u64 {
        self.recovered.get()
    }

    /// Drain the queue and stop; returns how many entries were refreshed
    /// (including recovered retries), or an error if the worker thread
    /// panicked (e.g. a panicking `compute` closure) instead of taking the
    /// caller down with it.
    pub fn shutdown(mut self) -> Result<u64, crate::error::ServingError> {
        drop(self.tx.take());
        match self.handle.take() {
            Some(h) => {
                h.join().map_err(|_| crate::error::ServingError::WorkerPanicked("cache refresher"))
            }
            None => Ok(0),
        }
    }
}

impl Drop for CacheRefresher {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Test-only surface. `with_write_lock` runs caller-supplied code while
/// holding the cache's write lock — exactly the shape L007 bans from the
/// request path — and exists solely so the poisoned-lock scenario can
/// panic inside the critical section. Keeping it under `#[cfg(test)]`
/// makes it impossible for production code to reach.
#[cfg(test)]
impl NeighborCache {
    pub fn with_write_lock<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.write_state();
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn miss_then_hit() {
        let cache = NeighborCache::new(30);
        assert!(cache.get(5).is_none());
        let v = cache.get_or_compute(5, || vec![1, 2, 3]);
        assert_eq!(*v, vec![1, 2, 3]);
        assert_eq!(*cache.get(5).expect("now cached"), vec![1, 2, 3]);
        let s = cache.stats();
        // get miss + get_or_compute miss + get hit
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn truncates_to_k() {
        let cache = NeighborCache::new(3);
        cache.put(1, (0..10).collect());
        assert_eq!(cache.get(1).expect("cached").len(), 3);
        let v = cache.get_or_compute(2, || (0..10).collect());
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn get_many_counts_like_sequential_gets() {
        let cache = NeighborCache::new(4);
        cache.put(1, vec![10]);
        cache.put(3, vec![30]);
        let found = cache.get_many(&[1, 2, 3, 2]);
        assert_eq!(found.len(), 4);
        assert_eq!(**found[0].as_ref().expect("hit"), vec![10]);
        assert!(found[1].is_none());
        assert_eq!(**found[2].as_ref().expect("hit"), vec![30]);
        assert!(found[3].is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
    }

    #[test]
    fn insert_many_truncates_and_installs() {
        let cache = NeighborCache::new(2);
        let arcs = cache.insert_many(vec![(1, vec![1, 2, 3, 4]), (2, vec![5])]);
        assert_eq!(*arcs[0], vec![1, 2]);
        assert_eq!(*arcs[1], vec![5]);
        assert_eq!(*cache.get(1).expect("cached"), vec![1, 2]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn hit_rate_tracks_queries() {
        let cache = NeighborCache::new(2);
        cache.put(1, vec![9]);
        for _ in 0..8 {
            let _ = cache.get(1);
        }
        let _ = cache.get(2); // miss
        assert!((cache.stats().hit_rate() - 8.0 / 9.0).abs() < 1e-9);
        assert_eq!(cache.stats().refreshes, 1, "put() is the refresh path");
    }

    #[test]
    fn capacity_bounds_len_under_churn() {
        let capacity = 16;
        let cache = NeighborCache::with_capacity(4, capacity);
        assert_eq!(cache.capacity(), capacity);
        for n in 0..500u32 {
            cache.put(n, vec![n]);
            assert!(
                cache.len() <= capacity,
                "len {} exceeds capacity after insert {n}",
                cache.len()
            );
        }
        assert_eq!(cache.len(), capacity);
        let s = cache.stats();
        assert_eq!(s.evictions, 500 - capacity as u64, "every insert past capacity evicts once");
        // The same accounting arrives through every insert path.
        cache.insert_many(vec![(1000, vec![1]), (1001, vec![2])]);
        let _ = cache.get_or_compute(1002, || vec![3]);
        assert_eq!(cache.len(), capacity);
        assert_eq!(cache.stats().evictions, 503 - capacity as u64);
    }

    #[test]
    fn hot_entries_survive_churn() {
        let cache = NeighborCache::with_capacity(4, 8);
        cache.put(999, vec![1, 2]);
        assert!(cache.get(999).is_some());
        for n in 0..200u32 {
            cache.put(n, vec![n]);
            // The hot node keeps getting hit between insertions, re-arming
            // its second chance every time the clock hand clears it.
            assert!(cache.get(999).is_some(), "hot entry evicted after {} cold inserts", n + 1);
        }
        assert!(cache.len() <= 8);
        // A node never touched again did not survive the churn.
        assert!(cache.get(0).is_none());
    }

    #[test]
    fn replacing_an_existing_entry_never_evicts() {
        let cache = NeighborCache::with_capacity(4, 2);
        cache.put(1, vec![1]);
        cache.put(2, vec![2]);
        for _ in 0..10 {
            cache.put(1, vec![7]);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0, "in-place replacement is not an eviction");
        assert_eq!(*cache.get(1).expect("replaced"), vec![7]);
        assert_eq!(*cache.get(2).expect("untouched"), vec![2]);
    }

    #[test]
    fn doi_score_orders_tiers_sanely() {
        // Fresh, hammered, pinned entry: the hottest possible score.
        let hot = doi_score(100, 100, 50, 50, 0, true);
        assert_eq!(DoiTier::from_score(hot), DoiTier::High);
        // Fresh unpinned entry with no history lands Medium — warm enough
        // to survive one sweep, cold enough that a scan churns itself.
        let fresh = doi_score(100, 100, 0, 50, 0, false);
        assert_eq!(DoiTier::from_score(fresh), DoiTier::Medium);
        // One tick of silence demotes a history-free entry to Low...
        let idle = doi_score(101, 100, 0, 50, 0, false);
        assert_eq!(DoiTier::from_score(idle), DoiTier::Low);
        // ...a few more and it is a Ghost; distance only pushes it deeper.
        let ghost = doi_score(103, 100, 0, 50, 0, false);
        assert_eq!(DoiTier::from_score(ghost), DoiTier::Ghost);
        assert_eq!(DoiTier::from_score(doi_score(200, 100, 0, 50, 4, false)), DoiTier::Ghost);
        // Distance strictly hurts; pinning strictly helps.
        assert!(doi_score(10, 10, 3, 9, 4, false) < doi_score(10, 10, 3, 9, 0, false));
        assert!(doi_score(10, 10, 3, 9, 0, true) > doi_score(10, 10, 3, 9, 0, false));
        // Degenerate inputs stay finite (the scorer must be panic-free and
        // NaN-free under the cache locks).
        assert!(doi_score(0, u64::MAX, u64::MAX, 0, u8::MAX, true).is_finite());
        assert!(doi_score(u64::MAX, 0, 0, u64::MAX, 0, false).is_finite());
    }

    #[test]
    fn tier_and_doi_report_resident_entries() {
        let cache = NeighborCache::with_capacity(4, 8);
        cache.put(1, vec![9]);
        assert!(cache.doi(1).is_some());
        assert_eq!(cache.tier(1), Some(DoiTier::Medium), "fresh entry starts Medium");
        assert_eq!(cache.tier(2), None);
        assert!(cache.pin(1));
        assert!(!cache.pin(2));
        let _ = cache.get(1);
        assert_eq!(cache.tier(1), Some(DoiTier::High), "pinned + touched is High");
    }

    #[test]
    fn prefetched_far_entries_evict_before_near_ones() {
        let cache = NeighborCache::with_capacity(4, 2);
        cache.put_at_distance(1, vec![1], DOI_MAX_FOCAL_DISTANCE);
        cache.put(2, vec![2]);
        // Touch both so reference bits are equal; only distance differs.
        let _ = cache.get(1);
        let _ = cache.get(2);
        cache.put(3, vec![3]);
        assert!(cache.doi(1).is_none(), "the far prefetched entry goes first");
        let _ = cache.get(2);
        assert!(cache.stats().hits >= 3);
    }

    #[test]
    fn adversarial_miss_stream_does_not_evict_high_tier_entries() {
        // The satellite criterion: a one-shot scan (every request a distinct
        // never-again node) must not flush High-tier entries. The pinned
        // eviction rate for High entries under this stream is zero.
        let capacity = 32;
        let cache = NeighborCache::with_capacity(4, capacity);
        let hot: Vec<NodeId> = (1_000_000..1_000_008).collect();
        for &n in &hot {
            cache.put(n, vec![n]);
            assert!(cache.pin(n));
        }
        // Touch the whole set after the installs so every entry is at age
        // zero with equal hit counts — pinned + fresh + hit scores High.
        for &n in &hot {
            assert!(cache.get(n).is_some());
        }
        for &n in &hot {
            assert_eq!(cache.tier(n), Some(DoiTier::High), "pinned hot entry must start High");
        }
        for n in 0..10_000u32 {
            let _ = cache.get_or_compute(n, || vec![n]);
            if n % 16 == 0 {
                // The hot set keeps being requested at a trickle, exactly
                // like a focal working set under a scan.
                for &h in &hot {
                    assert!(cache.get(h).is_some(), "High-tier entry evicted by scan at {n}");
                }
            }
        }
        for &n in &hot {
            // Touch first (the scan advanced the clock since the last
            // trickle), then check the tier at age zero.
            assert!(cache.get(n).is_some());
            assert_eq!(
                cache.tier(n),
                Some(DoiTier::High),
                "hot entry must still be High after the scan"
            );
        }
        assert!(cache.len() <= capacity);
        // The scan churned itself: evictions happened, just never to the
        // High tier.
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn admission_is_gated_when_every_resident_is_high_tier() {
        let cache = NeighborCache::with_capacity(4, 4);
        for n in 0..4u32 {
            cache.put(n, vec![n]);
            assert!(cache.pin(n));
        }
        // Touch after all installs so the whole set sits at age zero.
        for n in 0..4u32 {
            let _ = cache.get(n);
        }
        for n in 0..4u32 {
            assert_eq!(cache.tier(n), Some(DoiTier::High));
        }
        assert_eq!(cache.admissions_rejected(), 0);
        // A cold newcomer cannot displace a fully High-tier working set...
        cache.put(99, vec![99]);
        assert_eq!(cache.admissions_rejected(), 1, "install must be refused, not evict High");
        assert!(cache.doi(99).is_none(), "refused entry must not be resident");
        assert_eq!(cache.stats().evictions, 0);
        for n in 0..4u32 {
            // doi() observes without touching — survival, not a re-warm.
            assert!(cache.doi(n).is_some(), "High entry {n} must survive");
        }
        // ...but as the working set cools (recency decays with the logical
        // clock), residents drop below High and admission resumes — the
        // gate protects *current* interest, it is not a permanent lease.
        cache.put(100, vec![1]);
        assert!(cache.doi(100).is_some(), "admission must resume once residents cool");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.admissions_rejected(), 1, "a cooled set no longer refuses installs");
    }

    #[test]
    fn refresher_updates_entries_asynchronously() {
        let cache = Arc::new(NeighborCache::new(5));
        cache.put(7, vec![1]);
        let refresher =
            CacheRefresher::spawn(Arc::clone(&cache), |node| vec![node + 100, node + 101]);
        assert!(refresher.request_refresh(7));
        assert!(refresher.request_refresh(8));
        let done = refresher.shutdown().expect("refresher finished cleanly");
        assert_eq!(done, 2);
        assert_eq!(*cache.get(7).expect("refreshed"), vec![107, 108]);
        assert_eq!(*cache.get(8).expect("filled"), vec![108, 109]);
    }

    #[test]
    fn duplicate_refresh_requests_dedup_to_one_compute() {
        let cache = Arc::new(NeighborCache::new(5));
        // Gate the compute closure so the worker sits inside the first
        // refresh while the duplicates arrive.
        let (entered_tx, entered_rx) = unbounded::<NodeId>();
        let (gate_tx, gate_rx) = unbounded::<()>();
        let refresher = CacheRefresher::spawn(Arc::clone(&cache), move |n| {
            let _ = entered_tx.send(n);
            let _ = gate_rx.recv();
            vec![n + 1]
        });
        assert!(refresher.request_refresh(42), "first request must enqueue");
        assert_eq!(entered_rx.recv(), Ok(42), "worker must start the refresh");
        for _ in 0..99 {
            assert!(!refresher.request_refresh(42), "duplicates must dedup");
        }
        assert_eq!(refresher.deduped(), 99);
        let _ = gate_tx.send(());
        let done = refresher.shutdown().expect("clean shutdown");
        assert_eq!(done, 1, "100 requests for one node must compute once");
        assert_eq!(*cache.get(42).expect("refreshed"), vec![43]);
    }

    #[test]
    fn full_refresh_queue_drops_instead_of_blocking() {
        // Retry disabled: this pins the legacy drop-on-full contract — the
        // shed refresh is lost, but observably so (`dropped` counts it).
        let cache = Arc::new(NeighborCache::new(5));
        let (entered_tx, entered_rx) = unbounded::<NodeId>();
        let (gate_tx, gate_rx) = unbounded::<()>();
        let config = RefreshConfig { queue_capacity: 2, retry_capacity: 0, ..Default::default() };
        let registry = MetricsRegistry::new();
        let refresher =
            CacheRefresher::spawn_with(Arc::clone(&cache), config, &registry, move |n| {
                let _ = entered_tx.send(n);
                let _ = gate_rx.recv();
                vec![n]
            });
        assert!(refresher.request_refresh(1));
        // The worker is now blocked inside compute(1) and the queue is empty.
        assert_eq!(entered_rx.recv(), Ok(1));
        assert!(refresher.request_refresh(2));
        assert!(refresher.request_refresh(3));
        // Queue full: further requests return immediately as drops rather
        // than blocking the (simulated) request thread.
        assert!(!refresher.request_refresh(4));
        assert!(!refresher.request_refresh(5));
        assert_eq!(refresher.dropped(), 2);
        // Drops are drops, not dedups: the pending entry was cleared, so a
        // dropped node could be re-requested later.
        assert_eq!(refresher.deduped(), 0);
        // With retry disabled, nothing is ever retried or recovered.
        assert_eq!(refresher.retried(), 0);
        assert_eq!(refresher.recovered(), 0);
        for _ in 0..3 {
            let _ = gate_tx.send(());
        }
        let done = refresher.shutdown().expect("clean shutdown");
        assert_eq!(done, 3);
        assert!(cache.get(4).is_none(), "with retry disabled a dropped request must not refresh");
    }

    #[test]
    fn dropped_refresh_is_recovered_by_retry_without_an_organic_miss() {
        // The tentpole regression: a refresh the full queue sheds must land
        // via the retry side queue, with no request-path miss driving it.
        let cache = Arc::new(NeighborCache::new(5));
        let (entered_tx, entered_rx) = unbounded::<NodeId>();
        let (gate_tx, gate_rx) = unbounded::<()>();
        let config = RefreshConfig {
            queue_capacity: 1,
            retry_capacity: 8,
            retry_backoff: Duration::from_millis(1),
            retry_jitter: Duration::from_millis(2),
        };
        let registry = MetricsRegistry::new();
        let refresher =
            CacheRefresher::spawn_with(Arc::clone(&cache), config, &registry, move |n| {
                let _ = entered_tx.send(n);
                let _ = gate_rx.recv();
                vec![n + 1]
            });
        assert!(refresher.request_refresh(1));
        assert_eq!(entered_rx.recv(), Ok(1), "worker must be inside compute(1)");
        assert!(refresher.request_refresh(2), "fills the 1-deep queue");
        assert!(!refresher.request_refresh(3), "queue full: shed to the retry side queue");
        assert_eq!(refresher.dropped(), 1);
        // The parked node still dedups while it waits out its backoff.
        assert!(!refresher.request_refresh(3));
        assert_eq!(refresher.deduped(), 1);
        for _ in 0..3 {
            let _ = gate_tx.send(());
        }
        // The retry lands without any cache.get() driving it.
        let waited = Instant::now();
        while refresher.recovered() < 1 {
            assert!(waited.elapsed() < Duration::from_secs(10), "retry never recovered");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(refresher.retried(), 1);
        assert_eq!(refresher.recovered(), 1);
        assert_eq!(cache.stats().misses, 0, "recovery must not ride on an organic miss");
        assert_eq!(*cache.get(3).expect("recovered entry resident"), vec![4]);
        // The counters mirror into the registry under their wire names.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.cache.refresh.dropped"), Some(1));
        assert_eq!(snap.counter("serve.cache.refresh.retried"), Some(1));
        assert_eq!(snap.counter("serve.cache.refresh.recovered"), Some(1));
        let done = refresher.shutdown().expect("clean shutdown");
        assert_eq!(done, 3, "all three refreshes landed exactly once");
    }

    #[test]
    fn shutdown_flushes_parked_retries() {
        // Even a retry whose backoff has not elapsed is driven at shutdown:
        // "parked" never decays into "lost".
        let cache = Arc::new(NeighborCache::new(5));
        let (entered_tx, entered_rx) = unbounded::<NodeId>();
        let (gate_tx, gate_rx) = unbounded::<()>();
        let config = RefreshConfig {
            queue_capacity: 1,
            retry_capacity: 8,
            retry_backoff: Duration::from_secs(3600),
            retry_jitter: Duration::ZERO,
        };
        let registry = MetricsRegistry::new();
        let refresher =
            CacheRefresher::spawn_with(Arc::clone(&cache), config, &registry, move |n| {
                let _ = entered_tx.send(n);
                let _ = gate_rx.recv();
                vec![n]
            });
        assert!(refresher.request_refresh(1));
        assert_eq!(entered_rx.recv(), Ok(1));
        assert!(refresher.request_refresh(2));
        assert!(!refresher.request_refresh(3), "shed to retry with an hour of backoff");
        assert_eq!(refresher.dropped(), 1);
        for _ in 0..3 {
            let _ = gate_tx.send(());
        }
        let done = refresher.shutdown().expect("clean shutdown");
        assert_eq!(done, 3, "shutdown must flush the parked retry");
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn panicking_refresher_reports_worker_panicked() {
        let cache = Arc::new(NeighborCache::new(5));
        let refresher = CacheRefresher::spawn(Arc::clone(&cache), |_| panic!("compute blew up"));
        refresher.request_refresh(1);
        let err = refresher.shutdown().expect_err("panicked worker must surface as an error");
        assert!(matches!(err, crate::error::ServingError::WorkerPanicked(_)));
    }

    #[test]
    fn poisoned_lock_does_not_wedge_subsequent_callers() {
        // A thread that panics while holding the state lock poisons a std
        // RwLock. The cache must recover (the map itself is never left
        // mid-mutation) instead of cascading that one panic into every
        // later request thread.
        let cache = Arc::new(NeighborCache::new(4));
        cache.put(1, vec![9]);
        let poisoner = Arc::clone(&cache);
        let panicked = std::thread::spawn(move || {
            poisoner.with_write_lock(|| {
                panic!("simulated request-thread panic while holding the cache lock")
            })
        })
        .join();
        assert!(panicked.is_err(), "poisoner thread must have panicked");
        // Reads, batched reads, writes and batched writes all still work.
        let found = cache.get_many(&[1, 2]);
        assert_eq!(**found[0].as_ref().expect("pre-poison entry survives"), vec![9]);
        assert!(found[1].is_none());
        cache.insert_many(vec![(2, vec![5, 6])]);
        assert_eq!(*cache.get(2).expect("insert after poison"), vec![5, 6]);
        cache.put(3, vec![7]);
        assert_eq!(*cache.get_or_compute(4, || vec![8]), vec![8]);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let cache = Arc::new(NeighborCache::with_capacity(4, 32));
        std::thread::scope(|scope| {
            let c = Arc::clone(&cache);
            scope.spawn(move || {
                for n in 0..500u32 {
                    c.put(n % 50, vec![n]);
                }
            });
            for _ in 0..4 {
                let c = Arc::clone(&cache);
                scope.spawn(move || {
                    for n in 0..500u32 {
                        let _ = c.get(n % 50);
                    }
                });
            }
        });
        assert!(cache.len() <= 32, "capacity bound must hold under concurrency");
    }
}
