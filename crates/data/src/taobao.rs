//! The Taobao-like behavior-log generator and graph construction.
//!
//! Generation pipeline (all driven by one seed):
//! 1. Draw `num_categories` unit prototype vectors.
//! 2. Items: category assignment (Zipf-ish skew), vector = normalized
//!    prototype + noise, Table-I fields (id bucket / category / brand / shop
//!    / term bucket) and title terms from the category vocabulary.
//! 3. Queries: category + vector + terms, like items but narrower noise.
//! 4. Users: a sparse mixture over categories; base vector = normalized
//!    mixture of prototypes; Table-I fields (id bucket / gender / level).
//! 5. Sessions: user draws an intent category from their mixture, picks a
//!    matching query, sees a slate of impressions (intent-biased + random),
//!    clicks by the ground-truth logistic model on intent·item.
//! 6. Graph: §II construction (session rule + MinHash similarity edges).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zoomer_graph::minhash::{SimilarityConfig, SimilarityEdgeBuilder};
use zoomer_graph::{GraphBuilder, HeteroGraph, NodeId, NodeType};
use zoomer_tensor::rng::{random_unit_vec, standard_normal};
use zoomer_tensor::{cosine_similarity, l2_norm, seeded_rng, sigmoid};

use crate::config::TaobaoConfig;
use crate::dataset::RetrievalExample;

/// One simulated search session.
#[derive(Clone, Debug)]
pub struct SessionLog {
    pub user: NodeId,
    pub query: NodeId,
    /// Ground-truth session intent vector (hidden from models; used by the
    /// A/B simulator and the motivation harnesses).
    pub intent: Vec<f32>,
    /// The slate shown, with click outcomes, in display order.
    pub impressions: Vec<(NodeId, bool)>,
    /// Clicked items in click order (subsequence of the slate).
    pub clicked: Vec<NodeId>,
    /// Monotone per-dataset timestamp (session index).
    pub timestamp: u64,
}

/// A fully generated dataset: graph + logs + ground truth.
pub struct TaobaoData {
    pub config: TaobaoConfig,
    pub graph: HeteroGraph,
    pub logs: Vec<SessionLog>,
    /// Prototype vector per category.
    pub category_vectors: Vec<Vec<f32>>,
    /// Per-user interest mixture: `(category, weight)` pairs.
    pub user_interests: Vec<Vec<(usize, f32)>>,
    /// Per-user persistent personal direction per interest category,
    /// aligned with `user_interests`. Queries never reveal this; it can only
    /// be recovered from the user's click history.
    pub user_personal: Vec<Vec<(usize, Vec<f32>)>>,
    /// Category of each query / item (indexed by *type-local* index).
    pub query_categories: Vec<usize>,
    pub item_categories: Vec<usize>,
}

impl TaobaoData {
    /// Generate a dataset from the config. Deterministic in `config.seed`.
    pub fn generate(config: TaobaoConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let d = config.latent_dim;

        // 1. Category prototypes.
        let category_vectors: Vec<Vec<f32>> =
            (0..config.num_categories).map(|_| random_unit_vec(&mut rng, d)).collect();

        let mut builder = GraphBuilder::new(d);

        // 4. Users first (node ids [0, num_users)).
        let mut user_interests = Vec::with_capacity(config.num_users);
        let mut user_personal: Vec<Vec<(usize, Vec<f32>)>> = Vec::with_capacity(config.num_users);
        for uid in 0..config.num_users {
            let mut cats: Vec<usize> = (0..config.num_categories).collect();
            cats.shuffle(&mut rng);
            cats.truncate(config.interests_per_user.min(config.num_categories));
            let raw: Vec<f32> = cats.iter().map(|_| rng.gen_range(0.5..1.5)).collect();
            let total: f32 = raw.iter().sum();
            let mixture: Vec<(usize, f32)> =
                cats.iter().zip(raw.iter()).map(|(&c, &w)| (c, w / total)).collect();
            let mut base = vec![0.0f32; d];
            for &(c, w) in &mixture {
                for (b, &cv) in base.iter_mut().zip(&category_vectors[c]) {
                    *b += w * cv;
                }
            }
            let n = l2_norm(&base).max(1e-6);
            for b in &mut base {
                *b /= n;
            }
            // The ID field is bucketed coarsely (64 users per bucket at the
            // million tier): at web scale per-ID embeddings are mostly cold,
            // so models must generalize through behavior — the regime where
            // ROI quality matters. Fine-grained buckets would let every
            // model memorize (u,q,i) triples and wash out the comparison.
            let fields = vec![
                (uid % 32) as u32,      // coarse id bucket
                rng.gen_range(0..2u32), // gender
                rng.gen_range(0..6u32), // membership level
            ];
            builder.add_node(NodeType::User, fields, vec![], &base);
            // Persistent personal direction per interest category: the
            // within-category taste only observable through click history.
            // Directions are centered per user (they sum to ≈0), modeling
            // the paper's observation that cross-category experience is
            // uninformative ("purchasing household items may have less
            // relation with how she chooses luxuries"): pooling a user's
            // history *across* categories cancels the per-category taste,
            // while focal-selected same-category history preserves it.
            let mut dirs: Vec<Vec<f32>> =
                mixture.iter().map(|_| random_unit_vec(&mut rng, d)).collect();
            if dirs.len() > 1 {
                let k = dirs.len() as f32;
                let mean: Vec<f32> =
                    (0..d).map(|j| dirs.iter().map(|v| v[j]).sum::<f32>() / k).collect();
                for v in &mut dirs {
                    for (x, &m) in v.iter_mut().zip(&mean) {
                        *x -= m;
                    }
                    let n = l2_norm(v).max(1e-6);
                    for x in v.iter_mut() {
                        *x /= n;
                    }
                }
            }
            let personal: Vec<(usize, Vec<f32>)> =
                mixture.iter().zip(dirs).map(|(&(c, _), dir)| (c, dir)).collect();
            user_interests.push(mixture);
            user_personal.push(personal);
        }

        // Category vocabularies for title terms.
        let vocab: Vec<Vec<u32>> = (0..config.num_categories)
            .map(|c| {
                let lo = (c * config.terms_per_category) as u32;
                (lo..lo + config.terms_per_category as u32).collect()
            })
            .collect();
        let draw_terms = |rng: &mut ChaCha8Rng, cat: usize, k: usize| -> Vec<u32> {
            let mut t: Vec<u32> = Vec::with_capacity(k);
            for _ in 0..k {
                t.push(vocab[cat][rng.gen_range(0..vocab[cat].len())]);
            }
            t.sort_unstable();
            t.dedup();
            t
        };

        // 3. Queries (node ids [num_users, num_users + num_queries)).
        let mut query_categories = Vec::with_capacity(config.num_queries);
        for qid in 0..config.num_queries {
            let cat = qid % config.num_categories; // every category covered
            let mut v = category_vectors[cat].clone();
            for x in &mut v {
                *x += 0.5 * config.intent_noise * standard_normal(&mut rng);
            }
            let n = l2_norm(&v).max(1e-6);
            for x in &mut v {
                *x /= n;
            }
            let terms = draw_terms(&mut rng, cat, config.terms_per_title);
            let fields = vec![cat as u32, *terms.first().unwrap_or(&0)];
            builder.add_node(NodeType::Query, fields, terms, &v);
            query_categories.push(cat);
        }

        // 2. Items (node ids [num_users + num_queries, ..)).
        let mut item_categories = Vec::with_capacity(config.num_items);
        for iid in 0..config.num_items {
            // Zipf-ish skew: low-index categories are more popular.
            let cat = zipf_category(&mut rng, config.num_categories);
            let mut v = category_vectors[cat].clone();
            for x in &mut v {
                *x += config.item_noise * standard_normal(&mut rng);
            }
            let n = l2_norm(&v).max(1e-6);
            for x in &mut v {
                *x /= n;
            }
            let terms = draw_terms(&mut rng, cat, config.terms_per_title);
            let fields = vec![
                (iid % 32) as u32, // coarse id bucket (see user note above)
                cat as u32,
                rng.gen_range(0..config.num_brands as u32),
                rng.gen_range(0..config.num_shops as u32),
                *terms.first().unwrap_or(&0),
            ];
            builder.add_node(NodeType::Item, fields, terms, &v);
            item_categories.push(cat);
        }

        let user_node = |u: usize| u as NodeId;
        let query_node = |q: usize| (config.num_users + q) as NodeId;
        let item_node = |i: usize| (config.num_users + config.num_queries + i) as NodeId;

        // Pre-index queries and items by category for fast session assembly.
        let mut queries_by_cat: Vec<Vec<usize>> = vec![Vec::new(); config.num_categories];
        for (q, &c) in query_categories.iter().enumerate() {
            queries_by_cat[c].push(q);
        }
        let mut items_by_cat: Vec<Vec<usize>> = vec![Vec::new(); config.num_categories];
        for (i, &c) in item_categories.iter().enumerate() {
            items_by_cat[c].push(i);
        }

        // 5. Sessions.
        let mut logs = Vec::with_capacity(config.num_sessions);
        for ts in 0..config.num_sessions {
            let u = rng.gen_range(0..config.num_users);
            // Draw intent category from the user's mixture.
            let mixture = &user_interests[u];
            let mut pick = rng.gen::<f32>();
            let mut cat = mixture[mixture.len() - 1].0;
            for &(c, w) in mixture {
                if pick < w {
                    cat = c;
                    break;
                }
                pick -= w;
            }
            // Session intent: prototype + the user's persistent personal
            // direction for this category + fresh noise (dynamic interests).
            let mut intent = category_vectors[cat].clone();
            if let Some((_, p)) = user_personal[u].iter().find(|(c, _)| *c == cat) {
                for (x, &pv) in intent.iter_mut().zip(p) {
                    *x += config.personal_weight * pv;
                }
            }
            for x in &mut intent {
                *x += config.intent_noise * standard_normal(&mut rng);
            }
            let n = l2_norm(&intent).max(1e-6);
            for x in &mut intent {
                *x /= n;
            }
            // Query of the intent category.
            let q_pool = &queries_by_cat[cat];
            if q_pool.is_empty() {
                continue;
            }
            let q = q_pool[rng.gen_range(0..q_pool.len())];

            // Impressions: ~70% intent-category items, rest random.
            let mut impressions = Vec::with_capacity(config.impressions_per_session);
            let mut clicked = Vec::new();
            for s in 0..config.impressions_per_session {
                let i = if s * 10 < config.impressions_per_session * 7
                    && !items_by_cat[cat].is_empty()
                {
                    items_by_cat[cat][rng.gen_range(0..items_by_cat[cat].len())]
                } else {
                    rng.gen_range(0..config.num_items)
                };
                let node = item_node(i);
                let p = click_probability(&config, &intent, builder.features().dense(node));
                let did_click = rng.gen::<f32>() < p;
                impressions.push((node, did_click));
                if did_click {
                    clicked.push(node);
                }
            }
            logs.push(SessionLog {
                user: user_node(u),
                query: query_node(q),
                intent,
                impressions,
                clicked,
                timestamp: ts as u64,
            });
        }

        // 6. Graph construction per §II.
        for log in &logs {
            builder.add_search_session(log.user, log.query, &log.clicked);
        }
        if config.similarity_edges {
            let sim = SimilarityEdgeBuilder::new(
                SimilarityConfig { threshold: 0.4, ..Default::default() },
                config.seed ^ 0x5151,
            );
            sim.add_edges(&mut builder, &[NodeType::Query, NodeType::Item]);
        }
        builder.dedup_edges();
        let graph = builder.finish();

        Self {
            config,
            graph,
            logs,
            category_vectors,
            user_interests,
            user_personal,
            query_categories,
            item_categories,
        }
    }

    /// Rebuild the interaction graph from only the first `sessions` logs —
    /// the paper's time-window graphs (1-hour vs 1-day) share one node
    /// universe but differ in how much behavior they have seen.
    /// Similarity edges are re-derived from content, as §II prescribes.
    pub fn graph_for_window(&self, sessions: usize) -> HeteroGraph {
        let d = self.graph.features().dense_dim();
        let mut b = GraphBuilder::new(d);
        for n in 0..self.graph.num_nodes() as NodeId {
            b.add_node(
                self.graph.node_type(n),
                self.graph.fields(n).to_vec(),
                self.graph.features().terms(n).to_vec(),
                self.graph.dense_feature(n),
            );
        }
        for log in self.logs.iter().take(sessions) {
            b.add_search_session(log.user, log.query, &log.clicked);
        }
        if self.config.similarity_edges {
            let sim = SimilarityEdgeBuilder::new(
                SimilarityConfig { threshold: 0.4, ..Default::default() },
                self.config.seed ^ 0x5151,
            );
            sim.add_edges(&mut b, &[NodeType::Query, NodeType::Item]);
        }
        b.dedup_edges();
        b.finish()
    }

    /// First item node id (items occupy the tail of the id space).
    pub fn first_item_node(&self) -> NodeId {
        (self.config.num_users + self.config.num_queries) as NodeId
    }

    /// All item node ids.
    pub fn item_nodes(&self) -> Vec<NodeId> {
        let first = self.first_item_node();
        (first..first + self.config.num_items as NodeId).collect()
    }

    /// Ground-truth click probability for an intent vector and an item node.
    pub fn ground_truth_ctr(&self, intent: &[f32], item: NodeId) -> f32 {
        click_probability(&self.config, intent, self.graph.dense_feature(item))
    }

    /// CTR-prediction examples from the impression logs: one example per
    /// impression (clicked → label 1).
    pub fn ctr_examples(&self) -> Vec<RetrievalExample> {
        self.logs
            .iter()
            .flat_map(|log| {
                log.impressions.iter().map(move |&(item, clicked)| RetrievalExample {
                    user: log.user,
                    query: log.query,
                    item,
                    label: if clicked { 1.0 } else { 0.0 },
                })
            })
            .collect()
    }

    /// Fig 4(b) measurement: cosine similarities between successive queries
    /// posed by the same user, in timestamp order.
    pub fn successive_query_similarities(&self) -> Vec<f32> {
        use std::collections::HashMap;
        let mut last_query: HashMap<NodeId, NodeId> = HashMap::new();
        let mut sims = Vec::new();
        for log in &self.logs {
            if let Some(&prev) = last_query.get(&log.user) {
                if prev != log.query {
                    sims.push(cosine_similarity(
                        self.graph.dense_feature(prev),
                        self.graph.dense_feature(log.query),
                    ));
                }
            }
            last_query.insert(log.user, log.query);
        }
        sims
    }

    /// Fig 4(c) measurement: for `num_focals` randomly chosen (user, query)
    /// focal pairs, the cosine similarities between the focal vector (sum of
    /// user and query features, as §V-B prescribes) and every item the user
    /// ever clicked.
    pub fn focal_local_similarities(&self, num_focals: usize, seed: u64) -> Vec<Vec<f32>> {
        self.focal_local_similarities_window(num_focals, self.logs.len(), seed)
    }

    /// Fig 4(c) on a time window: only the first `sessions` logs count as
    /// the user's observed local graph (the paper's 1-hour vs 1-day split).
    pub fn focal_local_similarities_window(
        &self,
        num_focals: usize,
        sessions: usize,
        seed: u64,
    ) -> Vec<Vec<f32>> {
        use std::collections::HashMap;
        let mut rng = seeded_rng(seed);
        let mut by_user: HashMap<NodeId, (Vec<NodeId>, Vec<NodeId>)> = HashMap::new();
        for log in self.logs.iter().take(sessions) {
            let entry = by_user.entry(log.user).or_default();
            entry.0.push(log.query);
            entry.1.extend_from_slice(&log.clicked);
        }
        let mut users: Vec<NodeId> =
            by_user.iter().filter(|(_, (_, items))| !items.is_empty()).map(|(&u, _)| u).collect();
        users.sort_unstable();
        users.shuffle(&mut rng);
        users.truncate(num_focals);
        users
            .iter()
            .map(|&u| {
                let (queries, items) = &by_user[&u];
                let q = queries[rng.gen_range(0..queries.len())];
                let focal: Vec<f32> = self
                    .graph
                    .dense_feature(u)
                    .iter()
                    .zip(self.graph.dense_feature(q))
                    .map(|(&a, &b)| a + b)
                    .collect();
                items
                    .iter()
                    .map(|&i| cosine_similarity(&focal, self.graph.dense_feature(i)))
                    .collect()
            })
            .collect()
    }
}

/// Ground-truth logistic click model on intent·item affinity.
fn click_probability(config: &TaobaoConfig, intent: &[f32], item_vec: &[f32]) -> f32 {
    let affinity: f32 = intent.iter().zip(item_vec).map(|(&a, &b)| a * b).sum();
    sigmoid(config.click_steepness * affinity + config.click_offset)
}

/// Zipf-ish categorical draw: category c with weight ∝ 1/(c+1).
fn zipf_category(rng: &mut impl Rng, n: usize) -> usize {
    let total: f64 = (0..n).map(|c| 1.0 / (c + 1) as f64).sum();
    let mut pick = rng.gen::<f64>() * total;
    for c in 0..n {
        let w = 1.0 / (c + 1) as f64;
        if pick < w {
            return c;
        }
        pick -= w;
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_graph::EdgeType;

    fn tiny() -> TaobaoData {
        TaobaoData::generate(TaobaoConfig::tiny(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.logs.len(), b.logs.len());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for (la, lb) in a.logs.iter().zip(&b.logs) {
            assert_eq!(la.user, lb.user);
            assert_eq!(la.query, lb.query);
            assert_eq!(la.clicked, lb.clicked);
        }
    }

    #[test]
    fn node_layout_users_queries_items() {
        let d = tiny();
        let c = &d.config;
        assert_eq!(d.graph.node_type(0), NodeType::User);
        assert_eq!(d.graph.node_type(c.num_users as NodeId), NodeType::Query);
        assert_eq!(d.graph.node_type(d.first_item_node()), NodeType::Item);
        assert_eq!(d.graph.num_nodes(), c.num_users + c.num_queries + c.num_items);
    }

    #[test]
    fn table1_field_counts() {
        let d = tiny();
        assert_eq!(d.graph.fields(0).len(), 3); // user: id, gender, level
        assert_eq!(d.graph.fields(d.config.num_users as NodeId).len(), 2); // query
        assert_eq!(d.graph.fields(d.first_item_node()).len(), 5); // item
    }

    #[test]
    fn graph_has_all_edge_categories() {
        let d = tiny();
        assert!(d.graph.num_edges_of(EdgeType::Click) > 0);
        assert!(d.graph.num_edges_of(EdgeType::Session) > 0);
        assert!(d.graph.num_edges_of(EdgeType::Similarity) > 0);
    }

    #[test]
    fn clicks_follow_intent_affinity() {
        // Clicked items should be substantially more intent-aligned than
        // non-clicked impressions on average.
        let d = tiny();
        let (mut pos, mut neg) = (Vec::new(), Vec::new());
        for log in &d.logs {
            for &(item, clicked) in &log.impressions {
                let sim = cosine_similarity(&log.intent, d.graph.dense_feature(item));
                if clicked {
                    pos.push(sim);
                } else {
                    neg.push(sim);
                }
            }
        }
        assert!(!pos.is_empty() && !neg.is_empty());
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&pos) > mean(&neg) + 0.15, "pos {} vs neg {}", mean(&pos), mean(&neg));
    }

    #[test]
    fn ctr_examples_match_impressions() {
        let d = tiny();
        let examples = d.ctr_examples();
        let total: usize = d.logs.iter().map(|l| l.impressions.len()).sum();
        assert_eq!(examples.len(), total);
        let positives = examples.iter().filter(|e| e.label > 0.5).count();
        let clicks: usize = d.logs.iter().map(|l| l.clicked.len()).sum();
        assert_eq!(positives, clicks);
        // The generator should produce a non-degenerate class balance.
        assert!(positives > 0 && positives < total);
    }

    #[test]
    fn successive_queries_have_low_similarity() {
        // Fig 4(b): users hop between interest categories, so successive
        // queries should frequently be dissimilar.
        let d = TaobaoData::generate(TaobaoConfig::tiny(13));
        let sims = d.successive_query_similarities();
        assert!(sims.len() > 20);
        let below_half = sims.iter().filter(|&&s| s < 0.5).count();
        assert!(
            below_half as f64 > 0.4 * sims.len() as f64,
            "successive queries too similar: {below_half}/{}",
            sims.len()
        );
    }

    #[test]
    fn focal_local_similarities_are_broadly_low() {
        // Fig 4(c): most of a user's click history is weakly related to any
        // single focal pair.
        let d = tiny();
        let per_focal = d.focal_local_similarities(10, 99);
        assert!(!per_focal.is_empty());
        let all: Vec<f32> = per_focal.into_iter().flatten().collect();
        let below = all.iter().filter(|&&s| s < 0.6).count();
        assert!(below as f64 > 0.3 * all.len() as f64);
    }

    #[test]
    fn ground_truth_ctr_is_probability() {
        let d = tiny();
        let item = d.first_item_node();
        for log in d.logs.iter().take(20) {
            let p = d.ground_truth_ctr(&log.intent, item);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn window_graph_shares_nodes_but_has_fewer_edges() {
        let d = tiny();
        let half = d.graph_for_window(d.logs.len() / 2);
        assert_eq!(half.num_nodes(), d.graph.num_nodes());
        for n in (0..half.num_nodes() as NodeId).step_by(13) {
            assert_eq!(half.node_type(n), d.graph.node_type(n));
            assert_eq!(half.dense_feature(n), d.graph.dense_feature(n));
        }
        assert!(
            half.num_edges_of(EdgeType::Click) < d.graph.num_edges_of(EdgeType::Click),
            "half the sessions must give fewer click edges"
        );
        // The full window reproduces the full graph's click structure.
        let full = d.graph_for_window(d.logs.len());
        assert_eq!(full.num_edges_of(EdgeType::Click), d.graph.num_edges_of(EdgeType::Click));
    }

    #[test]
    fn window_zero_sessions_has_interactionless_graph() {
        let d = tiny();
        let empty = d.graph_for_window(0);
        assert_eq!(empty.num_edges_of(EdgeType::Click), 0);
        assert_eq!(empty.num_edges_of(EdgeType::Session), 0);
        // Similarity edges are content-based, so they survive.
        assert!(empty.num_edges_of(EdgeType::Similarity) > 0);
    }

    #[test]
    fn windowed_focal_similarities_subset_full() {
        let d = tiny();
        let full = d.focal_local_similarities(10, 3);
        let windowed = d.focal_local_similarities_window(10, d.logs.len(), 3);
        // Same window → identical measurement.
        assert_eq!(full.len(), windowed.len());
        for (a, b) in full.iter().zip(&windowed) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn zipf_prefers_low_categories() {
        let mut rng = seeded_rng(3);
        let mut counts = vec![0usize; 5];
        for _ in 0..10_000 {
            counts[zipf_category(&mut rng, 5)] += 1;
        }
        assert!(counts[0] > counts[4] * 2, "{counts:?}");
    }
}
