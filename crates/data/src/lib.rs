//! Synthetic dataset generators for the Zoomer reproduction.
//!
//! The paper evaluates on Taobao production logs (1-hour / 12-hour / 7-day
//! graphs, up to 1.2 B nodes) and MovieLens-25M — neither of which is
//! available here. This crate substitutes generative models that plant the
//! *phenomena* Zoomer exploits, so the paper's comparisons remain meaningful:
//!
//! - **Latent intent structure.** Items belong to categories with prototype
//!   vectors; users hold per-user mixtures over categories; every search
//!   session draws a fresh *intent* from the user's mixture (→ the paper's
//!   "dynamic focal interests", Fig 4(b)).
//! - **Clicks from intent·item affinity.** Ground-truth click probability is
//!   a logistic function of the intent–item dot product, so only the small
//!   intent-aligned region of a user's history is predictive (→ "small
//!   relevant area", Fig 4(c)) and focal-aware models genuinely outperform
//!   focal-blind ones.
//! - **Heterogeneous schema.** User / query / item nodes with the Table I
//!   categorical fields, click + session + MinHash-similarity edges built by
//!   the exact §II construction rules.
//!
//! Three scale tiers keep the paper's relative size ratios so scaling-shape
//! experiments (Fig 10) carry over.

pub mod config;
pub mod dataset;
pub mod movielens;
pub mod taobao;

pub use config::{ScaleTier, TaobaoConfig, TIER_SCALE_ENV};
pub use dataset::{split_examples, with_sampled_negatives, RetrievalExample, TrainTestSplit};
pub use movielens::{MovieLensConfig, MovieLensData};
pub use taobao::{SessionLog, TaobaoData};
