//! MovieLens-like tri-partite dataset generator.
//!
//! The paper's construction (§VII-A): a heterogeneous graph with movie, user
//! and tag nodes; user–movie edges from ratings; movie–tag edges from
//! relevance scores, keeping each movie's top-5 tags; model input is a
//! (user, tag, movie) triple with a binary interaction label; 80/20 split.
//!
//! MovieLens-25M itself is unavailable offline, so this generator reproduces
//! the schema and a genre-structured interaction signal: movies and tags
//! carry genre prototypes, users carry genre preference mixtures, and
//! interactions follow a logistic model on preference·movie affinity.

use rand::seq::SliceRandom;
use rand::Rng;
use zoomer_graph::{EdgeType, GraphBuilder, HeteroGraph, NodeId, NodeType};
use zoomer_tensor::rng::{random_unit_vec, standard_normal};
use zoomer_tensor::{l2_norm, seeded_rng, sigmoid};

use crate::dataset::RetrievalExample;

/// Generator parameters (ratios mirror MovieLens-25M: many users/movies, few
/// tags).
#[derive(Clone, Debug)]
pub struct MovieLensConfig {
    pub seed: u64,
    pub latent_dim: usize,
    pub num_genres: usize,
    pub num_users: usize,
    pub num_movies: usize,
    pub num_tags: usize,
    /// Ratings drawn per user.
    pub ratings_per_user: usize,
    /// Tags linked per movie (paper: top-5 by relevance).
    pub tags_per_movie: usize,
    /// Logistic steepness of the interaction model.
    pub steepness: f32,
}

impl Default for MovieLensConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            latent_dim: 16,
            num_genres: 18,
            num_users: 1_200,
            num_movies: 1_500,
            num_tags: 60,
            ratings_per_user: 24,
            tags_per_movie: 5,
            steepness: 5.0,
        }
    }
}

impl MovieLensConfig {
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            num_users: 60,
            num_movies: 80,
            num_tags: 12,
            num_genres: 6,
            ratings_per_user: 10,
            ..Default::default()
        }
    }
}

/// Generated MovieLens-like data: graph + (user, tag, movie) examples.
pub struct MovieLensData {
    pub config: MovieLensConfig,
    pub graph: HeteroGraph,
    /// `(user, tag, movie, label)` triples encoded as [`RetrievalExample`]s
    /// with `query` holding the tag node.
    pub examples: Vec<RetrievalExample>,
}

impl MovieLensData {
    pub fn generate(config: MovieLensConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let d = config.latent_dim;
        let genres: Vec<Vec<f32>> =
            (0..config.num_genres).map(|_| random_unit_vec(&mut rng, d)).collect();

        let mut b = GraphBuilder::new(d);

        // Users: genre-preference mixtures. Node ids [0, num_users).
        let mut user_prefs: Vec<Vec<f32>> = Vec::with_capacity(config.num_users);
        for uid in 0..config.num_users {
            let k = 2.min(config.num_genres);
            let mut gs: Vec<usize> = (0..config.num_genres).collect();
            gs.shuffle(&mut rng);
            let mut v = vec![0.0f32; d];
            for &g in gs.iter().take(k) {
                let w = rng.gen_range(0.5..1.0);
                for (x, &gv) in v.iter_mut().zip(&genres[g]) {
                    *x += w * gv;
                }
            }
            let n = l2_norm(&v).max(1e-6);
            for x in &mut v {
                *x /= n;
            }
            b.add_node(NodeType::User, vec![(uid % 512) as u32], vec![], &v);
            user_prefs.push(v);
        }

        // Tags: one prototype per tag, tied to a genre. Ids then follow users.
        let mut tag_genre = Vec::with_capacity(config.num_tags);
        for tid in 0..config.num_tags {
            let g = tid % config.num_genres;
            let mut v = genres[g].clone();
            for x in &mut v {
                *x += 0.1 * standard_normal(&mut rng);
            }
            let n = l2_norm(&v).max(1e-6);
            for x in &mut v {
                *x /= n;
            }
            b.add_node(NodeType::Tag, vec![g as u32], vec![tid as u32], &v);
            tag_genre.push(g);
        }

        // Movies: genre + noise. Ids follow tags.
        let mut movie_genre = Vec::with_capacity(config.num_movies);
        for mid in 0..config.num_movies {
            let g = rng.gen_range(0..config.num_genres);
            let mut v = genres[g].clone();
            for x in &mut v {
                *x += 0.3 * standard_normal(&mut rng);
            }
            let n = l2_norm(&v).max(1e-6);
            for x in &mut v {
                *x /= n;
            }
            b.add_node(
                NodeType::Movie,
                vec![(mid % 512) as u32, g as u32],
                vec![(1000 + mid) as u32],
                &v,
            );
            movie_genre.push(g);
        }

        let user_node = |u: usize| u as NodeId;
        let tag_node = |t: usize| (config.num_users + t) as NodeId;
        let movie_node = |m: usize| (config.num_users + config.num_tags + m) as NodeId;

        // Movie–tag edges: top-`tags_per_movie` tags by prototype relevance.
        for m in 0..config.num_movies {
            let mv = b.features().dense(movie_node(m)).to_vec();
            let mut scored: Vec<(usize, f32)> = (0..config.num_tags)
                .map(|t| {
                    let tv = b.features().dense(tag_node(t));
                    let dot: f32 = mv.iter().zip(tv).map(|(&a, &b)| a * b).sum();
                    (t, dot)
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            for &(t, rel) in scored.iter().take(config.tags_per_movie) {
                b.add_similarity_edge(movie_node(m), tag_node(t), rel.max(0.01));
            }
        }

        // Ratings → user–movie click edges + positive examples.
        let mut movies_by_genre: Vec<Vec<usize>> = vec![Vec::new(); config.num_genres];
        for (m, &g) in movie_genre.iter().enumerate() {
            movies_by_genre[g].push(m);
        }
        let mut tags_by_genre: Vec<Vec<usize>> = vec![Vec::new(); config.num_genres];
        for (t, &g) in tag_genre.iter().enumerate() {
            tags_by_genre[g].push(t);
        }

        let mut examples = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for u in 0..config.num_users {
            for _ in 0..config.ratings_per_user {
                // Candidate movie: biased toward the user's preferred genres.
                let m = if rng.gen::<f32>() < 0.7 {
                    // Nearest-genre pick: sample a genre weighted by user
                    // preference via a few tries.
                    let g = (0..4)
                        .map(|_| rng.gen_range(0..config.num_genres))
                        .max_by(|&a, &b| {
                            let da: f32 =
                                user_prefs[u].iter().zip(&genres[a]).map(|(&x, &y)| x * y).sum();
                            let db: f32 =
                                user_prefs[u].iter().zip(&genres[b]).map(|(&x, &y)| x * y).sum();
                            da.partial_cmp(&db).unwrap()
                        })
                        .unwrap();
                    if movies_by_genre[g].is_empty() {
                        rng.gen_range(0..config.num_movies)
                    } else {
                        movies_by_genre[g][rng.gen_range(0..movies_by_genre[g].len())]
                    }
                } else {
                    rng.gen_range(0..config.num_movies)
                };
                let mv = b.features().dense(movie_node(m)).to_vec();
                let affinity: f32 = user_prefs[u].iter().zip(&mv).map(|(&a, &c)| a * c).sum();
                let p = sigmoid(config.steepness * affinity - 1.0);
                let interacted = rng.gen::<f32>() < p;
                // Tag for the triple: one of the movie's genre tags.
                let g = movie_genre[m];
                let tag_pool = if tags_by_genre[g].is_empty() {
                    (0..config.num_tags).collect::<Vec<_>>()
                } else {
                    tags_by_genre[g].clone()
                };
                let t = tag_pool[rng.gen_range(0..tag_pool.len())];
                if interacted {
                    b.add_undirected_edge(
                        user_node(u),
                        movie_node(m),
                        EdgeType::Click,
                        // Rating in [3,5] for interactions, scaled to weight.
                        rng.gen_range(3.0f32..=5.0) / 5.0,
                    );
                }
                examples.push(RetrievalExample {
                    user: user_node(u),
                    query: tag_node(t),
                    item: movie_node(m),
                    label: if interacted { 1.0 } else { 0.0 },
                });
            }
        }
        b.dedup_edges();
        let graph = b.finish();
        Self { config, graph, examples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MovieLensData {
        MovieLensData::generate(MovieLensConfig::tiny(21))
    }

    #[test]
    fn schema_has_three_node_types() {
        let d = tiny();
        let counts = d.graph.type_counts();
        assert_eq!(counts[&NodeType::User], d.config.num_users);
        assert_eq!(counts[&NodeType::Tag], d.config.num_tags);
        assert_eq!(counts[&NodeType::Movie], d.config.num_movies);
    }

    #[test]
    fn movies_link_to_top_tags() {
        let d = tiny();
        let movie0 = (d.config.num_users + d.config.num_tags) as NodeId;
        let (tags, w) = d.graph.neighbors(movie0, EdgeType::Similarity);
        assert_eq!(tags.len(), d.config.tags_per_movie);
        for &t in tags {
            assert_eq!(d.graph.node_type(t), NodeType::Tag);
        }
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn interactions_create_click_edges() {
        let d = tiny();
        assert!(d.graph.num_edges_of(EdgeType::Click) > 0);
        let positives = d.examples.iter().filter(|e| e.label > 0.5).count();
        assert!(positives > 0);
        assert!(positives < d.examples.len());
    }

    #[test]
    fn examples_reference_valid_triples() {
        let d = tiny();
        for e in &d.examples {
            assert_eq!(d.graph.node_type(e.user), NodeType::User);
            assert_eq!(d.graph.node_type(e.query), NodeType::Tag);
            assert_eq!(d.graph.node_type(e.item), NodeType::Movie);
        }
        assert_eq!(d.examples.len(), d.config.num_users * d.config.ratings_per_user);
    }

    #[test]
    fn generation_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.examples.len(), b.examples.len());
        for (x, y) in a.examples.iter().zip(&b.examples) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn interactions_follow_preference_signal() {
        let d = tiny();
        // Positive triples should involve movies closer to the user vector.
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for e in &d.examples {
            let sim = zoomer_tensor::cosine_similarity(
                d.graph.dense_feature(e.user),
                d.graph.dense_feature(e.item),
            );
            if e.label > 0.5 {
                pos.push(sim);
            } else {
                neg.push(sim);
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(mean(&pos) > mean(&neg), "{} vs {}", mean(&pos), mean(&neg));
    }
}
