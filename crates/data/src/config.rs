//! Generator configuration and the paper's three scale tiers.

/// The paper's three Taobao graph scales (§VII-A). Absolute sizes are scaled
/// down to laptop budgets while preserving the relative ratios (≈ ×5 and ×20
/// node growth between tiers) and the tier-specific composition the paper
/// reports (the larger graphs are increasingly user-user dominated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleTier {
    /// "million-scale graph — 1-hour data" (≈2 M nodes in the paper).
    Million,
    /// "hundred million-scale graph — 12-hour data" (≈140 M nodes).
    HundredMillion,
    /// "billion-scale graph — 7-day data" (≈1.2 B nodes).
    Billion,
}

impl ScaleTier {
    pub const ALL: [ScaleTier; 3] =
        [ScaleTier::Million, ScaleTier::HundredMillion, ScaleTier::Billion];

    pub fn name(self) -> &'static str {
        match self {
            ScaleTier::Million => "million",
            ScaleTier::HundredMillion => "hundred-million",
            ScaleTier::Billion => "billion",
        }
    }

    /// Default laptop-scale config for this tier.
    pub fn config(self, seed: u64) -> TaobaoConfig {
        let base = TaobaoConfig::default_with_seed(seed);
        match self {
            ScaleTier::Million => TaobaoConfig {
                num_users: 2_000,
                num_queries: 2_000,
                num_items: 4_000,
                num_sessions: 12_000,
                ..base
            },
            ScaleTier::HundredMillion => TaobaoConfig {
                num_users: 9_000,
                num_queries: 4_000,
                num_items: 7_000,
                num_sessions: 40_000,
                ..base
            },
            ScaleTier::Billion => TaobaoConfig {
                num_users: 34_000,
                num_queries: 25_000,
                num_items: 57_000,
                num_sessions: 160_000,
                ..base
            },
        }
    }
}

/// Parameters of the Taobao-like behavior-log generator.
#[derive(Clone, Debug)]
pub struct TaobaoConfig {
    pub seed: u64,
    /// Latent space dimensionality (content vectors, eq. (5) inputs).
    pub latent_dim: usize,
    pub num_categories: usize,
    pub num_users: usize,
    pub num_queries: usize,
    pub num_items: usize,
    /// Number of search sessions to simulate.
    pub num_sessions: usize,
    /// How many categories each user's interest mixture spans.
    pub interests_per_user: usize,
    /// Items shown per session (impressions); clicks are a subset.
    pub impressions_per_session: usize,
    /// Noise scale on item vectors around their category prototype.
    pub item_noise: f32,
    /// Noise scale on session intents around the drawn interest category.
    pub intent_noise: f32,
    /// Strength of the persistent per-user-per-category *personal
    /// direction* mixed into every session intent. This is the information
    /// that only lives in the user's click history — queries reveal the
    /// category but not the personal direction — so focal-aware use of
    /// history genuinely pays off (the paper's core premise).
    pub personal_weight: f32,
    /// Logistic steepness of the ground-truth click model.
    pub click_steepness: f32,
    /// Logistic offset (controls base CTR).
    pub click_offset: f32,
    /// Terms in each category's vocabulary pool.
    pub terms_per_category: usize,
    /// Terms drawn for each item/query title.
    pub terms_per_title: usize,
    /// Number of distinct brands and shops (item categorical fields).
    pub num_brands: usize,
    pub num_shops: usize,
    /// Build MinHash similarity edges (on by default; off for speed in some
    /// microbenches).
    pub similarity_edges: bool,
}

impl TaobaoConfig {
    pub fn default_with_seed(seed: u64) -> Self {
        Self {
            seed,
            latent_dim: 16,
            num_categories: 24,
            num_users: 500,
            num_queries: 500,
            num_items: 1_000,
            num_sessions: 3_000,
            interests_per_user: 3,
            impressions_per_session: 10,
            item_noise: 0.35,
            intent_noise: 0.15,
            personal_weight: 0.8,
            click_steepness: 6.0,
            click_offset: -1.0,
            terms_per_category: 50,
            terms_per_title: 8,
            num_brands: 64,
            num_shops: 128,
            similarity_edges: true,
        }
    }

    /// A tiny config for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            num_users: 40,
            num_queries: 40,
            num_items: 80,
            num_sessions: 200,
            num_categories: 6,
            ..Self::default_with_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_keep_relative_ratios() {
        let m = ScaleTier::Million.config(1);
        let h = ScaleTier::HundredMillion.config(1);
        let b = ScaleTier::Billion.config(1);
        let nodes = |c: &TaobaoConfig| c.num_users + c.num_queries + c.num_items;
        // Paper: 2M → 140M → 1.2B, i.e. ×70 and ×8.6; we keep a gentler but
        // strictly increasing ×~2.5 and ×~5.8 to stay laptop-sized.
        assert!(nodes(&h) > 2 * nodes(&m));
        assert!(nodes(&b) > 4 * nodes(&h));
    }

    #[test]
    fn billion_tier_is_user_dominated() {
        // Paper: larger graphs are user-heavy (70-75% user-user edges).
        let b = ScaleTier::Billion.config(1);
        assert!(b.num_users > b.num_queries);
    }

    #[test]
    fn tier_names() {
        assert_eq!(ScaleTier::Million.name(), "million");
        assert_eq!(ScaleTier::ALL.len(), 3);
    }
}
