//! Generator configuration and the paper's three scale tiers.

/// The paper's three Taobao graph scales (§VII-A). Absolute sizes are scaled
/// down to laptop budgets while preserving the relative ratios (≈ ×5 and ×20
/// node growth between tiers) and the tier-specific composition the paper
/// reports (the larger graphs are increasingly user-user dominated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleTier {
    /// "million-scale graph — 1-hour data" (≈2 M nodes in the paper).
    Million,
    /// "hundred million-scale graph — 12-hour data" (≈140 M nodes).
    HundredMillion,
    /// "billion-scale graph — 7-day data" (≈1.2 B nodes in the paper).
    /// The laptop default builds ≈116 k nodes (34 k users + 25 k queries +
    /// 57 k items); [`ScaleTier::config_scaled`] multiplies that — factor 10
    /// (e.g. `ZOOMER_TIER_SCALE=10`, see [`TIER_SCALE_ENV`]) reaches the
    /// ≈1.2 M-node setup the memory-scaling benches target.
    Billion,
}

/// Environment flag the scale-sweep benches read to scale a tier's node and
/// session counts: a positive decimal factor (default `1.0`). The library
/// never reads it implicitly — call [`ScaleTier::env_scale`] and pass the
/// result to [`ScaleTier::config_scaled`] so programmatic callers stay
/// deterministic.
pub const TIER_SCALE_ENV: &str = "ZOOMER_TIER_SCALE";

impl ScaleTier {
    pub const ALL: [ScaleTier; 3] =
        [ScaleTier::Million, ScaleTier::HundredMillion, ScaleTier::Billion];

    pub fn name(self) -> &'static str {
        match self {
            ScaleTier::Million => "million",
            ScaleTier::HundredMillion => "hundred-million",
            ScaleTier::Billion => "billion",
        }
    }

    /// Default laptop-scale config for this tier.
    pub fn config(self, seed: u64) -> TaobaoConfig {
        let base = TaobaoConfig::default_with_seed(seed);
        match self {
            ScaleTier::Million => TaobaoConfig {
                num_users: 2_000,
                num_queries: 2_000,
                num_items: 4_000,
                num_sessions: 12_000,
                ..base
            },
            ScaleTier::HundredMillion => TaobaoConfig {
                num_users: 9_000,
                num_queries: 4_000,
                num_items: 7_000,
                num_sessions: 40_000,
                ..base
            },
            ScaleTier::Billion => TaobaoConfig {
                num_users: 34_000,
                num_queries: 25_000,
                num_items: 57_000,
                num_sessions: 160_000,
                ..base
            },
        }
    }

    /// This tier's config with every node and session count multiplied by
    /// `factor` (rounded, floored at 1). `factor` ≤ 0 or non-finite is
    /// treated as 1.0. This is the "scalable by flag" knob the billion tier
    /// advertises: `Billion.config_scaled(seed, 10.0)` is the ≈1.2 M-node
    /// graph, `0.05` a smoke-test slice.
    pub fn config_scaled(self, seed: u64, factor: f64) -> TaobaoConfig {
        let base = self.config(seed);
        if !(factor > 0.0 && factor.is_finite()) {
            return base;
        }
        let scale = |n: usize| (((n as f64) * factor).round() as usize).max(1);
        TaobaoConfig {
            num_users: scale(base.num_users),
            num_queries: scale(base.num_queries),
            num_items: scale(base.num_items),
            num_sessions: scale(base.num_sessions),
            ..base
        }
    }

    /// The scale factor from the [`TIER_SCALE_ENV`] environment variable
    /// (`1.0` when unset or unparsable). Read it once at harness startup and
    /// feed [`ScaleTier::config_scaled`].
    pub fn env_scale() -> f64 {
        std::env::var(TIER_SCALE_ENV)
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|f| *f > 0.0 && f.is_finite())
            .unwrap_or(1.0)
    }
}

/// Parameters of the Taobao-like behavior-log generator.
#[derive(Clone, Debug)]
pub struct TaobaoConfig {
    pub seed: u64,
    /// Latent space dimensionality (content vectors, eq. (5) inputs).
    pub latent_dim: usize,
    pub num_categories: usize,
    pub num_users: usize,
    pub num_queries: usize,
    pub num_items: usize,
    /// Number of search sessions to simulate.
    pub num_sessions: usize,
    /// How many categories each user's interest mixture spans.
    pub interests_per_user: usize,
    /// Items shown per session (impressions); clicks are a subset.
    pub impressions_per_session: usize,
    /// Noise scale on item vectors around their category prototype.
    pub item_noise: f32,
    /// Noise scale on session intents around the drawn interest category.
    pub intent_noise: f32,
    /// Strength of the persistent per-user-per-category *personal
    /// direction* mixed into every session intent. This is the information
    /// that only lives in the user's click history — queries reveal the
    /// category but not the personal direction — so focal-aware use of
    /// history genuinely pays off (the paper's core premise).
    pub personal_weight: f32,
    /// Logistic steepness of the ground-truth click model.
    pub click_steepness: f32,
    /// Logistic offset (controls base CTR).
    pub click_offset: f32,
    /// Terms in each category's vocabulary pool.
    pub terms_per_category: usize,
    /// Terms drawn for each item/query title.
    pub terms_per_title: usize,
    /// Number of distinct brands and shops (item categorical fields).
    pub num_brands: usize,
    pub num_shops: usize,
    /// Build MinHash similarity edges (on by default; off for speed in some
    /// microbenches).
    pub similarity_edges: bool,
}

impl TaobaoConfig {
    pub fn default_with_seed(seed: u64) -> Self {
        Self {
            seed,
            latent_dim: 16,
            num_categories: 24,
            num_users: 500,
            num_queries: 500,
            num_items: 1_000,
            num_sessions: 3_000,
            interests_per_user: 3,
            impressions_per_session: 10,
            item_noise: 0.35,
            intent_noise: 0.15,
            personal_weight: 0.8,
            click_steepness: 6.0,
            click_offset: -1.0,
            terms_per_category: 50,
            terms_per_title: 8,
            num_brands: 64,
            num_shops: 128,
            similarity_edges: true,
        }
    }

    /// A tiny config for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            num_users: 40,
            num_queries: 40,
            num_items: 80,
            num_sessions: 200,
            num_categories: 6,
            ..Self::default_with_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_keep_relative_ratios() {
        let m = ScaleTier::Million.config(1);
        let h = ScaleTier::HundredMillion.config(1);
        let b = ScaleTier::Billion.config(1);
        let nodes = |c: &TaobaoConfig| c.num_users + c.num_queries + c.num_items;
        // Paper: 2M → 140M → 1.2B, i.e. ×70 and ×8.6; we keep a gentler but
        // strictly increasing ×~2.5 and ×~5.8 to stay laptop-sized.
        assert!(nodes(&h) > 2 * nodes(&m));
        assert!(nodes(&b) > 4 * nodes(&h));
    }

    #[test]
    fn billion_tier_is_user_dominated() {
        // Paper: larger graphs are user-heavy (70-75% user-user edges).
        let b = ScaleTier::Billion.config(1);
        assert!(b.num_users > b.num_queries);
    }

    #[test]
    fn tier_names() {
        assert_eq!(ScaleTier::Million.name(), "million");
        assert_eq!(ScaleTier::ALL.len(), 3);
    }

    #[test]
    fn billion_tier_default_is_laptop_sized_and_scales_to_advertised() {
        // The doc comment's numbers, pinned: ≈116 k nodes by default and
        // ≈1.2 M at factor 10 — the "scalable by flag" claim.
        let b = ScaleTier::Billion.config(1);
        assert_eq!(b.num_users + b.num_queries + b.num_items, 116_000);
        let big = ScaleTier::Billion.config_scaled(1, 10.0);
        assert_eq!(big.num_users + big.num_queries + big.num_items, 1_160_000);
        assert_eq!(big.num_sessions, 1_600_000);
        // Degenerate factors fall back to the default.
        let fallback = ScaleTier::Billion.config_scaled(1, -3.0);
        assert_eq!(fallback.num_users, b.num_users);
        // Scaling floors at one node so tiny smoke factors stay buildable.
        assert!(ScaleTier::Billion.config_scaled(1, 1e-9).num_users >= 1);
    }

    #[test]
    fn billion_tier_instantiates() {
        // The tier must actually build, not just parameterize: generate a
        // scaled-down slice and check the graph matches the config's shape.
        let cfg = ScaleTier::Billion.config_scaled(7, 0.02);
        let total = cfg.num_users + cfg.num_queries + cfg.num_items;
        let data = crate::TaobaoData::generate(cfg);
        assert_eq!(data.graph.num_nodes(), total);
        assert!(data.graph.num_edges() > 0);
    }
}
