//! CTR-prediction examples and train/test splitting.

use rand::seq::SliceRandom;
use zoomer_graph::NodeId;
use zoomer_tensor::seeded_rng;

/// One (user, query, item, label) CTR example — the paper's behavior tuple
/// `{u_k, q_k, i_k}` (§V-B) plus the click label.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetrievalExample {
    pub user: NodeId,
    pub query: NodeId,
    pub item: NodeId,
    pub label: f32,
}

/// A shuffled train/test split.
pub struct TrainTestSplit {
    pub train: Vec<RetrievalExample>,
    pub test: Vec<RetrievalExample>,
}

/// Shuffle deterministically and split with `train_fraction` going to train.
/// The paper uses 90/10 for Taobao graphs and 80/20 for MovieLens.
pub fn split_examples(
    mut examples: Vec<RetrievalExample>,
    train_fraction: f64,
    seed: u64,
) -> TrainTestSplit {
    assert!((0.0..=1.0).contains(&train_fraction), "train_fraction must be in [0,1]");
    let mut rng = seeded_rng(seed);
    examples.shuffle(&mut rng);
    let cut = (examples.len() as f64 * train_fraction).round() as usize;
    let test = examples.split_off(cut.min(examples.len()));
    TrainTestSplit { train: examples, test }
}

impl TrainTestSplit {
    /// Fraction of positive labels in the training set.
    pub fn train_positive_rate(&self) -> f64 {
        if self.train.is_empty() {
            return 0.0;
        }
        self.train.iter().filter(|e| e.label > 0.5).count() as f64 / self.train.len() as f64
    }
}

/// Mixed negative sampling (the twin-tower training trick the paper cites,
/// §III-B): for every positive example, add `ratio` extra negatives pairing
/// the same (user, query) with items drawn uniformly from `item_pool` —
/// "easy" negatives that teach the towers the global geometry, complementing
/// the "hard" impressed-but-not-clicked negatives already in the logs.
pub fn with_sampled_negatives(
    examples: &[RetrievalExample],
    item_pool: &[NodeId],
    ratio: usize,
    seed: u64,
) -> Vec<RetrievalExample> {
    assert!(!item_pool.is_empty(), "empty item pool");
    let mut rng = seeded_rng(seed);
    let mut out = Vec::with_capacity(examples.len() * (1 + ratio));
    for &ex in examples {
        out.push(ex);
        if ex.label > 0.5 {
            for _ in 0..ratio {
                let item = item_pool[rand::Rng::gen_range(&mut rng, 0..item_pool.len())];
                if item != ex.item {
                    out.push(RetrievalExample { item, label: 0.0, ..ex });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples(n: usize) -> Vec<RetrievalExample> {
        (0..n)
            .map(|i| RetrievalExample {
                user: i as NodeId,
                query: (i * 2) as NodeId,
                item: (i * 3) as NodeId,
                label: (i % 3 == 0) as u8 as f32,
            })
            .collect()
    }

    #[test]
    fn split_sizes_match_fraction() {
        let s = split_examples(examples(100), 0.9, 1);
        assert_eq!(s.train.len(), 90);
        assert_eq!(s.test.len(), 10);
    }

    #[test]
    fn split_is_a_permutation() {
        let s = split_examples(examples(50), 0.8, 2);
        let mut all: Vec<u32> = s.train.iter().chain(&s.test).map(|e| e.user).collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let a = split_examples(examples(40), 0.5, 3);
        let b = split_examples(examples(40), 0.5, 3);
        let c = split_examples(examples(40), 0.5, 4);
        assert_eq!(a.train, b.train);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn degenerate_fractions() {
        let s = split_examples(examples(10), 1.0, 5);
        assert_eq!(s.train.len(), 10);
        assert!(s.test.is_empty());
        let s = split_examples(examples(10), 0.0, 5);
        assert!(s.train.is_empty());
        assert_eq!(s.test.len(), 10);
        let s = split_examples(Vec::new(), 0.5, 5);
        assert!(s.train.is_empty() && s.test.is_empty());
        assert_eq!(s.train_positive_rate(), 0.0);
    }

    #[test]
    fn positive_rate_counts_labels() {
        let s = split_examples(examples(30), 1.0, 6);
        // Every third example is positive.
        assert!((s.train_positive_rate() - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn negative_sampling_adds_easy_negatives() {
        let exs = examples(12); // 4 positives (every third)
        let pool: Vec<NodeId> = (100..120).collect();
        let out = with_sampled_negatives(&exs, &pool, 2, 7);
        // Originals preserved (negatives interleave right after their
        // positive), first original first.
        assert_eq!(out[0], exs[0]);
        let positives_in = exs.iter().filter(|e| e.label > 0.5).count();
        // Each positive adds up to 2 negatives (collisions with the positive
        // item are skipped; this pool never collides with original items).
        assert_eq!(out.len(), exs.len() + positives_in * 2);
        // Added negatives draw items from the pool and carry label 0.
        let added: Vec<_> = out.iter().filter(|e| e.item >= 100).collect();
        assert_eq!(added.len(), positives_in * 2);
        for e in added {
            assert!(pool.contains(&e.item));
            assert_eq!(e.label, 0.0);
        }
    }

    #[test]
    fn negative_sampling_is_deterministic() {
        let exs = examples(9);
        let pool: Vec<NodeId> = (50..60).collect();
        let a = with_sampled_negatives(&exs, &pool, 3, 1);
        let b = with_sampled_negatives(&exs, &pool, 3, 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty item pool")]
    fn negative_sampling_empty_pool_panics() {
        let _ = with_sampled_negatives(&examples(3), &[], 1, 1);
    }
}
