//! Whole-model gradient checks: finite differences through the *entire*
//! forward pass (focal vector → ROI encoding → multi-level attention →
//! twin towers → focal loss) against the tape's analytic gradients.

use std::collections::HashMap;

use zoomer_data::{TaobaoConfig, TaobaoData};
use zoomer_model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_tensor::seeded_rng;

/// Loss of one example under the model's current parameters (deterministic:
/// focal sampler at temperature 0).
fn loss_of(
    model: &mut UnifiedCtrModel,
    data: &TaobaoData,
    ex: &zoomer_data::RetrievalExample,
) -> f64 {
    let mut rng = seeded_rng(7);
    let gamma = model.config().focal_gamma;
    let (mut ctx, logit) = model.forward(&data.graph, ex, &mut rng);
    let loss = ctx.tape.focal_bce_with_logits(logit, ex.label, gamma);
    ctx.tape.scalar(loss) as f64
}

fn check_preset(preset: &str, tol: f64) {
    let data = TaobaoData::generate(TaobaoConfig::tiny(77));
    let ex = data.ctr_examples()[3];
    let dd = data.graph.features().dense_dim();
    let mut config = ModelConfig::preset(preset, 77, dd).expect("preset");
    config.focal_temperature = 0.0; // deterministic ROI across re-evaluations
    let mut model = UnifiedCtrModel::new(config);

    // Analytic gradients.
    let mut rng = seeded_rng(7);
    let gamma = model.config().focal_gamma;
    let (mut ctx, logit) = model.forward(&data.graph, &ex, &mut rng);
    let loss_var = ctx.tape.focal_bce_with_logits(logit, ex.label, gamma);
    let grads = ctx.tape.backward(loss_var);
    let dense: HashMap<String, zoomer_tensor::Matrix> = ctx.dense_gradients(&grads);
    assert!(!dense.is_empty(), "{preset}: no dense gradients flowed");

    // Numeric check on a handful of entries of a few touched parameters.
    let eps = 2e-3f32;
    let mut checked = 0usize;
    let names: Vec<String> = dense.keys().take(4).cloned().collect();
    for name in names {
        let g = &dense[&name];
        for e in (0..g.len()).step_by((g.len() / 3).max(1)) {
            let orig = model.store().get(&name).as_slice()[e];
            model.store_mut().get_mut(&name).as_mut_slice()[e] = orig + eps;
            let plus = loss_of(&mut model, &data, &ex);
            model.store_mut().get_mut(&name).as_mut_slice()[e] = orig - eps;
            let minus = loss_of(&mut model, &data, &ex);
            model.store_mut().get_mut(&name).as_mut_slice()[e] = orig;
            let numeric = (plus - minus) / (2.0 * eps as f64);
            let analytic = g.as_slice()[e] as f64;
            let denom = analytic.abs().max(numeric.abs()).max(1e-2);
            let rel = (analytic - numeric).abs() / denom;
            assert!(
                rel < tol,
                "{preset}: param {name}[{e}] analytic {analytic:.6} vs numeric {numeric:.6} (rel {rel:.4})"
            );
            checked += 1;
        }
    }
    assert!(checked >= 4, "{preset}: too few entries checked");
}

#[test]
fn gradcheck_full_zoomer_model() {
    check_preset("zoomer", 0.08);
}

#[test]
fn gradcheck_han_model() {
    check_preset("han", 0.08);
}

#[test]
fn gradcheck_gat_model() {
    check_preset("gat", 0.08);
}

#[test]
fn gradcheck_mccf_model() {
    check_preset("mccf", 0.08);
}

#[test]
fn gradcheck_fgnn_model() {
    check_preset("fgnn", 0.08);
}
