//! Model configuration and named presets for every method in the paper's
//! evaluation.

use zoomer_sampler::{
    ClusterImportanceSampler, FocalBiasedSampler, MetapathSampler, NeighborSampler, PixieSampler,
    RandomWalkSampler, UniformSampler, WeightedSampler,
};

/// Which sampler downscales the neighborhood (§III-C / §VII-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplerKind {
    /// Zoomer's focal-biased top-k (eq. 5).
    Focal,
    /// GraphSAGE-style uniform.
    Uniform,
    /// Edge-weight proportional (alias table).
    Weighted,
    /// PinSage-style random-walk importance.
    RandomWalk,
    /// Pixie-style feature-biased walks.
    PixieWalk,
    /// PinnerSage-style cluster medoids.
    Cluster,
    /// MultiSage-style metapath-constrained walks (User→Query→Item).
    Metapath,
}

impl SamplerKind {
    /// Instantiate the sampler.
    pub fn build(self) -> Box<dyn NeighborSampler> {
        match self {
            SamplerKind::Focal => Box::new(FocalBiasedSampler::default()),
            SamplerKind::Uniform => Box::new(UniformSampler),
            SamplerKind::Weighted => Box::new(WeightedSampler),
            SamplerKind::RandomWalk => Box::new(RandomWalkSampler::default()),
            SamplerKind::PixieWalk => Box::new(PixieSampler::default()),
            SamplerKind::Cluster => Box::new(ClusterImportanceSampler::default()),
            SamplerKind::Metapath => Box::new(MetapathSampler::user_query_item()),
        }
    }
}

/// Neighbor-aggregation flavor. `Zoomer` obeys the three attention toggles
/// in [`ModelConfig`]; the rest implement the baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregation {
    /// Zoomer's multi-level attention (levels gated by the config flags).
    Zoomer,
    /// Plain mean pooling over all neighbors (GCN / GraphSAGE-mean).
    Mean,
    /// GAT-style pairwise attention (eq. 3) — focal-blind.
    Gat,
    /// HAN: node-level (GAT within type) + learned semantic-level attention.
    Han,
    /// Importance-weighted mean by edge weight (PinSage pooling).
    WeightedMean,
    /// STAMP-like: attention anchored on the query embedding only.
    QueryAnchored,
    /// FGNN-like gated aggregation: per-neighbor sigmoid gate.
    Gated,
    /// MCCF-like two-component decomposition with component attention.
    MultiComponent,
}

/// Full model configuration.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Human-readable preset name (reported in tables).
    pub name: String,
    pub seed: u64,
    /// Embedding / hidden width (paper: 128; we default smaller for speed).
    pub embed_dim: usize,
    /// Width of the graph's dense content vectors (from the dataset).
    pub dense_dim: usize,
    /// GNN depth: neighbors within `hops` hops are aggregated (paper: 2 for
    /// Taobao, 1 for MovieLens).
    pub hops: usize,
    /// Per-node sampling fan-out `k` (paper sweeps 5..30).
    pub fanout: usize,
    pub sampler: SamplerKind,
    pub aggregation: Aggregation,
    /// The three attention levels of §V-D (only consulted by
    /// `Aggregation::Zoomer`).
    pub feature_attention: bool,
    pub edge_attention: bool,
    pub semantic_attention: bool,
    /// Focal-loss focusing parameter (paper: "focal weight to 2").
    pub focal_gamma: f32,
    /// Gumbel temperature of the focal-biased sampler during training
    /// (0 = deterministic top-k; > 0 = stochastic focal-biased sampling).
    pub focal_temperature: f32,
    /// Learning rate (paper: 0.1 for Zoomer with Adam).
    pub lr: f32,
    /// Decoupled L2 ("regulation loss weight", paper: 1e-6 for Zoomer).
    pub weight_decay: f32,
}

impl ModelConfig {
    fn base(name: &str, seed: u64, dense_dim: usize) -> Self {
        Self {
            name: name.to_string(),
            seed,
            embed_dim: 16,
            dense_dim,
            hops: 2,
            fanout: 10,
            sampler: SamplerKind::Uniform,
            aggregation: Aggregation::Mean,
            feature_attention: false,
            edge_attention: false,
            semantic_attention: false,
            focal_gamma: 0.0,
            focal_temperature: 0.2,
            lr: 0.003,
            weight_decay: 1e-6,
        }
    }

    /// The full Zoomer model.
    pub fn zoomer(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::Focal,
            aggregation: Aggregation::Zoomer,
            feature_attention: true,
            edge_attention: true,
            semantic_attention: true,
            focal_gamma: 2.0,
            ..Self::base("ZOOMER", seed, dense_dim)
        }
    }

    /// Ablation: all attention levels replaced by mean pooling ("GCN").
    pub fn ablation_gcn(seed: u64, dense_dim: usize) -> Self {
        Self {
            name: "GCN".to_string(),
            feature_attention: false,
            edge_attention: false,
            semantic_attention: false,
            ..Self::zoomer(seed, dense_dim)
        }
    }

    /// Ablation ZOOMER-FE: semantic combination → mean pooling.
    pub fn ablation_fe(seed: u64, dense_dim: usize) -> Self {
        Self {
            name: "ZOOMER-FE".to_string(),
            semantic_attention: false,
            ..Self::zoomer(seed, dense_dim)
        }
    }

    /// Ablation ZOOMER-FS: edge reweighing → mean pooling.
    pub fn ablation_fs(seed: u64, dense_dim: usize) -> Self {
        Self {
            name: "ZOOMER-FS".to_string(),
            edge_attention: false,
            ..Self::zoomer(seed, dense_dim)
        }
    }

    /// Ablation ZOOMER-ES: feature projection → original features.
    pub fn ablation_es(seed: u64, dense_dim: usize) -> Self {
        Self {
            name: "ZOOMER-ES".to_string(),
            feature_attention: false,
            ..Self::zoomer(seed, dense_dim)
        }
    }

    pub fn graphsage(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::Uniform,
            aggregation: Aggregation::Mean,
            ..Self::base("GraphSage", seed, dense_dim)
        }
    }

    pub fn gat(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::Uniform,
            aggregation: Aggregation::Gat,
            ..Self::base("GAT", seed, dense_dim)
        }
    }

    pub fn han(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::Uniform,
            aggregation: Aggregation::Han,
            ..Self::base("HAN", seed, dense_dim)
        }
    }

    pub fn pinsage(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::RandomWalk,
            aggregation: Aggregation::WeightedMean,
            ..Self::base("PinSage", seed, dense_dim)
        }
    }

    pub fn pinnersage(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::Cluster,
            aggregation: Aggregation::Mean,
            ..Self::base("PinnerSage", seed, dense_dim)
        }
    }

    pub fn pixie(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::PixieWalk,
            aggregation: Aggregation::WeightedMean,
            ..Self::base("Pixie", seed, dense_dim)
        }
    }

    pub fn stamp(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::Weighted,
            aggregation: Aggregation::QueryAnchored,
            hops: 1,
            ..Self::base("STAMP", seed, dense_dim)
        }
    }

    pub fn gcegnn(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::Uniform,
            aggregation: Aggregation::QueryAnchored,
            ..Self::base("GCE-GNN", seed, dense_dim)
        }
    }

    pub fn fgnn(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::Uniform,
            aggregation: Aggregation::Gated,
            ..Self::base("FGNN", seed, dense_dim)
        }
    }

    /// MultiSage-like: metapath-constrained sampling with HAN-style
    /// contextualized (per-type) attention.
    pub fn multisage(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::Metapath,
            aggregation: Aggregation::Han,
            ..Self::base("MultiSage", seed, dense_dim)
        }
    }

    pub fn mccf(seed: u64, dense_dim: usize) -> Self {
        Self {
            sampler: SamplerKind::Uniform,
            aggregation: Aggregation::MultiComponent,
            ..Self::base("MCCF", seed, dense_dim)
        }
    }

    /// Look up a preset by (case-insensitive) name.
    pub fn preset(name: &str, seed: u64, dense_dim: usize) -> Option<Self> {
        Some(match name.to_ascii_lowercase().as_str() {
            "zoomer" => Self::zoomer(seed, dense_dim),
            "gcn" => Self::ablation_gcn(seed, dense_dim),
            "zoomer-fe" => Self::ablation_fe(seed, dense_dim),
            "zoomer-fs" => Self::ablation_fs(seed, dense_dim),
            "zoomer-es" => Self::ablation_es(seed, dense_dim),
            "graphsage" => Self::graphsage(seed, dense_dim),
            "gat" => Self::gat(seed, dense_dim),
            "han" => Self::han(seed, dense_dim),
            "pinsage" => Self::pinsage(seed, dense_dim),
            "pinnersage" => Self::pinnersage(seed, dense_dim),
            "pixie" => Self::pixie(seed, dense_dim),
            "stamp" => Self::stamp(seed, dense_dim),
            "gce-gnn" | "gcegnn" => Self::gcegnn(seed, dense_dim),
            "fgnn" => Self::fgnn(seed, dense_dim),
            "mccf" => Self::mccf(seed, dense_dim),
            "multisage" => Self::multisage(seed, dense_dim),
            _ => return None,
        })
    }

    /// The baselines with self-developed samplers (§VII-E / Fig 11-12).
    pub fn sampler_equipped_baselines() -> &'static [&'static str] {
        &["graphsage", "pinsage", "pinnersage", "pixie"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoomer_preset_enables_all_levels() {
        let c = ModelConfig::zoomer(1, 8);
        assert!(c.feature_attention && c.edge_attention && c.semantic_attention);
        assert_eq!(c.sampler, SamplerKind::Focal);
        assert_eq!(c.aggregation, Aggregation::Zoomer);
        assert_eq!(c.focal_gamma, 2.0);
    }

    #[test]
    fn ablations_toggle_exactly_one_level() {
        let d = 8;
        let fe = ModelConfig::ablation_fe(1, d);
        assert!(fe.feature_attention && fe.edge_attention && !fe.semantic_attention);
        let fs = ModelConfig::ablation_fs(1, d);
        assert!(fs.feature_attention && !fs.edge_attention && fs.semantic_attention);
        let es = ModelConfig::ablation_es(1, d);
        assert!(!es.feature_attention && es.edge_attention && es.semantic_attention);
        let gcn = ModelConfig::ablation_gcn(1, d);
        assert!(!gcn.feature_attention && !gcn.edge_attention && !gcn.semantic_attention);
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in [
            "zoomer",
            "gcn",
            "zoomer-fe",
            "zoomer-fs",
            "zoomer-es",
            "graphsage",
            "gat",
            "han",
            "pinsage",
            "pinnersage",
            "pixie",
            "stamp",
            "gce-gnn",
            "fgnn",
            "mccf",
            "multisage",
        ] {
            let c = ModelConfig::preset(name, 7, 4).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(c.dense_dim, 4);
            assert_eq!(c.seed, 7);
        }
        assert!(ModelConfig::preset("nope", 1, 4).is_none());
    }

    #[test]
    fn sampler_kinds_instantiate() {
        for kind in [
            SamplerKind::Focal,
            SamplerKind::Uniform,
            SamplerKind::Weighted,
            SamplerKind::RandomWalk,
            SamplerKind::PixieWalk,
            SamplerKind::Cluster,
            SamplerKind::Metapath,
        ] {
            let s = kind.build();
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn baselines_with_samplers_list() {
        let names = ModelConfig::sampler_equipped_baselines();
        assert!(names.contains(&"pinsage"));
        assert_eq!(names.len(), 4);
    }
}
