//! The unified GNN encoder: node featurization, focal-vector construction,
//! and all aggregation flavors, built on the autodiff tape.
//!
//! This module implements §V-D of the paper:
//! - **Feature projection** (eq. 6–7): focal-conditioned attention over a
//!   node's feature latent vectors, `W_c = softmax(H·C/√d)`, `Z = H ⊙ W_c`.
//! - **Edge reweighing** (eq. 8–9): within-type attention with the focal
//!   vector concatenated into the score, `e_ij ∝ exp σ(aᵀ[(Z_i‖Z_j)‖Z_c])`.
//! - **Semantic combination** (eq. 10–11): per-neighbor-type weights from
//!   cosine similarity with the ego embedding, `H_i = Σ_k E_ik · t_k`.
//!
//! plus the baseline aggregations (GAT eq. 3, HAN's two-level attention,
//! importance-weighted mean, STAMP-style query-anchored attention, FGNN-style
//! gating, MCCF-style multi-component decomposition).

use std::collections::{BTreeMap, HashMap};

use rand::Rng;
use zoomer_autograd::embedding::SparseAdamConfig;
use zoomer_autograd::{EmbeddingTable, ParamStore, Var};
use zoomer_graph::{HeteroGraph, NodeId, NodeType};
use zoomer_sampler::RoiNode;
use zoomer_tensor::Matrix;

use crate::config::{Aggregation, ModelConfig};
use crate::forward::ForwardCtx;

/// Embedding-table registry: one table per (node type, field index).
pub struct TableSet {
    tables: HashMap<String, EmbeddingTable>,
    dim: usize,
    seed: u64,
    adam: SparseAdamConfig,
}

impl TableSet {
    pub fn new(dim: usize, seed: u64, adam: SparseAdamConfig) -> Self {
        Self { tables: HashMap::new(), dim, seed, adam }
    }

    /// Table name for a (type, field) slot.
    pub fn table_name(ty: NodeType, field_idx: usize) -> String {
        format!("emb.{}.f{}", ty.name(), field_idx)
    }

    pub fn get_or_create(&mut self, ty: NodeType, field_idx: usize) -> &mut EmbeddingTable {
        let name = Self::table_name(ty, field_idx);
        let dim = self.dim;
        // Derive a distinct init stream per table.
        let mut h: u64 = self.seed;
        for b in name.bytes() {
            h = h.wrapping_mul(0x100000001b3) ^ b as u64;
        }
        let adam = self.adam;
        self.tables.entry(name.clone()).or_insert_with(|| EmbeddingTable::new(&name, dim, h, adam))
    }

    pub fn by_name(&self, name: &str) -> Option<&EmbeddingTable> {
        self.tables.get(name)
    }

    pub fn by_name_mut(&mut self, name: &str) -> Option<&mut EmbeddingTable> {
        self.tables.get_mut(name)
    }

    /// Get or lazily create a table by its full name (used by the
    /// parameter-server simulation, which receives gradients keyed by name).
    pub fn get_or_create_named(&mut self, name: &str) -> &mut EmbeddingTable {
        let dim = self.dim;
        let mut h: u64 = self.seed;
        for b in name.bytes() {
            h = h.wrapping_mul(0x100000001b3) ^ b as u64;
        }
        let adam = self.adam;
        self.tables
            .entry(name.to_string())
            .or_insert_with(|| EmbeddingTable::new(name, dim, h, adam))
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &EmbeddingTable)> {
        self.tables.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total materialized embedding rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(EmbeddingTable::len).sum()
    }
}

/// Register every dense parameter the encoder may need. Called once at model
/// construction; registering the superset keeps ablation configs swappable
/// without re-initialization.
pub fn register_params(config: &ModelConfig, rng: &mut impl Rng, store: &mut ParamStore) {
    let d = config.embed_dim;
    // Dense-content projection per node type.
    for ty in NodeType::ALL {
        store.register_xavier(rng, &format!("feat.{}.w", ty.name()), config.dense_dim, d);
        // Focal space mapping per type (§V-A "space mapping on focal points
        // of different types into the same latent space").
        store.register_xavier(rng, &format!("map.{}.w", ty.name()), d, d);
    }
    for layer in 1..=config.hops {
        // Zoomer edge attention (eq. 8): a ∈ R^{3d}.
        store.register_xavier(rng, &format!("att.edge.l{layer}"), 3 * d, 1);
        // GAT attention (eq. 3): a ∈ R^{2d}.
        store.register_xavier(rng, &format!("att.gat.l{layer}"), 2 * d, 1);
        // FGNN gate.
        store.register_xavier(rng, &format!("gate.l{layer}"), 2 * d, 1);
        // Combine layer.
        store.register_xavier(rng, &format!("comb.l{layer}.w"), 2 * d, d);
        store.register_zeros(&format!("comb.l{layer}.b"), 1, d);
        // MCCF components.
        store.register_xavier(rng, &format!("mccf.c1.l{layer}"), d, d);
        store.register_xavier(rng, &format!("mccf.c2.l{layer}"), d, d);
    }
    // HAN semantic attention.
    store.register_xavier(rng, "han.w_sem", d, d);
    store.register_xavier(rng, "han.q", d, 1);
    // Twin tower.
    store.register_xavier(rng, "tower.uq.w", 2 * d, d);
    store.register_zeros("tower.uq.b", 1, d);
    store.register_xavier(rng, "tower.item.w", d, d);
    store.register_zeros("tower.item.b", 1, d);
}

/// Stateless encoder over borrowed parameters/tables.
pub struct Encoder<'a> {
    pub config: &'a ModelConfig,
    pub store: &'a ParamStore,
    pub tables: &'a mut TableSet,
    pub graph: &'a HeteroGraph,
}

impl<'a> Encoder<'a> {
    /// Node feature latent matrix `H` (eq. 6 input): one row per categorical
    /// field embedding plus one row projecting the dense content vector.
    pub fn node_feature_matrix(&mut self, ctx: &mut ForwardCtx, node: NodeId) -> Var {
        let ty = self.graph.node_type(node);
        let fields = self.graph.fields(node).to_vec();
        let mut rows: Vec<Var> = Vec::with_capacity(fields.len() + 1);
        for (idx, &value) in fields.iter().enumerate() {
            let table = self.tables.get_or_create(ty, idx);
            rows.push(ctx.embed(table, value as u64));
        }
        // Dense content row: dense · W_feat.{type}.
        let dense = ctx.constant(Matrix::row_vector(self.graph.dense_feature(node)));
        let w = ctx.param(self.store, &format!("feat.{}.w", ty.name()));
        rows.push(ctx.tape.matmul(dense, w));
        ctx.tape.concat_rows(&rows)
    }

    /// The focal vector `C` (§V-A): per focal point, mean its feature rows,
    /// space-map per type, then sum.
    pub fn focal_vector(&mut self, ctx: &mut ForwardCtx, focal_nodes: &[NodeId]) -> Var {
        assert!(!focal_nodes.is_empty(), "focal vector needs at least one node");
        let mut mapped: Vec<Var> = Vec::with_capacity(focal_nodes.len());
        for &f in focal_nodes {
            let h = self.node_feature_matrix(ctx, f);
            let mean = ctx.tape.mean_rows(h);
            let ty = self.graph.node_type(f);
            let w = ctx.param(self.store, &format!("map.{}.w", ty.name()));
            mapped.push(ctx.tape.matmul(mean, w));
        }
        let mut acc = mapped[0];
        for &m in &mapped[1..] {
            acc = ctx.tape.add(acc, m);
        }
        acc
    }

    /// Self embedding of a node: feature projection (eq. 6–7) when enabled
    /// and a focal vector is present, plain mean of feature rows otherwise.
    pub fn self_embedding(
        &mut self,
        ctx: &mut ForwardCtx,
        node: NodeId,
        focal: Option<Var>,
    ) -> Var {
        let h = self.node_feature_matrix(ctx, node);
        let use_feature_attention = self.config.feature_attention
            && self.config.aggregation == Aggregation::Zoomer
            && focal.is_some();
        if use_feature_attention {
            let c = focal.expect("checked above");
            // scores = H · Cᵀ / √d → (n×1) → transpose → softmax → 1×n.
            let ct = ctx.tape.transpose(c);
            let scores = ctx.tape.matmul(h, ct);
            let scores = ctx.tape.scale(scores, 1.0 / (self.config.embed_dim as f32).sqrt());
            let scores_row = ctx.tape.transpose(scores);
            let w_c = ctx.tape.softmax_rows(scores_row);
            let z = ctx.tape.row_scale(h, w_c);
            // Sum (not mean): the softmax already normalizes total mass.
            ctx.tape.sum_rows(z)
        } else {
            ctx.tape.mean_rows(h)
        }
    }

    /// Aggregate already-encoded children into one vector, per the configured
    /// flavor. `layer` indexes the parameters (1-based, root = `hops`).
    /// Returns `None` when there are no children.
    #[allow(clippy::too_many_arguments)]
    pub fn aggregate(
        &mut self,
        ctx: &mut ForwardCtx,
        parent: NodeId,
        parent_z: Var,
        children: &[(NodeId, Var)],
        focal: Option<Var>,
        layer: usize,
    ) -> Option<Var> {
        if children.is_empty() {
            return None;
        }
        match self.config.aggregation {
            Aggregation::Mean => {
                let rows: Vec<Var> = children.iter().map(|&(_, v)| v).collect();
                Some(ctx.tape.mean_pool(&rows))
            }
            Aggregation::WeightedMean => Some(self.weighted_mean(ctx, parent, children)),
            Aggregation::Gat => {
                Some(self.pairwise_attention(ctx, parent_z, children, None, "att.gat", layer))
            }
            Aggregation::QueryAnchored => Some(self.query_anchored(ctx, children, focal)),
            Aggregation::Gated => Some(self.gated(ctx, parent_z, children, layer)),
            Aggregation::MultiComponent => {
                Some(self.multi_component(ctx, parent_z, children, layer))
            }
            Aggregation::Han => Some(self.han(ctx, parent_z, children, layer)),
            Aggregation::Zoomer => Some(self.zoomer(ctx, parent_z, children, focal, layer)),
        }
    }

    /// PinSage-style importance pooling: weights from total edge weight
    /// between parent and child in the graph (visit-count proxy).
    fn weighted_mean(
        &mut self,
        ctx: &mut ForwardCtx,
        parent: NodeId,
        children: &[(NodeId, Var)],
    ) -> Var {
        let mut weights: Vec<f32> = children
            .iter()
            .map(|&(child, _)| {
                zoomer_sampler::all_neighbors(self.graph, parent)
                    .into_iter()
                    .filter(|&(n, _, _)| n == child)
                    .map(|(_, _, w)| w)
                    .sum::<f32>()
                    .max(0.1) // walk-reached nodes may not be direct neighbors
            })
            .collect();
        let total: f32 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let stacked_rows: Vec<Var> = children.iter().map(|&(_, v)| v).collect();
        let stacked = ctx.tape.concat_rows(&stacked_rows);
        let w_row = ctx.constant(Matrix::row_vector(&weights));
        ctx.tape.matmul(w_row, stacked)
    }

    /// GAT-style (eq. 3) or focal-augmented pairwise attention over all
    /// children. When `focal` is `Some`, the focal vector is concatenated
    /// into every score input (Zoomer's eq. 8 shape).
    fn pairwise_attention(
        &mut self,
        ctx: &mut ForwardCtx,
        parent_z: Var,
        children: &[(NodeId, Var)],
        focal: Option<Var>,
        att_param: &str,
        layer: usize,
    ) -> Var {
        let a = ctx.param(self.store, &format!("{att_param}.l{layer}"));
        let mut scores: Vec<Var> = Vec::with_capacity(children.len());
        for &(_, zj) in children {
            let pair = ctx.tape.concat_cols(parent_z, zj);
            let input = match focal {
                Some(c) => ctx.tape.concat_cols(pair, c),
                None => pair,
            };
            let s = ctx.tape.matmul(input, a);
            scores.push(ctx.tape.leaky_relu(s));
        }
        let score_col = ctx.tape.concat_rows(&scores);
        let score_row = ctx.tape.transpose(score_col);
        let alpha = ctx.tape.softmax_rows(score_row);
        let stacked_rows: Vec<Var> = children.iter().map(|&(_, v)| v).collect();
        let stacked = ctx.tape.concat_rows(&stacked_rows);
        ctx.tape.matmul(alpha, stacked)
    }

    /// STAMP / GCE-GNN style: attention anchored purely on the focal (query)
    /// vector; falls back to mean pooling when no focal is available.
    fn query_anchored(
        &mut self,
        ctx: &mut ForwardCtx,
        children: &[(NodeId, Var)],
        focal: Option<Var>,
    ) -> Var {
        let Some(c) = focal else {
            let rows: Vec<Var> = children.iter().map(|&(_, v)| v).collect();
            return ctx.tape.mean_pool(&rows);
        };
        let stacked_rows: Vec<Var> = children.iter().map(|&(_, v)| v).collect();
        let stacked = ctx.tape.concat_rows(&stacked_rows);
        let ct = ctx.tape.transpose(c);
        let scores = ctx.tape.matmul(stacked, ct); // n×1
        let scores = ctx.tape.scale(scores, 1.0 / (self.config.embed_dim as f32).sqrt());
        let score_row = ctx.tape.transpose(scores);
        let alpha = ctx.tape.softmax_rows(score_row);
        ctx.tape.matmul(alpha, stacked)
    }

    /// FGNN-style gated aggregation: per-child sigmoid gate on [z_i ‖ z_j].
    fn gated(
        &mut self,
        ctx: &mut ForwardCtx,
        parent_z: Var,
        children: &[(NodeId, Var)],
        layer: usize,
    ) -> Var {
        let w = ctx.param(self.store, &format!("gate.l{layer}"));
        let mut acc: Option<Var> = None;
        for &(_, zj) in children {
            let pair = ctx.tape.concat_cols(parent_z, zj);
            let g = ctx.tape.matmul(pair, w);
            let g = ctx.tape.sigmoid(g); // 1×1
            let gated = ctx.tape.scale_by_scalar_var(zj, g);
            acc = Some(match acc {
                Some(a) => ctx.tape.add(a, gated),
                None => gated,
            });
        }
        let sum = acc.expect("children nonempty");
        ctx.tape.scale(sum, 1.0 / children.len() as f32)
    }

    /// MCCF-style two-component decomposition: each component projects the
    /// ego, scores children by dot product, and pools; components average.
    fn multi_component(
        &mut self,
        ctx: &mut ForwardCtx,
        parent_z: Var,
        children: &[(NodeId, Var)],
        layer: usize,
    ) -> Var {
        let stacked_rows: Vec<Var> = children.iter().map(|&(_, v)| v).collect();
        let stacked = ctx.tape.concat_rows(&stacked_rows);
        let mut components: Vec<Var> = Vec::with_capacity(2);
        for comp in ["c1", "c2"] {
            let w = ctx.param(self.store, &format!("mccf.{comp}.l{layer}"));
            let anchor = ctx.tape.matmul(parent_z, w); // 1×d
            let at = ctx.tape.transpose(anchor);
            let scores = ctx.tape.matmul(stacked, at); // n×1
            let score_row = ctx.tape.transpose(scores);
            let alpha = ctx.tape.softmax_rows(score_row);
            let pooled = ctx.tape.matmul(alpha, stacked);
            components.push(ctx.tape.tanh(pooled));
        }
        ctx.tape.mean_pool(&components)
    }

    /// HAN: GAT within each neighbor type (node-level attention), then a
    /// learned semantic-level attention over the per-type summaries.
    fn han(
        &mut self,
        ctx: &mut ForwardCtx,
        parent_z: Var,
        children: &[(NodeId, Var)],
        layer: usize,
    ) -> Var {
        let groups = self.group_by_type(children);
        let mut type_embs: Vec<Var> = Vec::with_capacity(groups.len());
        for group in groups.values() {
            type_embs.push(self.pairwise_attention(ctx, parent_z, group, None, "att.gat", layer));
        }
        if type_embs.len() == 1 {
            return type_embs[0];
        }
        // Semantic attention: s_k = qᵀ tanh(W_sem · E_k).
        let w_sem = ctx.param(self.store, "han.w_sem");
        let q = ctx.param(self.store, "han.q");
        let mut scores: Vec<Var> = Vec::with_capacity(type_embs.len());
        for &e in &type_embs {
            let proj = ctx.tape.matmul(e, w_sem);
            let proj = ctx.tape.tanh(proj);
            scores.push(ctx.tape.matmul(proj, q));
        }
        let score_col = ctx.tape.concat_rows(&scores);
        let score_row = ctx.tape.transpose(score_col);
        let beta = ctx.tape.softmax_rows(score_row);
        let stacked = ctx.tape.concat_rows(&type_embs);
        ctx.tape.matmul(beta, stacked)
    }

    /// Zoomer's edge reweighing (eq. 8–9, within-type, focal-conditioned)
    /// plus semantic combination (eq. 10–11), each degrading to mean pooling
    /// when its config flag is off (the §VII-C ablations).
    fn zoomer(
        &mut self,
        ctx: &mut ForwardCtx,
        parent_z: Var,
        children: &[(NodeId, Var)],
        focal: Option<Var>,
        layer: usize,
    ) -> Var {
        let groups = self.group_by_type(children);
        let mut type_embs: Vec<Var> = Vec::with_capacity(groups.len());
        for group in groups.values() {
            let e_t = if self.config.edge_attention {
                self.pairwise_attention(ctx, parent_z, group, focal, "att.edge", layer)
            } else {
                let rows: Vec<Var> = group.iter().map(|&(_, v)| v).collect();
                ctx.tape.mean_pool(&rows)
            };
            type_embs.push(e_t);
        }
        if type_embs.len() == 1 {
            return type_embs[0];
        }
        if self.config.semantic_attention {
            // eq. 10–11: t_k = cos(z_i, E_k); H = Σ E_k · t_k.
            let mut acc: Option<Var> = None;
            for &e in &type_embs {
                let t_k = ctx.tape.cosine(parent_z, e);
                let weighted = ctx.tape.scale_by_scalar_var(e, t_k);
                acc = Some(match acc {
                    Some(a) => ctx.tape.add(a, weighted),
                    None => weighted,
                });
            }
            acc.expect("type_embs nonempty")
        } else {
            ctx.tape.mean_pool(&type_embs)
        }
    }

    fn group_by_type(&self, children: &[(NodeId, Var)]) -> BTreeMap<NodeType, Vec<(NodeId, Var)>> {
        let mut groups: BTreeMap<NodeType, Vec<(NodeId, Var)>> = BTreeMap::new();
        for &(id, v) in children {
            groups.entry(self.graph.node_type(id)).or_default().push((id, v));
        }
        groups
    }

    /// Combine self embedding with the neighbor aggregate:
    /// `tanh(W·[z_self ‖ h_agg] + b)`; identity pass-through for leaves.
    pub fn combine(
        &mut self,
        ctx: &mut ForwardCtx,
        z_self: Var,
        h_agg: Option<Var>,
        layer: usize,
    ) -> Var {
        let Some(agg) = h_agg else { return z_self };
        let w = ctx.param(self.store, &format!("comb.l{layer}.w"));
        let b = ctx.param(self.store, &format!("comb.l{layer}.b"));
        let cat = ctx.tape.concat_cols(z_self, agg);
        let lin = ctx.tape.linear(cat, w, b);
        ctx.tape.tanh(lin)
    }

    /// Encode a full ROI computation tree bottom-up. Returns the root's
    /// embedding (1×d).
    pub fn encode_roi(&mut self, ctx: &mut ForwardCtx, roi: &RoiNode, focal: Option<Var>) -> Var {
        let depth = roi.depth();
        self.encode_roi_at(ctx, roi, focal, depth)
    }

    fn encode_roi_at(
        &mut self,
        ctx: &mut ForwardCtx,
        roi: &RoiNode,
        focal: Option<Var>,
        depth: usize,
    ) -> Var {
        let z_self = self.self_embedding(ctx, roi.id, focal);
        if roi.children.is_empty() || depth == 0 {
            return z_self;
        }
        let children: Vec<(NodeId, Var)> = roi
            .children
            .iter()
            .map(|c| (c.id, self.encode_roi_at(ctx, c, focal, depth - 1)))
            .collect();
        let agg = self.aggregate(ctx, roi.id, z_self, &children, focal, depth);
        self.combine(ctx, z_self, agg, depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_graph::GraphBuilder;
    use zoomer_tensor::seeded_rng;

    fn graph() -> HeteroGraph {
        let mut b = GraphBuilder::new(4);
        let u = b.add_node(NodeType::User, vec![1, 0, 2], vec![], &[1.0, 0.0, 0.0, 0.0]);
        let q = b.add_node(NodeType::Query, vec![3, 9], vec![], &[0.0, 1.0, 0.0, 0.0]);
        let i1 = b.add_node(NodeType::Item, vec![4, 3, 1, 2, 9], vec![], &[0.0, 0.0, 1.0, 0.0]);
        let i2 = b.add_node(NodeType::Item, vec![5, 3, 2, 2, 9], vec![], &[0.0, 0.0, 0.0, 1.0]);
        b.add_search_session(u, q, &[i1, i2]);
        b.finish()
    }

    fn setup(aggregation: Aggregation) -> (ModelConfig, ParamStore, TableSet) {
        let mut config = ModelConfig::zoomer(3, 4);
        config.aggregation = aggregation;
        let mut rng = seeded_rng(3);
        let mut store = ParamStore::new();
        register_params(&config, &mut rng, &mut store);
        let tables = TableSet::new(config.embed_dim, 3, SparseAdamConfig::default());
        (config, store, tables)
    }

    fn roi_two_hop() -> RoiNode {
        RoiNode {
            id: 1, // query
            children: vec![
                RoiNode { id: 2, children: vec![RoiNode { id: 3, children: vec![] }] },
                RoiNode { id: 0, children: vec![] },
            ],
        }
    }

    #[test]
    fn feature_matrix_has_field_plus_dense_rows() {
        let g = graph();
        let (config, store, mut tables) = setup(Aggregation::Zoomer);
        let mut enc = Encoder { config: &config, store: &store, tables: &mut tables, graph: &g };
        let mut ctx = ForwardCtx::new();
        let h = enc.node_feature_matrix(&mut ctx, 2); // item: 5 fields + dense
        assert_eq!(ctx.tape.value(h).shape(), (6, config.embed_dim));
        let h_user = enc.node_feature_matrix(&mut ctx, 0); // user: 3 fields
        assert_eq!(ctx.tape.value(h_user).shape(), (4, config.embed_dim));
    }

    #[test]
    fn focal_vector_shape_and_grad_flow() {
        let g = graph();
        let (config, store, mut tables) = setup(Aggregation::Zoomer);
        let mut enc = Encoder { config: &config, store: &store, tables: &mut tables, graph: &g };
        let mut ctx = ForwardCtx::new();
        let c = enc.focal_vector(&mut ctx, &[0, 1]);
        assert_eq!(ctx.tape.value(c).shape(), (1, config.embed_dim));
        let loss = ctx.tape.sum_all(c);
        let loss = ctx.tape.hadamard(loss, loss);
        let grads = ctx.tape.backward(loss);
        // Focal embeddings and both space maps must receive gradient.
        let dense = ctx.dense_gradients(&grads);
        assert!(dense.contains_key("map.user.w"));
        assert!(dense.contains_key("map.query.w"));
        let sparse = ctx.sparse_gradients(&grads);
        assert!(!sparse.is_empty());
    }

    #[test]
    fn all_aggregations_encode_a_two_hop_roi() {
        let g = graph();
        for agg in [
            Aggregation::Zoomer,
            Aggregation::Mean,
            Aggregation::Gat,
            Aggregation::Han,
            Aggregation::WeightedMean,
            Aggregation::QueryAnchored,
            Aggregation::Gated,
            Aggregation::MultiComponent,
        ] {
            let (config, store, mut tables) = setup(agg);
            let mut enc =
                Encoder { config: &config, store: &store, tables: &mut tables, graph: &g };
            let mut ctx = ForwardCtx::new();
            let focal = enc.focal_vector(&mut ctx, &[0, 1]);
            let emb = enc.encode_roi(&mut ctx, &roi_two_hop(), Some(focal));
            let val = ctx.tape.value(emb);
            assert_eq!(val.shape(), (1, config.embed_dim), "{agg:?}");
            assert!(!val.has_non_finite(), "{agg:?} produced non-finite values");
            // Must be differentiable end to end.
            let s = ctx.tape.sum_all(emb);
            let loss = ctx.tape.hadamard(s, s);
            let grads = ctx.tape.backward(loss);
            assert!(!ctx.dense_gradients(&grads).is_empty(), "{agg:?}");
        }
    }

    #[test]
    fn leaf_roi_is_self_embedding_only() {
        let g = graph();
        let (config, store, mut tables) = setup(Aggregation::Zoomer);
        let mut enc = Encoder { config: &config, store: &store, tables: &mut tables, graph: &g };
        let mut ctx = ForwardCtx::new();
        let leaf = RoiNode { id: 2, children: vec![] };
        let emb = enc.encode_roi(&mut ctx, &leaf, None);
        assert_eq!(ctx.tape.value(emb).shape(), (1, config.embed_dim));
    }

    #[test]
    fn feature_attention_changes_embedding_with_focal() {
        // With feature attention on, different focal points must induce
        // different self embeddings for the same ego node — the paper's core
        // multi-embedding claim (Fig 2).
        let g = graph();
        let (config, store, mut tables) = setup(Aggregation::Zoomer);
        let mut enc = Encoder { config: &config, store: &store, tables: &mut tables, graph: &g };
        let mut ctx = ForwardCtx::new();
        let focal_a = enc.focal_vector(&mut ctx, &[0]); // user focal
        let focal_b = enc.focal_vector(&mut ctx, &[1]); // query focal
        let za = enc.self_embedding(&mut ctx, 2, Some(focal_a));
        let zb = enc.self_embedding(&mut ctx, 2, Some(focal_b));
        let diff = ctx.tape.value(za).max_abs_diff(ctx.tape.value(zb));
        assert!(diff > 1e-6, "embeddings identical across focals");
    }

    #[test]
    fn without_feature_attention_embedding_is_focal_independent() {
        let g = graph();
        let (mut config, store, mut tables) = setup(Aggregation::Zoomer);
        config.feature_attention = false;
        let mut enc = Encoder { config: &config, store: &store, tables: &mut tables, graph: &g };
        let mut ctx = ForwardCtx::new();
        let focal_a = enc.focal_vector(&mut ctx, &[0]);
        let focal_b = enc.focal_vector(&mut ctx, &[1]);
        let za = enc.self_embedding(&mut ctx, 2, Some(focal_a));
        let zb = enc.self_embedding(&mut ctx, 2, Some(focal_b));
        assert!(ctx.tape.value(za).max_abs_diff(ctx.tape.value(zb)) < 1e-7);
    }

    #[test]
    fn table_set_namespaces_by_type_and_field() {
        let mut ts = TableSet::new(4, 1, SparseAdamConfig::default());
        let a = ts.get_or_create(NodeType::User, 0).lookup(5).to_vec();
        let b = ts.get_or_create(NodeType::Item, 0).lookup(5).to_vec();
        let c = ts.get_or_create(NodeType::User, 1).lookup(5).to_vec();
        assert_ne!(a, b, "same id in different type tables must differ");
        assert_ne!(a, c, "same id in different field tables must differ");
        assert_eq!(ts.total_rows(), 3);
    }

    #[test]
    fn edge_attention_groups_within_type() {
        // A parent with 2 item children and 1 user child: zoomer aggregation
        // with semantic off should mean-pool two per-type summaries.
        let g = graph();
        let (mut config, store, mut tables) = setup(Aggregation::Zoomer);
        config.semantic_attention = false;
        let mut enc = Encoder { config: &config, store: &store, tables: &mut tables, graph: &g };
        let mut ctx = ForwardCtx::new();
        let focal = enc.focal_vector(&mut ctx, &[0, 1]);
        let pz = enc.self_embedding(&mut ctx, 1, Some(focal));
        let c0 = enc.self_embedding(&mut ctx, 2, Some(focal));
        let c1 = enc.self_embedding(&mut ctx, 3, Some(focal));
        let c2 = enc.self_embedding(&mut ctx, 0, Some(focal));
        let agg = enc
            .aggregate(&mut ctx, 1, pz, &[(2, c0), (3, c1), (0, c2)], Some(focal), 1)
            .expect("children present");
        assert_eq!(ctx.tape.value(agg).shape(), (1, config.embed_dim));
    }
}
