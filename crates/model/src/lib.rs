//! The Zoomer model family: multi-level attention GNN + baselines.
//!
//! One configurable [`CtrModel`] implements the paper's model (§V-D: feature
//! projection, edge reweighing, semantic combination over the ROI) and every
//! baseline of §VII-A by swapping the neighbor sampler and the aggregation
//! flavor:
//!
//! | preset        | sampler            | aggregation                      |
//! |---------------|--------------------|----------------------------------|
//! | `zoomer`      | focal top-k (eq.5) | 3-level focal attention          |
//! | `gcn`         | focal top-k        | mean pooling (ablation "GCN")    |
//! | `graphsage`   | uniform            | mean + concat combine            |
//! | `gat`         | uniform            | pairwise attention (eq. 3)       |
//! | `han`         | uniform            | node-level + semantic attention  |
//! | `pinsage`     | random-walk        | importance-weighted mean         |
//! | `pinnersage`  | cluster medoids    | mean                             |
//! | `pixie`       | biased walks       | weighted mean                    |
//! | `stamp`       | 1-hop history      | query-anchored attention         |
//! | `gcegnn`      | uniform 2-hop      | session + global attention       |
//! | `fgnn`        | uniform            | gated (factor) aggregation       |
//! | `mccf`        | uniform            | two-component decomposition      |
//!
//! Ablations (§VII-C) toggle the three attention levels of the `zoomer`
//! preset: `ZOOMER-FE` (no semantic), `ZOOMER-FS` (no edge), `ZOOMER-ES`
//! (no feature projection).

pub mod checkpoint;
pub mod config;
pub mod encoder;
pub mod forward;
pub mod frozen;
pub mod model;

pub use checkpoint::{load_checkpoint, save_checkpoint};
pub use config::{Aggregation, ModelConfig, SamplerKind};
pub use forward::ForwardCtx;
pub use frozen::{neutral_topk_neighbors, FrozenModel};
pub use model::{CtrModel, UnifiedCtrModel};
