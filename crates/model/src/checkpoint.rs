//! Model checkpoints: versioned binary serialization of a trained model's
//! dense parameters and sparse embedding tables.
//!
//! The production system ships trained embeddings from XDL to the serving
//! side; this module is that handoff. Format (little-endian):
//!
//! ```text
//! magic "ZOOMCKPT" | u32 version
//! | u32 n_dense | per param: name, rows, cols, f32 data
//! | u32 n_tables | per table: name, dim, u64 n_rows, per row: u64 id + f32 data
//! ```

use std::io;

use zoomer_autograd::ParamStore;
use zoomer_tensor::Matrix;

use crate::encoder::TableSet;
use crate::model::UnifiedCtrModel;

const MAGIC: &[u8; 8] = b"ZOOMCKPT";
const VERSION: u32 = 1;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> io::Result<String> {
    let len = get_u32(buf, pos)? as usize;
    if buf.len() < *pos + len {
        return Err(bad("truncated string"));
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + len])
        .map_err(|_| bad("invalid utf-8 in name"))?
        .to_string();
    *pos += len;
    Ok(s)
}

fn get_u32(buf: &[u8], pos: &mut usize) -> io::Result<u32> {
    if buf.len() < *pos + 4 {
        return Err(bad("truncated u32"));
    }
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes"));
    *pos += 4;
    Ok(v)
}

fn get_u64(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    if buf.len() < *pos + 8 {
        return Err(bad("truncated u64"));
    }
    let v = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
    *pos += 8;
    Ok(v)
}

fn get_f32s(buf: &[u8], pos: &mut usize, n: usize) -> io::Result<Vec<f32>> {
    if buf.len() < *pos + 4 * n {
        return Err(bad("truncated f32 payload"));
    }
    let out = buf[*pos..*pos + 4 * n]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    *pos += 4 * n;
    Ok(out)
}

/// Serialize the trainable state (dense params + materialized embedding
/// rows) of a model.
pub fn save_checkpoint(model: &UnifiedCtrModel) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 << 16);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    // Dense params (deterministic order from the BTreeMap).
    let store = model.store();
    buf.extend_from_slice(&(store.len() as u32).to_le_bytes());
    for (name, m) in store.iter() {
        put_str(&mut buf, name);
        buf.extend_from_slice(&(m.rows() as u32).to_le_bytes());
        buf.extend_from_slice(&(m.cols() as u32).to_le_bytes());
        for &x in m.as_slice() {
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }
    // Embedding tables (sorted for determinism).
    let tables = model.tables();
    let mut named: Vec<(&str, _)> = tables.iter().collect();
    named.sort_by_key(|(n, _)| n.to_string());
    buf.extend_from_slice(&(named.len() as u32).to_le_bytes());
    for (name, table) in named {
        put_str(&mut buf, name);
        buf.extend_from_slice(&(table.dim() as u32).to_le_bytes());
        let rows = table.export_sorted();
        buf.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for (id, row) in rows {
            buf.extend_from_slice(&id.to_le_bytes());
            for x in row {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    buf
}

/// Restore a checkpoint into a model built with the *same* [`crate::ModelConfig`]
/// (the architecture is not serialized — configs are code).
pub fn load_checkpoint(model: &mut UnifiedCtrModel, bytes: &[u8]) -> io::Result<()> {
    let mut pos = 0usize;
    if bytes.len() < 12 || &bytes[..8] != MAGIC {
        return Err(bad("bad checkpoint magic"));
    }
    pos += 8;
    if get_u32(bytes, &mut pos)? != VERSION {
        return Err(bad("unsupported checkpoint version"));
    }
    let n_dense = get_u32(bytes, &mut pos)? as usize;
    let mut staged: Vec<(String, Matrix)> = Vec::with_capacity(n_dense);
    for _ in 0..n_dense {
        let name = get_str(bytes, &mut pos)?;
        let rows = get_u32(bytes, &mut pos)? as usize;
        let cols = get_u32(bytes, &mut pos)? as usize;
        let data = get_f32s(bytes, &mut pos, rows * cols)?;
        staged.push((name, Matrix::from_vec(rows, cols, data)));
    }
    // Validate against the model's registry before mutating anything.
    {
        let store: &ParamStore = model.store();
        for (name, m) in &staged {
            if !store.contains(name) {
                return Err(bad("checkpoint contains unknown parameter"));
            }
            if store.get(name).shape() != m.shape() {
                return Err(bad("checkpoint parameter shape mismatch"));
            }
        }
    }
    for (name, m) in staged {
        model.store_mut().set(&name, m);
    }
    let n_tables = get_u32(bytes, &mut pos)? as usize;
    for _ in 0..n_tables {
        let name = get_str(bytes, &mut pos)?;
        let dim = get_u32(bytes, &mut pos)? as usize;
        let n_rows = get_u64(bytes, &mut pos)? as usize;
        let tables: &mut TableSet = model.tables_mut();
        let table = tables.get_or_create_named(&name);
        if table.dim() != dim {
            return Err(bad("checkpoint table dim mismatch"));
        }
        for _ in 0..n_rows {
            let id = get_u64(bytes, &mut pos)?;
            let row = get_f32s(bytes, &mut pos, dim)?;
            table.set_row(id, row);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::CtrModel;
    use zoomer_data::{TaobaoConfig, TaobaoData};
    use zoomer_tensor::seeded_rng;

    fn trained_model(data: &TaobaoData) -> UnifiedCtrModel {
        let dd = data.graph.features().dense_dim();
        let mut m = UnifiedCtrModel::new(ModelConfig::zoomer(91, dd));
        let mut rng = seeded_rng(91);
        for ex in data.ctr_examples().iter().take(40) {
            let _ = m.train_step(&data.graph, ex, &mut rng);
        }
        m
    }

    #[test]
    fn roundtrip_restores_predictions() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(91));
        let mut trained = trained_model(&data);
        let bytes = save_checkpoint(&trained);
        let dd = data.graph.features().dense_dim();
        let mut config = ModelConfig::zoomer(92, dd); // different init seed
        config.focal_temperature = 0.0; // deterministic ROI for comparison
        let mut fresh = UnifiedCtrModel::new(config.clone());
        load_checkpoint(&mut fresh, &bytes).expect("load");
        // Reconfigure the trained model's sampler determinism the same way.
        let mut trained_det = UnifiedCtrModel::new(config);
        load_checkpoint(&mut trained_det, &save_checkpoint(&trained)).expect("load2");
        let ex = data.ctr_examples()[5];
        let mut r1 = seeded_rng(3);
        let mut r2 = seeded_rng(3);
        let p_restored = fresh.predict(&data.graph, &ex, &mut r1);
        let p_restored2 = trained_det.predict(&data.graph, &ex, &mut r2);
        assert!((p_restored - p_restored2).abs() < 1e-6);
        // Dense params must match exactly.
        assert!(fresh.store().max_abs_diff(trained.store()) < 1e-7);
        let _ = &mut trained;
    }

    #[test]
    fn rejects_corrupt_and_mismatched() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(93));
        let model = trained_model(&data);
        let bytes = save_checkpoint(&model);
        let dd = data.graph.features().dense_dim();

        // Bad magic.
        let mut fresh = UnifiedCtrModel::new(ModelConfig::zoomer(1, dd));
        assert!(load_checkpoint(&mut fresh, b"NOTACKPT").is_err());

        // Truncations at many prefixes must error, never panic.
        for cut in [0, 8, 12, 20, bytes.len() / 2, bytes.len() - 3] {
            let mut fresh = UnifiedCtrModel::new(ModelConfig::zoomer(1, dd));
            assert!(load_checkpoint(&mut fresh, &bytes[..cut]).is_err(), "cut {cut} should fail");
        }

        // Architecture mismatch (different embed_dim) must be rejected and
        // leave the target model's dense params untouched.
        let mut other_cfg = ModelConfig::zoomer(1, dd);
        other_cfg.embed_dim = 8;
        let mut other = UnifiedCtrModel::new(other_cfg);
        let before = other.store().snapshot();
        assert!(load_checkpoint(&mut other, &bytes).is_err());
        assert!(other.store().max_abs_diff(&before) < 1e-9, "partial load applied");
    }

    #[test]
    fn checkpoint_is_deterministic() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(94));
        let model = trained_model(&data);
        assert_eq!(save_checkpoint(&model), save_checkpoint(&model));
    }
}
