//! A frozen, thread-safe snapshot of a trained model for the serving path.
//!
//! §VII-E: online, Zoomer decouples neighbor sampling from aggregation via
//! caches and "only conserves the most effective attention part —
//! edge-level attention". This snapshot precomputes every node's base
//! embedding (feature embeddings + dense projection, no tape) and keeps just
//! the parameter matrices the online path needs, so request handling is pure
//! `&self` f32 math — shareable across server threads.
//!
//! The API is batch-first: [`FrozenModel::embed_requests`] and
//! [`FrozenModel::item_embeddings`] stack their inputs as matrix rows and run
//! each tower layer as one batched matmul. The single-request methods are
//! thin wrappers over a batch of one, so serving, offline eval, and the
//! benches all exercise the same code path.
//!
//! The heavy math here routes through `zoomer_tensor`'s blocked compute
//! kernels without any code in this module knowing about them: tower layers
//! hit the fused `matmul_bias` GEMM (`zoomer_tensor::kernel`), and
//! edge-attention / focal scoring use the unrolled multi-accumulator `dot`.
//! Those kernels are bit-identical to the naive reference, so frozen-model
//! outputs are unchanged by the acceleration (see DESIGN.md, "Compute
//! kernels").

use rand_chacha::ChaCha8Rng;
use zoomer_graph::{HeteroGraph, NodeId, NodeType, Query};
use zoomer_sampler::{FocalBiasedSampler, FocalContext, NeighborSampler};
use zoomer_tensor::numerics::leaky_relu;
use zoomer_tensor::{dot, seeded_rng, stable_softmax, Matrix};

use crate::encoder::TableSet;
use crate::{CtrModel, UnifiedCtrModel};

/// Deterministic neutral-focal top-k neighborhood of a node: the focal
/// context is the node's own features, the sampler is the deterministic
/// top-k focal sampler, and the RNG is seeded by the node id (it only
/// matters at `temperature > 0`, which this helper never uses).
///
/// This is the shared neighborhood definition for every offline consumer of
/// a [`FrozenModel`]: the serving neighbor cache, `warm_cache`, and the
/// HitRate@K evaluation all call it, so a cache entry never depends on which
/// request happened to materialize it.
pub fn neutral_topk_neighbors(graph: &HeteroGraph, node: NodeId, k: usize) -> Vec<NodeId> {
    let ctx = FocalContext::from_nodes(graph, &[node]);
    let mut rng: ChaCha8Rng = seeded_rng(node as u64);
    FocalBiasedSampler::default().sample(graph, node, &ctx, k, &mut rng)
}

/// Frozen parameters + precomputed node embeddings. `Clone` is a deep copy
/// (snapshots are plain buffers) so harnesses can build several servers from
/// one trained model.
#[derive(Clone)]
pub struct FrozenModel {
    embed_dim: usize,
    /// Base (self) embedding per node id.
    node_base: Vec<Vec<f32>>,
    /// Space-map matrix per node type (focal construction).
    map_w: Vec<Matrix>,
    /// `aᵀ[0..d] · z_n` per node: the ego part of the edge-attention logit,
    /// precomputed so the online score is three adds instead of a 3d-dot.
    att_self: Vec<f32>,
    /// `aᵀ[d..2d] · z_n` per node: the neighbor part of the logit.
    att_nbr: Vec<f32>,
    /// `aᵀ[2d..3d]`: the focal part, dotted with the request focal vector.
    att_focal: Vec<f32>,
    /// Combine layer (layer 1).
    comb_w: Matrix,
    comb_b: Vec<f32>,
    /// Twin towers.
    uq_w: Matrix,
    uq_b: Vec<f32>,
    item_w: Matrix,
    item_b: Vec<f32>,
}

impl FrozenModel {
    /// Snapshot a trained model against its graph.
    pub fn from_model(model: &mut UnifiedCtrModel, graph: &HeteroGraph) -> Self {
        let d = model.config().embed_dim;
        let store = model.store();
        let map_w: Vec<Matrix> = NodeType::ALL
            .iter()
            .map(|t| store.get(&format!("map.{}.w", t.name())).clone())
            .collect();
        let att_edge = store.get("att.edge.l1").as_slice().to_vec();
        assert_eq!(att_edge.len(), 3 * d, "edge attention vector must be 3d");
        let comb_w = store.get("comb.l1.w").clone();
        let comb_b = store.get("comb.l1.b").as_slice().to_vec();
        let uq_w = store.get("tower.uq.w").clone();
        let uq_b = store.get("tower.uq.b").as_slice().to_vec();
        let item_w = store.get("tower.item.w").clone();
        let item_b = store.get("tower.item.b").as_slice().to_vec();
        // Dense projections, needed before the mutable-borrow loop below.
        let feat_w: Vec<Matrix> = NodeType::ALL
            .iter()
            .map(|t| store.get(&format!("feat.{}.w", t.name())).clone())
            .collect();

        let mut node_base = Vec::with_capacity(graph.num_nodes());
        for n in 0..graph.num_nodes() as NodeId {
            let ty = graph.node_type(n);
            let fields = graph.fields(n);
            let mut acc = vec![0.0f32; d];
            for (idx, &value) in fields.iter().enumerate() {
                let name = TableSet::table_name(ty, idx);
                let row = model.tables_mut().get_or_create_named(&name).peek(value as u64);
                for (a, &x) in acc.iter_mut().zip(&row) {
                    *a += x;
                }
            }
            // Dense-projection row.
            let dense = Matrix::row_vector(graph.dense_feature(n));
            let proj = dense.matmul(&feat_w[ty.as_u8() as usize]);
            for (a, &x) in acc.iter_mut().zip(proj.as_slice()) {
                *a += x;
            }
            // Mean over (fields + 1) rows — matches the offline
            // self-embedding without feature attention.
            let inv = 1.0 / (fields.len() + 1) as f32;
            for a in &mut acc {
                *a *= inv;
            }
            node_base.push(acc);
        }
        // Fold the per-node halves of the attention logit into scalars.
        let att_self = node_base.iter().map(|z| dot(&att_edge[..d], z)).collect();
        let att_nbr = node_base.iter().map(|z| dot(&att_edge[d..2 * d], z)).collect();
        let att_focal = att_edge[2 * d..].to_vec();
        Self {
            embed_dim: d,
            node_base,
            map_w,
            att_self,
            att_nbr,
            att_focal,
            comb_w,
            comb_b,
            uq_w,
            uq_b,
            item_w,
            item_b,
        }
    }

    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    pub fn num_nodes(&self) -> usize {
        self.node_base.len()
    }

    /// The precomputed base embedding of a node.
    pub fn base(&self, n: NodeId) -> &[f32] {
        &self.node_base[n as usize]
    }

    /// Focal vector for an arbitrary focal set: space-mapped base
    /// embeddings, summed.
    pub fn focal_vector(&self, graph: &HeteroGraph, focals: &[NodeId]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.embed_dim];
        for &f in focals {
            let ty = graph.node_type(f);
            let mapped = Matrix::row_vector(self.base(f)).matmul(&self.map_w[ty.as_u8() as usize]);
            for (a, &x) in acc.iter_mut().zip(mapped.as_slice()) {
                *a += x;
            }
        }
        acc
    }

    /// Focal vectors for a batch of `(user, query)` requests, one row per
    /// request. Rows are grouped by node type so each space-map matrix is
    /// applied as a single stacked matmul over every node of that type in
    /// the batch.
    pub fn focal_vectors(&self, graph: &HeteroGraph, pairs: &[(NodeId, NodeId)]) -> Matrix {
        let d = self.embed_dim;
        let mut out = Matrix::zeros(pairs.len(), d);
        for ty in NodeType::ALL {
            let mut targets: Vec<usize> = Vec::new();
            let mut stacked: Vec<f32> = Vec::new();
            for (r, &(u, q)) in pairs.iter().enumerate() {
                for n in [u, q] {
                    if graph.node_type(n).as_u8() == ty.as_u8() {
                        targets.push(r);
                        stacked.extend_from_slice(self.base(n));
                    }
                }
            }
            if targets.is_empty() {
                continue;
            }
            let bases = Matrix::from_vec(targets.len(), d, stacked);
            let mapped = bases.matmul(&self.map_w[ty.as_u8() as usize]);
            for (i, &r) in targets.iter().enumerate() {
                for (a, &x) in out.row_mut(r).iter_mut().zip(mapped.row(i)) {
                    *a += x;
                }
            }
        }
        out
    }

    /// Edge-level attention weights of `neighbors` for ego `node` under the
    /// focal vector — the only attention kept online (§VII-E). Per neighbor
    /// this is three adds on precomputed dot products.
    pub fn edge_attention(&self, node: NodeId, neighbors: &[NodeId], focal: &[f32]) -> Vec<f32> {
        let si = self.att_self[node as usize];
        let fc = dot(&self.att_focal, focal);
        let scores: Vec<f32> =
            neighbors.iter().map(|&j| leaky_relu(si + self.att_nbr[j as usize] + fc)).collect();
        stable_softmax(&scores)
    }

    /// Write `[z_node ‖ Σ αⱼ z_j]` into a (pre-zeroed) `2d`-wide row: the
    /// input row of the combine layer for one one-hop tower.
    fn fill_hop_row(&self, row: &mut [f32], node: NodeId, neighbors: &[NodeId], focal: &[f32]) {
        let d = self.embed_dim;
        row[..d].copy_from_slice(self.base(node));
        if neighbors.is_empty() {
            return;
        }
        let alpha = self.edge_attention(node, neighbors, focal);
        let agg = &mut row[d..];
        for (&j, &w) in neighbors.iter().zip(&alpha) {
            for (a, &x) in agg.iter_mut().zip(self.base(j)) {
                *a += w * x;
            }
        }
    }

    /// One-hop online node embedding: edge attention over cached neighbors,
    /// then the combine layer. Falls back to the base embedding for isolated
    /// nodes.
    pub fn online_embedding(&self, node: NodeId, neighbors: &[NodeId], focal: &[f32]) -> Vec<f32> {
        if neighbors.is_empty() {
            return self.base(node).to_vec();
        }
        let mut cat = vec![0.0f32; 2 * self.embed_dim];
        self.fill_hop_row(&mut cat, node, neighbors, focal);
        let mut lin = Matrix::row_vector(&cat).matmul_bias(&self.comb_w, &self.comb_b);
        lin.map_inplace(f32::tanh);
        lin.into_vec()
    }

    /// Batched request-side embedding: one row per [`Query`], with
    /// `neighbors[i]` the (cached) user/query neighborhoods of query `i`.
    /// Only the focal `user`/`query` nodes are read — tenant and top-k are
    /// serving-plane metadata this layer ignores. Every layer runs as a
    /// single matmul over the stacked batch: the combine layer over all
    /// `2B` one-hop towers at once, then the UQ tower over the `B`
    /// concatenated pairs. Rows are independent, so a batch of one is
    /// exactly the single-request forward.
    pub fn embed_requests(
        &self,
        graph: &HeteroGraph,
        queries: &[Query],
        neighbors: &[(&[NodeId], &[NodeId])],
    ) -> Matrix {
        let d = self.embed_dim;
        let b = queries.len();
        assert_eq!(neighbors.len(), b, "embed_requests: query/neighbor length mismatch");
        if b == 0 {
            return Matrix::zeros(0, d);
        }
        let pairs: Vec<(NodeId, NodeId)> = queries.iter().map(Query::pair).collect();
        let focal = self.focal_vectors(graph, &pairs);
        // Stack the combine-layer inputs of all 2B one-hop towers:
        // row 2i is the user tower of query i, row 2i+1 the query tower.
        let mut cat = Matrix::zeros(2 * b, 2 * d);
        for (i, (&(u, q), &(un, qn))) in pairs.iter().zip(neighbors).enumerate() {
            let c = focal.row(i);
            self.fill_hop_row(cat.row_mut(2 * i), u, un, c);
            self.fill_hop_row(cat.row_mut(2 * i + 1), q, qn, c);
        }
        let mut hop = cat.matmul_bias(&self.comb_w, &self.comb_b);
        hop.map_inplace(f32::tanh);
        // Isolated nodes bypass the combine layer and keep their base.
        for (i, &(u, q)) in pairs.iter().enumerate() {
            let (un, qn) = neighbors[i];
            if un.is_empty() {
                hop.row_mut(2 * i).copy_from_slice(self.base(u));
            }
            if qn.is_empty() {
                hop.row_mut(2 * i + 1).copy_from_slice(self.base(q));
            }
        }
        // UQ tower over the stacked [z_user ‖ z_query] rows.
        let mut uq_in = Matrix::zeros(b, 2 * d);
        for i in 0..b {
            let row = uq_in.row_mut(i);
            row[..d].copy_from_slice(hop.row(2 * i));
            row[d..].copy_from_slice(hop.row(2 * i + 1));
        }
        uq_in.matmul_bias(&self.uq_w, &self.uq_b)
    }

    /// Request-side embedding for a single pair: a batch of one through
    /// [`Self::embed_requests`].
    pub fn request_embedding(
        &self,
        graph: &HeteroGraph,
        user: NodeId,
        query: NodeId,
        user_neighbors: &[NodeId],
        query_neighbors: &[NodeId],
    ) -> Vec<f32> {
        self.embed_requests(graph, &[Query::new(user, query)], &[(user_neighbors, query_neighbors)])
            .into_vec()
    }

    /// Item-side embeddings for the ANN index, one row per item, as a
    /// single stacked matmul through the item tower.
    pub fn item_embeddings(&self, items: &[NodeId]) -> Matrix {
        let d = self.embed_dim;
        let mut bases = Matrix::zeros(items.len(), d);
        for (r, &i) in items.iter().enumerate() {
            bases.row_mut(r).copy_from_slice(self.base(i));
        }
        bases.matmul_bias(&self.item_w, &self.item_b)
    }

    /// Item-side embedding for one item: a batch of one through
    /// [`Self::item_embeddings`].
    pub fn item_embedding(&self, item: NodeId) -> Vec<f32> {
        self.item_embeddings(&[item]).into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;
    use zoomer_data::{TaobaoConfig, TaobaoData};

    fn setup() -> (TaobaoData, FrozenModel) {
        let data = TaobaoData::generate(TaobaoConfig::tiny(71));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(7, dd));
        let frozen = FrozenModel::from_model(&mut model, &data.graph);
        (data, frozen)
    }

    #[test]
    fn snapshot_covers_all_nodes() {
        let (data, frozen) = setup();
        assert_eq!(frozen.num_nodes(), data.graph.num_nodes());
        assert_eq!(frozen.embed_dim(), 16);
        for n in 0..data.graph.num_nodes() as NodeId {
            assert_eq!(frozen.base(n).len(), 16);
            assert!(frozen.base(n).iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn item_embedding_matches_offline_tower() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(72));
        let dd = data.graph.features().dense_dim();
        let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(8, dd));
        let item = data.first_item_node();
        let offline = model.item_embedding(&data.graph, item);
        let frozen = FrozenModel::from_model(&mut model, &data.graph);
        let online = frozen.item_embedding(item);
        for (a, b) in offline.iter().zip(&online) {
            assert!((a - b).abs() < 1e-5, "offline {a} vs frozen {b}");
        }
    }

    #[test]
    fn edge_attention_is_distribution() {
        let (data, frozen) = setup();
        let items = data.item_nodes();
        let focal = frozen.focal_vector(&data.graph, &[0, data.config.num_users as NodeId]);
        let alpha = frozen.edge_attention(0, &items[..6], &focal);
        assert_eq!(alpha.len(), 6);
        assert!((alpha.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn isolated_node_falls_back_to_base() {
        let (data, frozen) = setup();
        let focal = frozen.focal_vector(&data.graph, &[0]);
        let emb = frozen.online_embedding(0, &[], &focal);
        assert_eq!(emb, frozen.base(0).to_vec());
    }

    #[test]
    fn request_embedding_depends_on_neighbors() {
        let (data, frozen) = setup();
        let u = 0 as NodeId;
        let q = data.config.num_users as NodeId;
        let items = data.item_nodes();
        let a = frozen.request_embedding(&data.graph, u, q, &items[..3], &items[..3]);
        let b = frozen.request_embedding(&data.graph, u, q, &items[3..6], &items[3..6]);
        assert_eq!(a.len(), frozen.embed_dim());
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6, "neighbors should influence the request embedding");
    }

    #[test]
    fn batched_requests_match_single_requests() {
        let (data, frozen) = setup();
        let nu = data.config.num_users as NodeId;
        let items = data.item_nodes();
        let pairs: Vec<(NodeId, NodeId)> =
            vec![(0, nu), (1, nu + 1), (2, nu), (0, nu + 1), (1, nu)];
        let neighbors: Vec<(&[NodeId], &[NodeId])> = vec![
            (&items[..3], &items[3..6]),
            (&items[..0], &items[..4]),
            (&items[2..5], &items[..0]),
            (&items[..6], &items[..6]),
            (&items[..0], &items[..0]),
        ];
        let queries: Vec<Query> = pairs.iter().map(|&p| Query::from(p)).collect();
        let batched = frozen.embed_requests(&data.graph, &queries, &neighbors);
        assert_eq!(batched.shape(), (pairs.len(), frozen.embed_dim()));
        for (i, (&(u, q), &(un, qn))) in pairs.iter().zip(&neighbors).enumerate() {
            let single = frozen.request_embedding(&data.graph, u, q, un, qn);
            assert_eq!(batched.row(i), single.as_slice(), "row {i} diverges");
        }
    }

    #[test]
    fn batched_items_match_single_items() {
        let (data, frozen) = setup();
        let items = data.item_nodes();
        let batched = frozen.item_embeddings(&items[..8]);
        for (r, &i) in items[..8].iter().enumerate() {
            assert_eq!(batched.row(r), frozen.item_embedding(i).as_slice());
        }
    }

    #[test]
    fn batched_focal_vectors_match_single() {
        let (data, frozen) = setup();
        let nu = data.config.num_users as NodeId;
        let pairs = [(0, nu), (2, nu + 1), (1, nu)];
        let batched = frozen.focal_vectors(&data.graph, &pairs);
        for (r, &(u, q)) in pairs.iter().enumerate() {
            assert_eq!(batched.row(r), frozen.focal_vector(&data.graph, &[u, q]).as_slice());
        }
    }

    #[test]
    fn neutral_topk_is_deterministic_and_bounded() {
        let (data, _) = setup();
        let a = neutral_topk_neighbors(&data.graph, 0, 5);
        let b = neutral_topk_neighbors(&data.graph, 0, 5);
        assert_eq!(a, b);
        assert!(a.len() <= 5);
    }

    #[test]
    fn frozen_model_is_shareable_across_threads() {
        let (data, frozen) = setup();
        let frozen = std::sync::Arc::new(frozen);
        let q = data.config.num_users as NodeId;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let f = std::sync::Arc::clone(&frozen);
                scope.spawn(move || {
                    let focal = vec![0.1f32; f.embed_dim()];
                    for n in 0..50 as NodeId {
                        let _ = f.online_embedding(n, &[q], &focal);
                    }
                });
            }
        });
    }
}
