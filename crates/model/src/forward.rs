//! Per-example forward context: a tape plus the bookkeeping that maps tape
//! leaves back to named dense parameters and embedding-table rows, so the
//! trainer can route gradients after the backward sweep.

use std::collections::HashMap;

use zoomer_autograd::{EmbeddingTable, Gradients, ParamStore, Tape, Var};
use zoomer_tensor::Matrix;

/// Tape + parameter-use bookkeeping for one example.
pub struct ForwardCtx {
    pub tape: Tape,
    /// Dense parameter name → the single leaf var holding it on this tape.
    dense_uses: HashMap<String, Var>,
    /// (table name, row id) → leaf var.
    embed_uses: HashMap<(String, u64), Var>,
}

impl Default for ForwardCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl ForwardCtx {
    pub fn new() -> Self {
        Self { tape: Tape::new(), dense_uses: HashMap::new(), embed_uses: HashMap::new() }
    }

    /// Leaf a dense parameter onto the tape (deduplicated per name, so a
    /// parameter used many times accumulates all its gradient on one leaf).
    pub fn param(&mut self, store: &ParamStore, name: &str) -> Var {
        if let Some(&v) = self.dense_uses.get(name) {
            return v;
        }
        let v = self.tape.leaf(store.get(name).clone());
        self.dense_uses.insert(name.to_string(), v);
        v
    }

    /// Leaf an embedding row onto the tape (deduplicated per (table, id)).
    pub fn embed(&mut self, table: &mut EmbeddingTable, id: u64) -> Var {
        let key = (table.name().to_string(), id);
        if let Some(&v) = self.embed_uses.get(&key) {
            return v;
        }
        let v = self.tape.leaf(table.lookup_matrix(id));
        self.embed_uses.insert(key, v);
        v
    }

    /// Leaf a constant (no gradient routing).
    pub fn constant(&mut self, m: Matrix) -> Var {
        self.tape.leaf(m)
    }

    /// Dense gradients by parameter name (only names that received gradient).
    pub fn dense_gradients(&self, grads: &Gradients) -> HashMap<String, Matrix> {
        self.dense_uses
            .iter()
            .filter_map(|(name, &v)| grads.get(v).map(|g| (name.clone(), g.clone())))
            .collect()
    }

    /// Sparse gradients grouped by table name → (row id → gradient row).
    pub fn sparse_gradients(&self, grads: &Gradients) -> HashMap<String, HashMap<u64, Vec<f32>>> {
        let mut out: HashMap<String, HashMap<u64, Vec<f32>>> = HashMap::new();
        for ((table, id), &v) in &self.embed_uses {
            if let Some(g) = grads.get(v) {
                out.entry(table.clone()).or_default().insert(*id, g.as_slice().to_vec());
            }
        }
        out
    }

    /// Number of distinct dense parameters touched.
    pub fn num_dense_uses(&self) -> usize {
        self.dense_uses.len()
    }

    /// Number of distinct embedding rows touched.
    pub fn num_embed_uses(&self) -> usize {
        self.embed_uses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_autograd::embedding::SparseAdamConfig;

    #[test]
    fn param_leaves_are_deduplicated() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::full(1, 2, 1.0));
        let mut ctx = ForwardCtx::new();
        let a = ctx.param(&store, "w");
        let b = ctx.param(&store, "w");
        assert_eq!(a, b);
        assert_eq!(ctx.num_dense_uses(), 1);
    }

    #[test]
    fn embed_leaves_are_deduplicated_per_id() {
        let mut t = EmbeddingTable::new("e", 4, 1, SparseAdamConfig::default());
        let mut ctx = ForwardCtx::new();
        let a = ctx.embed(&mut t, 5);
        let b = ctx.embed(&mut t, 5);
        let c = ctx.embed(&mut t, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(ctx.num_embed_uses(), 2);
    }

    #[test]
    fn gradient_routing_by_name_and_id() {
        let mut store = ParamStore::new();
        store.register("w", Matrix::full(1, 2, 2.0));
        let mut t = EmbeddingTable::new("e", 2, 1, SparseAdamConfig::default());
        let mut ctx = ForwardCtx::new();
        let w = ctx.param(&store, "w");
        let e = ctx.embed(&mut t, 9);
        // loss = sum(w ⊙ e): dL/dw = e, dL/de = w.
        let prod = ctx.tape.hadamard(w, e);
        let loss = ctx.tape.sum_all(prod);
        let grads = ctx.tape.backward(loss);
        let dense = ctx.dense_gradients(&grads);
        assert_eq!(dense.len(), 1);
        assert_eq!(dense["w"].as_slice(), t.lookup(9));
        let sparse = ctx.sparse_gradients(&grads);
        assert_eq!(sparse["e"][&9], vec![2.0, 2.0]);
    }

    #[test]
    fn unused_params_receive_no_gradient() {
        let mut store = ParamStore::new();
        store.register("used", Matrix::full(1, 1, 1.0));
        store.register("unused", Matrix::full(1, 1, 1.0));
        let mut ctx = ForwardCtx::new();
        let u = ctx.param(&store, "used");
        let _ = ctx.param(&store, "unused");
        let loss = ctx.tape.sum_all(u);
        let grads = ctx.tape.backward(loss);
        let dense = ctx.dense_gradients(&grads);
        assert!(dense.contains_key("used"));
        assert!(!dense.contains_key("unused"));
    }
}
