//! The end-to-end CTR model: ROI sampling → GNN towers → twin-tower scoring
//! → focal cross-entropy, with gradient application.

use rand_chacha::ChaCha8Rng;
use zoomer_autograd::embedding::SparseAdamConfig;
use zoomer_autograd::{Adam, Optimizer, ParamStore, Var};
use zoomer_data::RetrievalExample;
use zoomer_graph::{HeteroGraph, NodeId};
use zoomer_sampler::{build_roi, FocalContext, NeighborSampler, RoiNode};
use zoomer_tensor::{seeded_rng, sigmoid};

use crate::config::{Aggregation, ModelConfig};
use crate::encoder::{register_params, Encoder, TableSet};
use crate::forward::ForwardCtx;

/// A trainable CTR model over a heterogeneous graph.
pub trait CtrModel {
    fn name(&self) -> &str;
    fn config(&self) -> &ModelConfig;

    /// One SGD step on one example; returns the loss.
    fn train_step(
        &mut self,
        graph: &HeteroGraph,
        ex: &RetrievalExample,
        rng: &mut ChaCha8Rng,
    ) -> f32;

    /// Predicted click probability (no parameter update).
    fn predict(&mut self, graph: &HeteroGraph, ex: &RetrievalExample, rng: &mut ChaCha8Rng) -> f32;

    /// The user-query tower embedding for a request (retrieval-side vector).
    fn uq_embedding(
        &mut self,
        graph: &HeteroGraph,
        user: NodeId,
        query: NodeId,
        rng: &mut ChaCha8Rng,
    ) -> Vec<f32>;

    /// The item tower embedding (base item model, §V-B online deployment).
    fn item_embedding(&mut self, graph: &HeteroGraph, item: NodeId) -> Vec<f32>;

    /// Override the sampling fan-out `k` (Fig 11 sweeps this).
    fn set_fanout(&mut self, k: usize);

    /// Override the GNN depth.
    fn set_hops(&mut self, hops: usize);

    /// One optimizer step on an accumulated minibatch; returns the mean
    /// loss. Default: sequential single-example steps (correct for models
    /// without cross-example gradient accumulation).
    fn train_batch(
        &mut self,
        graph: &HeteroGraph,
        batch: &[RetrievalExample],
        rng: &mut ChaCha8Rng,
    ) -> f32 {
        assert!(!batch.is_empty(), "empty minibatch");
        batch.iter().map(|ex| self.train_step(graph, ex, rng)).sum::<f32>() / batch.len() as f32
    }

    /// Freeze into a thread-safe serving snapshot (§VII-E): precomputed
    /// base embeddings plus the few parameter matrices the online path
    /// keeps. The snapshot is the shared batched embedding entry point for
    /// serving and offline HitRate@K evaluation.
    fn freeze(&mut self, graph: &HeteroGraph) -> crate::frozen::FrozenModel;

    /// Adjust the dense-parameter learning rate (LR schedules). Default: no-op.
    fn set_learning_rate(&mut self, _lr: f32) {}

    /// The base learning rate from the model config.
    fn base_learning_rate(&self) -> f32 {
        self.config().lr
    }
}

/// The configurable model implementing Zoomer and every baseline preset.
pub struct UnifiedCtrModel {
    config: ModelConfig,
    store: ParamStore,
    tables: TableSet,
    sampler: Box<dyn NeighborSampler>,
    optimizer: Adam,
}

impl UnifiedCtrModel {
    pub fn new(config: ModelConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let mut store = ParamStore::new();
        register_params(&config, &mut rng, &mut store);
        let tables = TableSet::new(
            config.embed_dim,
            config.seed ^ 0xE5B,
            SparseAdamConfig {
                lr: config.lr,
                weight_decay: config.weight_decay,
                ..Default::default()
            },
        );
        let sampler: Box<dyn NeighborSampler> = match config.sampler {
            crate::config::SamplerKind::Focal if config.focal_temperature > 0.0 => {
                Box::new(zoomer_sampler::FocalBiasedSampler::stochastic(config.focal_temperature))
            }
            other => other.build(),
        };
        let optimizer = Adam::new(config.lr).with_weight_decay(config.weight_decay);
        Self { config, store, tables, sampler, optimizer }
    }

    /// Focal nodes used by the attention modules for this request (§V-B:
    /// the `{u_k, q_k}` pair; query-anchored baselines use only the query;
    /// focal-blind baselines use none).
    fn attention_focals(&self, ex: &RetrievalExample) -> Vec<NodeId> {
        match self.config.aggregation {
            Aggregation::Zoomer => vec![ex.user, ex.query],
            Aggregation::QueryAnchored => vec![ex.query],
            _ => Vec::new(),
        }
    }

    /// Sample the ROI trees for the user and query ego nodes.
    fn sample_rois(
        &self,
        graph: &HeteroGraph,
        ex: &RetrievalExample,
        rng: &mut ChaCha8Rng,
    ) -> (RoiNode, RoiNode) {
        let focal = FocalContext::for_request(graph, ex.user, ex.query);
        let user_roi = build_roi(
            graph,
            ex.user,
            &focal,
            self.sampler.as_ref(),
            self.config.hops,
            self.config.fanout,
            rng,
        );
        let query_roi = build_roi(
            graph,
            ex.query,
            &focal,
            self.sampler.as_ref(),
            self.config.hops,
            self.config.fanout,
            rng,
        );
        (user_roi, query_roi)
    }

    /// Forward one example; returns the context and the score logit var.
    pub fn forward(
        &mut self,
        graph: &HeteroGraph,
        ex: &RetrievalExample,
        rng: &mut ChaCha8Rng,
    ) -> (ForwardCtx, Var) {
        let (user_roi, query_roi) = self.sample_rois(graph, ex, rng);
        let focal_nodes = self.attention_focals(ex);
        let mut ctx = ForwardCtx::new();
        let mut enc =
            Encoder { config: &self.config, store: &self.store, tables: &mut self.tables, graph };
        let focal = if focal_nodes.is_empty() {
            None
        } else {
            Some(enc.focal_vector(&mut ctx, &focal_nodes))
        };
        let zu = enc.encode_roi(&mut ctx, &user_roi, focal);
        let zq = enc.encode_roi(&mut ctx, &query_roi, focal);
        // User-query tower.
        let w_uq = ctx.param(&self.store, "tower.uq.w");
        let b_uq = ctx.param(&self.store, "tower.uq.b");
        let cat = ctx.tape.concat_cols(zu, zq);
        let uq = ctx.tape.linear(cat, w_uq, b_uq);
        // Item tower: base item model, no focal, no graph expansion.
        let mut enc =
            Encoder { config: &self.config, store: &self.store, tables: &mut self.tables, graph };
        let zi = enc.self_embedding(&mut ctx, ex.item, None);
        let w_it = ctx.param(&self.store, "tower.item.w");
        let b_it = ctx.param(&self.store, "tower.item.b");
        let item = ctx.tape.linear(zi, w_it, b_it);
        // Score = dot(uq, item).
        let logit = ctx.tape.dot(uq, item);
        (ctx, logit)
    }

    /// One optimizer step on an accumulated minibatch (the paper trains with
    /// batch size 1024): forward/backward every example, sum the gradients,
    /// then apply a single dense-Adam / sparse-lazy-Adam update. Returns the
    /// mean loss.
    pub fn train_batch(
        &mut self,
        graph: &HeteroGraph,
        batch: &[RetrievalExample],
        rng: &mut ChaCha8Rng,
    ) -> f32 {
        assert!(!batch.is_empty(), "empty minibatch");
        let gamma = self.config.focal_gamma;
        let scale = 1.0 / batch.len() as f32;
        let mut dense_acc: std::collections::HashMap<String, zoomer_tensor::Matrix> =
            std::collections::HashMap::new();
        let mut sparse_acc: std::collections::HashMap<
            String,
            std::collections::HashMap<u64, Vec<f32>>,
        > = std::collections::HashMap::new();
        let mut loss_sum = 0.0f32;
        for ex in batch {
            let (mut ctx, logit) = self.forward(graph, ex, rng);
            let loss = ctx.tape.focal_bce_with_logits(logit, ex.label, gamma);
            loss_sum += ctx.tape.scalar(loss);
            let grads = ctx.tape.backward(loss);
            for (name, g) in ctx.dense_gradients(&grads) {
                match dense_acc.entry(name) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().axpy(scale, &g);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(g.scale(scale));
                    }
                }
            }
            for (table, rows) in ctx.sparse_gradients(&grads) {
                let acc = sparse_acc.entry(table).or_default();
                for (id, g) in rows {
                    match acc.entry(id) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            for (a, &x) in e.get_mut().iter_mut().zip(&g) {
                                *a += scale * x;
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(g.iter().map(|&x| x * scale).collect());
                        }
                    }
                }
            }
        }
        for (name, grad) in &dense_acc {
            self.optimizer.step(&mut self.store, name, grad);
        }
        for (table_name, rows) in &sparse_acc {
            if let Some(table) = self.tables.by_name_mut(table_name) {
                table.apply_sparse(rows);
            }
        }
        loss_sum / batch.len() as f32
    }

    /// Parameter store (exposed for the parameter-server simulation).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    pub fn tables(&self) -> &TableSet {
        &self.tables
    }

    pub fn tables_mut(&mut self) -> &mut TableSet {
        &mut self.tables
    }

    /// Total trainable scalars (dense + materialized embedding rows).
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars() + self.tables.total_rows() * self.config.embed_dim
    }

    /// Sampler name (reported in efficiency tables).
    pub fn sampler_name(&self) -> &'static str {
        self.sampler.name()
    }

    /// Fig 13 interpretability: the edge-attention coupling coefficients the
    /// model assigns to `neighbors` of `ego` under the given focal pair.
    /// Uses the layer-1 attention parameters; neighbors are scored as one
    /// group (Fig 13 inspects a single neighbor type).
    pub fn coupling_coefficients(
        &mut self,
        graph: &HeteroGraph,
        ego: NodeId,
        neighbors: &[NodeId],
        focal_nodes: &[NodeId],
    ) -> Vec<f32> {
        assert!(!neighbors.is_empty(), "need at least one neighbor");
        let mut ctx = ForwardCtx::new();
        let mut enc =
            Encoder { config: &self.config, store: &self.store, tables: &mut self.tables, graph };
        let focal_var = enc.focal_vector(&mut ctx, focal_nodes);
        let focal = Some(focal_var);
        let z_i = enc.self_embedding(&mut ctx, ego, focal);
        let a = ctx.param(&self.store, "att.edge.l1");
        let mut scores = Vec::with_capacity(neighbors.len());
        for &n in neighbors {
            let z_j = enc.self_embedding(&mut ctx, n, focal);
            let pair = ctx.tape.concat_cols(z_i, z_j);
            let input = ctx.tape.concat_cols(pair, focal_var);
            let s = ctx.tape.matmul(input, a);
            let s = ctx.tape.leaky_relu(s);
            scores.push(ctx.tape.scalar(s));
        }
        zoomer_tensor::stable_softmax(&scores)
    }
}

impl CtrModel for UnifiedCtrModel {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn config(&self) -> &ModelConfig {
        &self.config
    }

    fn train_step(
        &mut self,
        graph: &HeteroGraph,
        ex: &RetrievalExample,
        rng: &mut ChaCha8Rng,
    ) -> f32 {
        let gamma = self.config.focal_gamma;
        let (mut ctx, logit) = self.forward(graph, ex, rng);
        let loss = ctx.tape.focal_bce_with_logits(logit, ex.label, gamma);
        let loss_val = ctx.tape.scalar(loss);
        let grads = ctx.tape.backward(loss);
        for (name, grad) in ctx.dense_gradients(&grads) {
            self.optimizer.step(&mut self.store, &name, &grad);
        }
        for (table_name, rows) in ctx.sparse_gradients(&grads) {
            if let Some(table) = self.tables.by_name_mut(&table_name) {
                table.apply_sparse(&rows);
            }
        }
        loss_val
    }

    fn predict(&mut self, graph: &HeteroGraph, ex: &RetrievalExample, rng: &mut ChaCha8Rng) -> f32 {
        let (ctx, logit) = self.forward(graph, ex, rng);
        sigmoid(ctx.tape.scalar(logit))
    }

    fn uq_embedding(
        &mut self,
        graph: &HeteroGraph,
        user: NodeId,
        query: NodeId,
        rng: &mut ChaCha8Rng,
    ) -> Vec<f32> {
        let ex = RetrievalExample { user, query, item: user, label: 0.0 };
        let (user_roi, query_roi) = self.sample_rois(graph, &ex, rng);
        let focal_nodes = self.attention_focals(&ex);
        let mut ctx = ForwardCtx::new();
        let mut enc =
            Encoder { config: &self.config, store: &self.store, tables: &mut self.tables, graph };
        let focal = if focal_nodes.is_empty() {
            None
        } else {
            Some(enc.focal_vector(&mut ctx, &focal_nodes))
        };
        let zu = enc.encode_roi(&mut ctx, &user_roi, focal);
        let zq = enc.encode_roi(&mut ctx, &query_roi, focal);
        let w_uq = ctx.param(&self.store, "tower.uq.w");
        let b_uq = ctx.param(&self.store, "tower.uq.b");
        let cat = ctx.tape.concat_cols(zu, zq);
        let uq = ctx.tape.linear(cat, w_uq, b_uq);
        ctx.tape.value(uq).as_slice().to_vec()
    }

    fn item_embedding(&mut self, graph: &HeteroGraph, item: NodeId) -> Vec<f32> {
        let mut ctx = ForwardCtx::new();
        let mut enc =
            Encoder { config: &self.config, store: &self.store, tables: &mut self.tables, graph };
        let zi = enc.self_embedding(&mut ctx, item, None);
        let w_it = ctx.param(&self.store, "tower.item.w");
        let b_it = ctx.param(&self.store, "tower.item.b");
        let v = ctx.tape.linear(zi, w_it, b_it);
        ctx.tape.value(v).as_slice().to_vec()
    }

    fn freeze(&mut self, graph: &HeteroGraph) -> crate::frozen::FrozenModel {
        crate::frozen::FrozenModel::from_model(self, graph)
    }

    fn set_fanout(&mut self, k: usize) {
        self.config.fanout = k;
    }

    fn set_hops(&mut self, hops: usize) {
        // Attention/combine parameters were registered for the construction-
        // time depth; only shrinking (or equal) is supported at runtime.
        assert!(hops <= self.config.hops, "cannot raise hops beyond the construction-time value");
        self.config.hops = hops;
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.optimizer.lr = lr;
    }

    fn train_batch(
        &mut self,
        graph: &HeteroGraph,
        batch: &[RetrievalExample],
        rng: &mut ChaCha8Rng,
    ) -> f32 {
        // Accumulated-gradient implementation (inherent method above).
        UnifiedCtrModel::train_batch(self, graph, batch, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_data::{TaobaoConfig, TaobaoData};

    fn dataset() -> TaobaoData {
        TaobaoData::generate(TaobaoConfig::tiny(31))
    }

    fn model(preset: &str, data: &TaobaoData) -> UnifiedCtrModel {
        let dense_dim = data.graph.features().dense_dim();
        UnifiedCtrModel::new(ModelConfig::preset(preset, 5, dense_dim).expect("preset"))
    }

    #[test]
    fn predict_is_probability_for_all_presets() {
        let data = dataset();
        let ex = data.ctr_examples()[0];
        for preset in [
            "zoomer",
            "gcn",
            "graphsage",
            "gat",
            "han",
            "pinsage",
            "pinnersage",
            "pixie",
            "stamp",
            "gce-gnn",
            "fgnn",
            "mccf",
        ] {
            let mut m = model(preset, &data);
            let mut rng = seeded_rng(1);
            let p = m.predict(&data.graph, &ex, &mut rng);
            assert!((0.0..=1.0).contains(&p), "{preset}: p = {p}");
        }
    }

    #[test]
    fn train_step_reduces_loss_on_repeated_example() {
        let data = dataset();
        let ex = data.ctr_examples().into_iter().find(|e| e.label > 0.5).unwrap();
        let mut m = model("zoomer", &data);
        let mut rng = seeded_rng(2);
        let first = m.train_step(&data.graph, &ex, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = m.train_step(&data.graph, &ex, &mut rng);
        }
        assert!(
            last < first * 0.8,
            "loss should fall when overfitting one example: {first} → {last}"
        );
    }

    #[test]
    fn training_moves_prediction_toward_label() {
        let data = dataset();
        let examples = data.ctr_examples();
        let pos = examples.iter().find(|e| e.label > 0.5).copied().unwrap();
        let neg = examples.iter().find(|e| e.label < 0.5).copied().unwrap();
        let mut m = model("zoomer", &data);
        let mut rng = seeded_rng(3);
        // Train in rounds until the two examples separate (deterministic,
        // but the number of rounds needed depends on the RNG stream — keep
        // the assertion about convergence, not about a step count).
        let mut separated = false;
        for _ in 0..8 {
            for _ in 0..25 {
                m.train_step(&data.graph, &pos, &mut rng);
                m.train_step(&data.graph, &neg, &mut rng);
            }
            let p_pos = m.predict(&data.graph, &pos, &mut rng);
            let p_neg = m.predict(&data.graph, &neg, &mut rng);
            if p_pos > p_neg {
                separated = true;
                break;
            }
        }
        assert!(separated, "p_pos should exceed p_neg after training");
    }

    #[test]
    fn minibatch_step_reduces_loss() {
        let data = dataset();
        let batch: Vec<_> = data.ctr_examples().into_iter().take(16).collect();
        let mut m = model("zoomer", &data);
        let mut rng = seeded_rng(8);
        let first = m.train_batch(&data.graph, &batch, &mut rng);
        let mut last = first;
        for _ in 0..20 {
            last = m.train_batch(&data.graph, &batch, &mut rng);
        }
        assert!(last < first, "batch loss should fall: {first} → {last}");
    }

    #[test]
    fn minibatch_of_one_equals_single_step_loss() {
        let data = dataset();
        let ex = data.ctr_examples()[0];
        let mut a = model("gcn", &data);
        let mut b = model("gcn", &data);
        let mut r1 = seeded_rng(9);
        let mut r2 = seeded_rng(9);
        let l1 = a.train_step(&data.graph, &ex, &mut r1);
        let l2 = b.train_batch(&data.graph, &[ex], &mut r2);
        assert!((l1 - l2).abs() < 1e-6);
        // And the resulting parameters agree.
        assert!(a.store().max_abs_diff(b.store()) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty minibatch")]
    fn empty_minibatch_panics() {
        let data = dataset();
        let mut m = model("zoomer", &data);
        let mut rng = seeded_rng(10);
        let _ = m.train_batch(&data.graph, &[], &mut rng);
    }

    #[test]
    fn embeddings_have_configured_width() {
        let data = dataset();
        let mut m = model("zoomer", &data);
        let mut rng = seeded_rng(4);
        let ex = data.ctr_examples()[0];
        let uq = m.uq_embedding(&data.graph, ex.user, ex.query, &mut rng);
        assert_eq!(uq.len(), m.config().embed_dim);
        let it = m.item_embedding(&data.graph, ex.item);
        assert_eq!(it.len(), m.config().embed_dim);
    }

    #[test]
    fn score_matches_tower_dot_product() {
        let data = dataset();
        let mut m = model("gcn", &data); // deterministic focal sampler
        let ex = data.ctr_examples()[0];
        let mut rng = seeded_rng(5);
        let p = m.predict(&data.graph, &ex, &mut rng);
        let mut rng = seeded_rng(5);
        let uq = m.uq_embedding(&data.graph, ex.user, ex.query, &mut rng);
        let it = m.item_embedding(&data.graph, ex.item);
        let dot: f32 = uq.iter().zip(&it).map(|(&a, &b)| a * b).sum();
        assert!((p - sigmoid(dot)).abs() < 1e-5, "{p} vs {}", sigmoid(dot));
    }

    #[test]
    fn coupling_coefficients_form_distribution_and_shift_with_focal() {
        let data = dataset();
        let mut m = model("zoomer", &data);
        let ex = data.ctr_examples()[0];
        let items = data.item_nodes();
        let neighbors = &items[..8.min(items.len())];
        let w1 = m.coupling_coefficients(&data.graph, ex.query, neighbors, &[ex.user, ex.query]);
        assert_eq!(w1.len(), neighbors.len());
        assert!((w1.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        // A different focal user should induce different coefficients.
        let other_user = (ex.user + 1) % data.config.num_users as u32;
        let w2 = m.coupling_coefficients(&data.graph, ex.query, neighbors, &[other_user, ex.query]);
        let diff: f32 = w1.iter().zip(&w2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "coefficients did not react to focal change");
    }

    #[test]
    fn set_fanout_and_hops_apply() {
        let data = dataset();
        let mut m = model("zoomer", &data);
        m.set_fanout(3);
        assert_eq!(m.config().fanout, 3);
        m.set_hops(1);
        assert_eq!(m.config().hops, 1);
        let mut rng = seeded_rng(6);
        let ex = data.ctr_examples()[0];
        let p = m.predict(&data.graph, &ex, &mut rng);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    #[should_panic(expected = "cannot raise hops")]
    fn raising_hops_panics() {
        let data = dataset();
        let mut m = model("zoomer", &data);
        m.set_hops(5);
    }

    #[test]
    fn num_parameters_grows_with_use() {
        let data = dataset();
        let mut m = model("zoomer", &data);
        let before = m.num_parameters();
        let mut rng = seeded_rng(7);
        let ex = data.ctr_examples()[0];
        let _ = m.predict(&data.graph, &ex, &mut rng);
        assert!(m.num_parameters() > before, "embedding rows should materialize");
    }
}
