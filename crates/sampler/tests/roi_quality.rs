//! ROI quality on generated behavior data: the focal-biased sampler must
//! produce neighborhoods that are measurably more informative about the
//! session intent than uniform sampling — the paper's core premise, and the
//! property that drives every Zoomer-vs-baseline comparison downstream.

use zoomer_data::{TaobaoConfig, TaobaoData};
use zoomer_sampler::{FocalBiasedSampler, FocalContext, NeighborSampler, UniformSampler};
use zoomer_tensor::{cosine_similarity, seeded_rng};

fn mean_neighbor_vector(data: &TaobaoData, picked: &[u32]) -> Option<Vec<f32>> {
    if picked.is_empty() {
        return None;
    }
    let d = data.graph.features().dense_dim();
    let mut m = vec![0.0f32; d];
    for &p in picked {
        for (a, &x) in m.iter_mut().zip(data.graph.dense_feature(p)) {
            *a += x;
        }
    }
    Some(m)
}

#[test]
fn focal_roi_is_more_intent_aligned_than_uniform() {
    let data = TaobaoData::generate(TaobaoConfig {
        num_users: 200,
        num_queries: 200,
        num_items: 400,
        num_sessions: 2_000,
        ..TaobaoConfig::default_with_seed(55)
    });
    let focal_sampler = FocalBiasedSampler::default();
    let uniform = UniformSampler;
    let mut rng = seeded_rng(55);
    let (mut focal_sum, mut uniform_sum, mut n) = (0.0f64, 0.0f64, 0usize);
    for log in data.logs.iter().step_by(17).take(200) {
        let ctx = FocalContext::for_request(&data.graph, log.user, log.query);
        let f = focal_sampler.sample(&data.graph, log.user, &ctx, 10, &mut rng);
        let u = uniform.sample(&data.graph, log.user, &ctx, 10, &mut rng);
        let (Some(fm), Some(um)) =
            (mean_neighbor_vector(&data, &f), mean_neighbor_vector(&data, &u))
        else {
            continue;
        };
        focal_sum += cosine_similarity(&log.intent, &fm) as f64;
        uniform_sum += cosine_similarity(&log.intent, &um) as f64;
        n += 1;
    }
    assert!(n > 50, "too few measurable sessions: {n}");
    let focal_mean = focal_sum / n as f64;
    let uniform_mean = uniform_sum / n as f64;
    assert!(
        focal_mean > uniform_mean + 0.1,
        "focal ROI should align with intent much better: focal {focal_mean:.3} vs uniform {uniform_mean:.3}"
    );
}

#[test]
fn stochastic_focal_sampling_stays_intent_biased() {
    let data = TaobaoData::generate(TaobaoConfig::tiny(56));
    let stochastic = FocalBiasedSampler::stochastic(0.2);
    let uniform = UniformSampler;
    let mut rng = seeded_rng(56);
    let (mut s_sum, mut u_sum, mut n) = (0.0f64, 0.0f64, 0usize);
    for log in data.logs.iter().step_by(5).take(100) {
        let ctx = FocalContext::for_request(&data.graph, log.user, log.query);
        let s = stochastic.sample(&data.graph, log.user, &ctx, 8, &mut rng);
        let u = uniform.sample(&data.graph, log.user, &ctx, 8, &mut rng);
        let (Some(sm), Some(um)) =
            (mean_neighbor_vector(&data, &s), mean_neighbor_vector(&data, &u))
        else {
            continue;
        };
        s_sum += cosine_similarity(&log.intent, &sm) as f64;
        u_sum += cosine_similarity(&log.intent, &um) as f64;
        n += 1;
    }
    assert!(n > 30);
    assert!(
        s_sum / n as f64 > u_sum / n as f64,
        "Gumbel-top-k sampling must keep the focal bias: {} vs {}",
        s_sum / n as f64,
        u_sum / n as f64
    );
}

#[test]
fn stochastic_sampler_varies_across_draws_deterministic_does_not() {
    let data = TaobaoData::generate(TaobaoConfig::tiny(57));
    let log = &data.logs[0];
    let ctx = FocalContext::for_request(&data.graph, log.user, log.query);
    let det = FocalBiasedSampler::default();
    let sto = FocalBiasedSampler::stochastic(0.5);
    let mut rng = seeded_rng(1);
    let d1 = det.sample(&data.graph, log.user, &ctx, 5, &mut rng);
    let d2 = det.sample(&data.graph, log.user, &ctx, 5, &mut rng);
    assert_eq!(d1, d2, "temperature-0 sampler must be deterministic");
    let mut distinct = std::collections::HashSet::new();
    for _ in 0..20 {
        let s = sto.sample(&data.graph, log.user, &ctx, 5, &mut rng);
        distinct.insert(s);
    }
    assert!(distinct.len() > 1, "stochastic sampler should vary across draws");
}
