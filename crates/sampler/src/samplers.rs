//! The sampler families: Zoomer's focal-biased top-k (§V-C) and the
//! baselines with "self-developed graph downscaling strategies" (§VII-A):
//! GraphSAGE (uniform), PinSage (random-walk importance), Pixie (biased
//! walks), PinnerSage (cluster importance), plus plain weighted sampling.

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zoomer_graph::{EdgeType, HeteroGraph, NodeId};
use zoomer_tensor::{cosine_similarity, tanimoto_similarity};

use crate::context::FocalContext;

/// All typed neighbors of `node` as `(neighbor, edge_type, weight)` triples.
pub fn all_neighbors(graph: &HeteroGraph, node: NodeId) -> Vec<(NodeId, EdgeType, f32)> {
    let mut out = Vec::with_capacity(graph.total_degree(node));
    for et in EdgeType::ALL {
        let (targets, weights) = graph.neighbors(node, et);
        for (&t, &w) in targets.iter().zip(weights) {
            out.push((t, et, w));
        }
    }
    out
}

/// A neighbor-downscaling strategy: pick at most `k` neighbors of `node`.
pub trait NeighborSampler: Send + Sync {
    fn name(&self) -> &'static str;

    /// Sample at most `k` distinct neighbors of `node`.
    fn sample(
        &self,
        graph: &HeteroGraph,
        node: NodeId,
        focal: &FocalContext,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<NodeId>;
}

/// The relevance kernel used by the focal-biased sampler. The paper defines
/// eq. (5) (a continuous Tanimoto coefficient) and notes it "can be replaced
/// with other relevance score equations like cosine distance".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RelevanceKernel {
    #[default]
    Tanimoto,
    Cosine,
}

impl RelevanceKernel {
    /// Relevance of `candidate` to the focal vector.
    pub fn score(self, focal: &[f32], candidate: &[f32]) -> f32 {
        match self {
            RelevanceKernel::Tanimoto => tanimoto_similarity(focal, candidate),
            RelevanceKernel::Cosine => cosine_similarity(focal, candidate),
        }
    }
}

/// §V-C: score every neighbor of the ego node by its relevance to the focal
/// points (eq. (5)) and sample "in a top-k manner" — the ROI construction
/// step.
///
/// With `temperature == 0` this is the deterministic top-k of the paper's
/// description. With `temperature > 0` it draws a Gumbel-top-k sample, i.e.
/// k neighbors without replacement with probability ∝ exp(score/T) — still
/// focal-biased, but stochastic across visits, which lets embedding tables
/// see the whole relevant region over training (the same reason PinSage
/// resamples walks per epoch). The training default uses a mild temperature;
/// serving uses 0 for determinism.
#[derive(Clone, Copy, Debug)]
pub struct FocalBiasedSampler {
    pub kernel: RelevanceKernel,
    pub temperature: f32,
}

impl Default for FocalBiasedSampler {
    fn default() -> Self {
        Self { kernel: RelevanceKernel::Tanimoto, temperature: 0.0 }
    }
}

impl FocalBiasedSampler {
    /// Stochastic focal-biased sampler with the given Gumbel temperature.
    pub fn stochastic(temperature: f32) -> Self {
        Self { kernel: RelevanceKernel::Tanimoto, temperature }
    }
}

impl NeighborSampler for FocalBiasedSampler {
    fn name(&self) -> &'static str {
        "zoomer-focal"
    }

    fn sample(
        &self,
        graph: &HeteroGraph,
        node: NodeId,
        focal: &FocalContext,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<NodeId> {
        // Dedup ids before scoring: a node reachable over several edge types
        // appears once per type in `all_neighbors`, and deduping after the
        // score sort only removes *adjacent* duplicates (equal-scored other
        // nodes can interleave copies). This also scores each distinct
        // neighbor exactly once.
        let mut candidates: Vec<NodeId> =
            all_neighbors(graph, node).into_iter().map(|(n, _, _)| n).collect();
        candidates.sort_unstable();
        candidates.dedup();
        let mut scored: Vec<(NodeId, f32)> = candidates
            .into_iter()
            .map(|n| (n, self.kernel.score(&focal.focal_vector, graph.dense_feature(n))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        if self.temperature > 0.0 {
            // Gumbel-top-k: perturb scores, re-rank.
            for (_, s) in &mut scored {
                let u: f32 = rng.gen_range(f32::EPSILON..1.0);
                *s += self.temperature * (-(-u.ln()).ln());
            }
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        }
        scored.truncate(k);
        scored.into_iter().map(|(n, _)| n).collect()
    }
}

/// GraphSAGE-style uniform sampling without replacement over the full
/// (multi-type) neighbor set.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformSampler;

impl NeighborSampler for UniformSampler {
    fn name(&self) -> &'static str {
        "graphsage-uniform"
    }

    fn sample(
        &self,
        graph: &HeteroGraph,
        node: NodeId,
        _focal: &FocalContext,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<NodeId> {
        let mut candidates: Vec<NodeId> =
            all_neighbors(graph, node).into_iter().map(|(n, _, _)| n).collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates.shuffle(rng);
        candidates.truncate(k);
        candidates
    }
}

/// Edge-weight proportional sampling (alias-table path in the graph engine).
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightedSampler;

impl NeighborSampler for WeightedSampler {
    fn name(&self) -> &'static str {
        "weighted"
    }

    fn sample(
        &self,
        graph: &HeteroGraph,
        node: NodeId,
        _focal: &FocalContext,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<NodeId> {
        // Draw k·4 alias samples across edge types proportional to type mass,
        // dedup, truncate. This is how a constant-time engine downsamples
        // heavy-degree nodes without materializing the neighbor list.
        let mut type_mass: Vec<(EdgeType, f32)> = EdgeType::ALL
            .iter()
            .map(|&et| {
                let (_, w) = graph.neighbors(node, et);
                (et, w.iter().sum::<f32>())
            })
            .filter(|(_, m)| *m > 0.0)
            .collect();
        if type_mass.is_empty() {
            return Vec::new();
        }
        let total: f32 = type_mass.iter().map(|(_, m)| m).sum();
        for tm in &mut type_mass {
            tm.1 /= total;
        }
        let mut picked = Vec::with_capacity(k);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..k * 4 {
            if picked.len() >= k {
                break;
            }
            let mut r = rng.gen::<f32>();
            let mut et = type_mass[type_mass.len() - 1].0;
            for &(t, m) in &type_mass {
                if r < m {
                    et = t;
                    break;
                }
                r -= m;
            }
            if let Some(n) = graph.sample_neighbor(node, et, rng) {
                if seen.insert(n) {
                    picked.push(n);
                }
            }
        }
        picked
    }
}

/// PinSage-style importance sampling: run short random walks from the ego
/// node and keep the k most-visited nodes ("importance pooling").
#[derive(Clone, Copy, Debug)]
pub struct RandomWalkSampler {
    /// Number of walks launched from the ego node.
    pub num_walks: usize,
    /// Steps per walk.
    pub walk_length: usize,
}

impl Default for RandomWalkSampler {
    fn default() -> Self {
        Self { num_walks: 32, walk_length: 3 }
    }
}

impl NeighborSampler for RandomWalkSampler {
    fn name(&self) -> &'static str {
        "pinsage-walk"
    }

    fn sample(
        &self,
        graph: &HeteroGraph,
        node: NodeId,
        _focal: &FocalContext,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<NodeId> {
        let mut visits: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
        for _ in 0..self.num_walks {
            let mut cur = node;
            for _ in 0..self.walk_length {
                let nbrs = all_neighbors(graph, cur);
                if nbrs.is_empty() {
                    break;
                }
                cur = nbrs[rng.gen_range(0..nbrs.len())].0;
                if cur != node {
                    *visits.entry(cur).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(NodeId, u32)> = visits.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked.into_iter().map(|(n, _)| n).collect()
    }
}

/// Pixie-style biased random walks: edge selection is biased toward nodes
/// similar to the request features ("randoms edge selection to be biased
/// based on user features"), with early-stopping visit counting.
#[derive(Clone, Copy, Debug)]
pub struct PixieSampler {
    pub num_walks: usize,
    pub walk_length: usize,
    /// Probability of taking the feature-biased step instead of uniform.
    pub bias_prob: f32,
}

impl Default for PixieSampler {
    fn default() -> Self {
        Self { num_walks: 24, walk_length: 4, bias_prob: 0.6 }
    }
}

impl NeighborSampler for PixieSampler {
    fn name(&self) -> &'static str {
        "pixie-biased-walk"
    }

    fn sample(
        &self,
        graph: &HeteroGraph,
        node: NodeId,
        focal: &FocalContext,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<NodeId> {
        let mut visits: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
        for _ in 0..self.num_walks {
            let mut cur = node;
            for _ in 0..self.walk_length {
                let nbrs = all_neighbors(graph, cur);
                if nbrs.is_empty() {
                    break;
                }
                cur = if rng.gen::<f32>() < self.bias_prob {
                    // Biased step: best of a small candidate set by focal
                    // cosine (Pixie's user-feature edge bias).
                    let tries = 3.min(nbrs.len());
                    (0..tries)
                        .map(|_| nbrs[rng.gen_range(0..nbrs.len())].0)
                        .max_by(|&a, &b| {
                            let sa = cosine_similarity(&focal.focal_vector, graph.dense_feature(a));
                            let sb = cosine_similarity(&focal.focal_vector, graph.dense_feature(b));
                            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        // `tries >= 1` makes the candidate set non-empty, so
                        // max_by always yields; fall back to an unbiased step
                        // rather than panic on the serving hot path.
                        .unwrap_or(nbrs[0].0)
                } else {
                    nbrs[rng.gen_range(0..nbrs.len())].0
                };
                if cur != node {
                    *visits.entry(cur).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(NodeId, u32)> = visits.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked.into_iter().map(|(n, _)| n).collect()
    }
}

/// PinnerSage-style cluster-importance selection: k-means the neighbor
/// feature vectors into `k` clusters and keep each cluster's medoid, so the
/// sample covers the neighborhood's distinct modes ("multi-modal
/// embeddings").
#[derive(Clone, Copy, Debug)]
pub struct ClusterImportanceSampler {
    pub kmeans_iters: usize,
}

impl Default for ClusterImportanceSampler {
    fn default() -> Self {
        Self { kmeans_iters: 6 }
    }
}

impl NeighborSampler for ClusterImportanceSampler {
    fn name(&self) -> &'static str {
        "pinnersage-cluster"
    }

    fn sample(
        &self,
        graph: &HeteroGraph,
        node: NodeId,
        _focal: &FocalContext,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<NodeId> {
        let mut candidates: Vec<NodeId> =
            all_neighbors(graph, node).into_iter().map(|(n, _, _)| n).collect();
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.len() <= k {
            return candidates;
        }
        let dim = graph.features().dense_dim();
        // Init centroids from k random candidates.
        let mut centroid_ids = candidates.clone();
        centroid_ids.shuffle(rng);
        centroid_ids.truncate(k);
        let mut centroids: Vec<Vec<f32>> =
            centroid_ids.iter().map(|&n| graph.dense_feature(n).to_vec()).collect();
        let mut assignment = vec![0usize; candidates.len()];
        for _ in 0..self.kmeans_iters {
            // Assign.
            for (ci, &cand) in candidates.iter().enumerate() {
                let f = graph.dense_feature(cand);
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for (j, c) in centroids.iter().enumerate() {
                    let d: f32 = f.iter().zip(c).map(|(&a, &b)| (a - b) * (a - b)).sum();
                    if d < best_d {
                        best_d = d;
                        best = j;
                    }
                }
                assignment[ci] = best;
            }
            // Update.
            let mut sums = vec![vec![0.0f32; dim]; k];
            let mut counts = vec![0usize; k];
            for (ci, &cand) in candidates.iter().enumerate() {
                let j = assignment[ci];
                counts[j] += 1;
                for (s, &x) in sums[j].iter_mut().zip(graph.dense_feature(cand)) {
                    *s += x;
                }
            }
            for j in 0..k {
                if counts[j] > 0 {
                    for s in &mut sums[j] {
                        *s /= counts[j] as f32;
                    }
                    centroids[j] = sums[j].clone();
                }
            }
        }
        // Medoid per nonempty cluster.
        let mut out = Vec::with_capacity(k);
        #[allow(clippy::needless_range_loop)]
        for j in 0..k {
            let mut best: Option<(NodeId, f32)> = None;
            for (ci, &cand) in candidates.iter().enumerate() {
                if assignment[ci] != j {
                    continue;
                }
                let f = graph.dense_feature(cand);
                let d: f32 = f.iter().zip(&centroids[j]).map(|(&a, &b)| (a - b) * (a - b)).sum();
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((cand, d));
                }
            }
            if let Some((n, _)) = best {
                out.push(n);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_graph::{GraphBuilder, NodeType};
    use zoomer_tensor::seeded_rng;

    /// A star graph: ego item connected to 20 items whose features span from
    /// aligned-with-focal to anti-aligned.
    fn star() -> (HeteroGraph, NodeId, FocalContext) {
        let mut b = GraphBuilder::new(2);
        let ego = b.add_node(NodeType::Item, vec![], vec![], &[1.0, 0.0]);
        let focal_node = b.add_node(NodeType::Query, vec![], vec![], &[1.0, 0.0]);
        for i in 0..20 {
            let theta = std::f32::consts::PI * i as f32 / 19.0; // 0..π
            let leaf = b.add_node(NodeType::Item, vec![], vec![], &[theta.cos(), theta.sin()]);
            b.add_undirected_edge(ego, leaf, EdgeType::Session, 1.0 + i as f32 * 0.1);
        }
        let g = b.finish();
        let ctx = FocalContext::from_nodes(&g, &[focal_node]);
        (g, ego, ctx)
    }

    #[test]
    fn focal_sampler_picks_most_relevant() {
        let (g, ego, ctx) = star();
        let mut rng = seeded_rng(1);
        let picked = FocalBiasedSampler::default().sample(&g, ego, &ctx, 5, &mut rng);
        assert_eq!(picked.len(), 5);
        // Leaves were created in increasing angle from the focal direction,
        // so the first five leaf node ids (2..7) are the most relevant.
        for &n in &picked {
            assert!(n < 7, "picked anti-aligned node {n}");
        }
    }

    #[test]
    fn focal_sampler_beats_uniform_on_relevance() {
        let (g, ego, ctx) = star();
        let mut rng = seeded_rng(2);
        let mean_rel = |picked: &[NodeId]| {
            picked
                .iter()
                .map(|&n| tanimoto_similarity(&ctx.focal_vector, g.dense_feature(n)))
                .sum::<f32>()
                / picked.len().max(1) as f32
        };
        let focal = FocalBiasedSampler::default().sample(&g, ego, &ctx, 5, &mut rng);
        let mut uniform_rel = 0.0;
        for _ in 0..50 {
            let u = UniformSampler.sample(&g, ego, &ctx, 5, &mut rng);
            uniform_rel += mean_rel(&u);
        }
        uniform_rel /= 50.0;
        assert!(
            mean_rel(&focal) > uniform_rel + 0.1,
            "focal {} vs uniform {}",
            mean_rel(&focal),
            uniform_rel
        );
    }

    #[test]
    fn cosine_kernel_variant_works() {
        let (g, ego, ctx) = star();
        let mut rng = seeded_rng(3);
        let s = FocalBiasedSampler { kernel: RelevanceKernel::Cosine, temperature: 0.0 };
        let picked = s.sample(&g, ego, &ctx, 3, &mut rng);
        assert_eq!(picked.len(), 3);
        for &n in &picked {
            assert!(n < 6);
        }
    }

    #[test]
    fn uniform_sampler_covers_whole_neighborhood() {
        let (g, ego, ctx) = star();
        let mut rng = seeded_rng(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            for n in UniformSampler.sample(&g, ego, &ctx, 5, &mut rng) {
                seen.insert(n);
            }
        }
        assert_eq!(seen.len(), 20, "uniform sampling should reach every leaf");
    }

    #[test]
    fn samplers_respect_k_and_handle_isolated_nodes() {
        let (g, ego, ctx) = star();
        let mut rng = seeded_rng(5);
        let samplers: Vec<Box<dyn NeighborSampler>> = vec![
            Box::new(FocalBiasedSampler::default()),
            Box::new(UniformSampler),
            Box::new(WeightedSampler),
            Box::new(RandomWalkSampler::default()),
            Box::new(PixieSampler::default()),
            Box::new(ClusterImportanceSampler::default()),
        ];
        for s in &samplers {
            let picked = s.sample(&g, ego, &ctx, 7, &mut rng);
            assert!(picked.len() <= 7, "{} overshot k", s.name());
            let unique: std::collections::HashSet<_> = picked.iter().collect();
            assert_eq!(unique.len(), picked.len(), "{} returned duplicates", s.name());
            // Isolated node (the focal query node has no edges here).
            let isolated = s.sample(&g, 1, &ctx, 7, &mut rng);
            assert!(isolated.is_empty(), "{} sampled from isolated node", s.name());
        }
    }

    #[test]
    fn random_walk_sampler_prefers_close_nodes() {
        // Chain: ego - a - b - c. Walks visit `a` most.
        let mut bld = GraphBuilder::new(1);
        let ego = bld.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        let a = bld.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        let b = bld.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        let c = bld.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        bld.add_undirected_edge(ego, a, EdgeType::Session, 1.0);
        bld.add_undirected_edge(a, b, EdgeType::Session, 1.0);
        bld.add_undirected_edge(b, c, EdgeType::Session, 1.0);
        let g = bld.finish();
        let ctx = FocalContext::from_nodes(&g, &[ego]);
        let mut rng = seeded_rng(6);
        let picked =
            RandomWalkSampler { num_walks: 64, walk_length: 3 }.sample(&g, ego, &ctx, 1, &mut rng);
        assert_eq!(picked, vec![a]);
    }

    #[test]
    fn pixie_bias_improves_focal_alignment() {
        let (g, ego, ctx) = star();
        let mean_rel = |picked: &[NodeId]| {
            picked
                .iter()
                .map(|&n| cosine_similarity(&ctx.focal_vector, g.dense_feature(n)))
                .sum::<f32>()
                / picked.len().max(1) as f32
        };
        let mut biased_total = 0.0;
        let mut unbiased_total = 0.0;
        for seed in 0..20 {
            let mut rng = seeded_rng(seed);
            let biased = PixieSampler { bias_prob: 0.9, ..Default::default() }
                .sample(&g, ego, &ctx, 5, &mut rng);
            let mut rng = seeded_rng(seed);
            let unbiased = PixieSampler { bias_prob: 0.0, ..Default::default() }
                .sample(&g, ego, &ctx, 5, &mut rng);
            biased_total += mean_rel(&biased);
            unbiased_total += mean_rel(&unbiased);
        }
        assert!(
            biased_total > unbiased_total,
            "bias should help: {biased_total} vs {unbiased_total}"
        );
    }

    #[test]
    fn cluster_sampler_covers_modes() {
        // Two tight feature clusters among neighbors; k=2 should pick one
        // representative from each.
        let mut bld = GraphBuilder::new(2);
        let ego = bld.add_node(NodeType::Item, vec![], vec![], &[0.0, 0.0]);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..6 {
            let eps = i as f32 * 0.01;
            let l = bld.add_node(NodeType::Item, vec![], vec![], &[-1.0 + eps, 0.0]);
            let r = bld.add_node(NodeType::Item, vec![], vec![], &[1.0 - eps, 0.0]);
            bld.add_undirected_edge(ego, l, EdgeType::Session, 1.0);
            bld.add_undirected_edge(ego, r, EdgeType::Session, 1.0);
            left.push(l);
            right.push(r);
        }
        let g = bld.finish();
        let ctx = FocalContext::from_nodes(&g, &[ego]);
        let mut rng = seeded_rng(8);
        let picked = ClusterImportanceSampler::default().sample(&g, ego, &ctx, 2, &mut rng);
        assert_eq!(picked.len(), 2);
        let has_left = picked.iter().any(|n| left.contains(n));
        let has_right = picked.iter().any(|n| right.contains(n));
        assert!(has_left && has_right, "should cover both modes: {picked:?}");
    }

    #[test]
    fn focal_sampler_dedups_multi_edge_neighbors() {
        // Ego reaches the same two nodes over BOTH Click and Session edges,
        // plus equal-featured decoys, so every candidate scores identically —
        // the arrangement where adjacent-only dedup after a stable score sort
        // left interleaved duplicates in the sample.
        let mut bld = GraphBuilder::new(1);
        let ego = bld.add_node(NodeType::User, vec![], vec![], &[1.0]);
        let mut leaves = Vec::new();
        for _ in 0..4 {
            let n = bld.add_node(NodeType::Item, vec![], vec![], &[1.0]);
            bld.add_edge(ego, n, EdgeType::Click, 1.0);
            leaves.push(n);
        }
        // First two leaves also reachable via Session.
        bld.add_edge(ego, leaves[0], EdgeType::Session, 1.0);
        bld.add_edge(ego, leaves[1], EdgeType::Session, 1.0);
        let g = bld.finish();
        let ctx = FocalContext::from_nodes(&g, &[ego]);
        let mut rng = seeded_rng(7);
        let picked = FocalBiasedSampler::default().sample(&g, ego, &ctx, 10, &mut rng);
        let unique: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(unique.len(), picked.len(), "duplicate ids in {picked:?}");
        assert_eq!(picked.len(), 4, "one slot per distinct neighbor: {picked:?}");
        // The stochastic variant must dedup too.
        let picked = FocalBiasedSampler::stochastic(0.5).sample(&g, ego, &ctx, 10, &mut rng);
        let unique: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(unique.len(), picked.len());
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn all_neighbors_merges_edge_types() {
        let mut bld = GraphBuilder::new(1);
        let a = bld.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        let b = bld.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        bld.add_edge(a, b, EdgeType::Click, 1.0);
        bld.add_edge(a, b, EdgeType::Similarity, 0.5);
        let g = bld.finish();
        let nbrs = all_neighbors(&g, a);
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs.iter().any(|&(_, et, _)| et == EdgeType::Click));
        assert!(nbrs.iter().any(|&(_, et, _)| et == EdgeType::Similarity));
    }
}
