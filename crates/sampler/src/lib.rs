//! Graph sampling strategies for the Zoomer reproduction.
//!
//! The paper's focal-biased graph sampler (§V-C, eq. (5)) plus the sampler
//! families it compares against in §VII (GraphSAGE's uniform layer sampling,
//! PinSage's random-walk importance sampling, Pixie's biased random walks,
//! PinnerSage's cluster/medoid importance selection), all behind one
//! [`NeighborSampler`] trait, and the [`roi`] module that expands a sampled
//! computation tree ("ROI subgraph") for the GNN models.

// Hot-path crate: zoomer-lint L001 forbids panicking calls in non-test code
// here; clippy's disallowed_methods list (clippy.toml) backs it up.
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

pub mod context;
pub mod metapath;
pub mod roi;
pub mod samplers;

pub use context::FocalContext;
pub use metapath::MetapathSampler;
pub use roi::{build_roi, RoiNode};
pub use samplers::{
    all_neighbors, ClusterImportanceSampler, FocalBiasedSampler, NeighborSampler, PixieSampler,
    RandomWalkSampler, RelevanceKernel, UniformSampler, WeightedSampler,
};
