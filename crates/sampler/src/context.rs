//! Focal context: the per-request focal points and their combined vector.

use zoomer_graph::{HeteroGraph, NodeId};

/// The focal points of one recommendation request (§V-B): the user and the
/// query the user just posed, plus their summed feature vector `F_c` used in
/// the eq. (5) relevance score ("We directly sum up embeddings of focal
/// points in c as F_c").
#[derive(Clone, Debug)]
pub struct FocalContext {
    /// Focal node ids (user, query). Kept for attention modules that embed
    /// the focal points separately.
    pub focal_nodes: Vec<NodeId>,
    /// Summed dense features of the focal nodes.
    pub focal_vector: Vec<f32>,
}

impl FocalContext {
    /// Build the focal context for a `(user, query)` pair from graph features.
    pub fn for_request(graph: &HeteroGraph, user: NodeId, query: NodeId) -> Self {
        Self::from_nodes(graph, &[user, query])
    }

    /// Build from an arbitrary set of focal nodes (the ablations and the
    /// MovieLens schema use this).
    pub fn from_nodes(graph: &HeteroGraph, nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "focal context needs at least one node");
        let dim = graph.features().dense_dim();
        let mut focal_vector = vec![0.0f32; dim];
        for &n in nodes {
            for (acc, &x) in focal_vector.iter_mut().zip(graph.dense_feature(n)) {
                *acc += x;
            }
        }
        Self { focal_nodes: nodes.to_vec(), focal_vector }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_graph::{GraphBuilder, NodeType};

    #[test]
    fn focal_vector_is_sum_of_features() {
        let mut b = GraphBuilder::new(3);
        let u = b.add_node(NodeType::User, vec![], vec![], &[1.0, 0.0, 2.0]);
        let q = b.add_node(NodeType::Query, vec![], vec![], &[0.5, 1.0, -1.0]);
        let g = b.finish();
        let ctx = FocalContext::for_request(&g, u, q);
        assert_eq!(ctx.focal_vector, vec![1.5, 1.0, 1.0]);
        assert_eq!(ctx.focal_nodes, vec![u, q]);
    }

    #[test]
    fn single_node_focal() {
        let mut b = GraphBuilder::new(2);
        let u = b.add_node(NodeType::User, vec![], vec![], &[0.3, 0.7]);
        let g = b.finish();
        let ctx = FocalContext::from_nodes(&g, &[u]);
        assert_eq!(ctx.focal_vector, vec![0.3, 0.7]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_focal_panics() {
        let b = GraphBuilder::new(2);
        let g = b.finish();
        let _ = FocalContext::from_nodes(&g, &[]);
    }
}
