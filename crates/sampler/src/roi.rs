//! ROI subgraph expansion: the sampled computation tree fed to the GNN.
//!
//! §V-A: "ZOOMER … samples a neighborhood region with high relevance to the
//! focal to construct the ROI sub-graph". For a K-layer GNN the ROI is a
//! depth-K computation tree rooted at the ego node, where each node's
//! children are chosen by the configured [`NeighborSampler`]. The same
//! expansion routine serves every baseline: only the sampler differs.

use rand_chacha::ChaCha8Rng;
use zoomer_graph::{HeteroGraph, NodeId};

use crate::context::FocalContext;
use crate::samplers::NeighborSampler;

/// One node of the sampled computation tree.
#[derive(Clone, Debug)]
pub struct RoiNode {
    pub id: NodeId,
    /// Sampled neighbors, each expanded one hop shallower.
    pub children: Vec<RoiNode>,
}

impl RoiNode {
    /// Total nodes in the tree (including this one).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(RoiNode::size).sum::<usize>()
    }

    /// Depth of the tree (a leaf has depth 0).
    pub fn depth(&self) -> usize {
        self.children.iter().map(RoiNode::depth).max().map_or(0, |d| d + 1)
    }

    /// All distinct node ids in the tree.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(self.size());
        self.collect_ids(&mut ids);
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn collect_ids(&self, out: &mut Vec<NodeId>) {
        out.push(self.id);
        for c in &self.children {
            c.collect_ids(out);
        }
    }
}

/// Expand the ROI computation tree of depth `hops` rooted at `ego`, sampling
/// at most `k` children per node with `sampler`.
pub fn build_roi(
    graph: &HeteroGraph,
    ego: NodeId,
    focal: &FocalContext,
    sampler: &dyn NeighborSampler,
    hops: usize,
    k: usize,
    rng: &mut ChaCha8Rng,
) -> RoiNode {
    if hops == 0 {
        return RoiNode { id: ego, children: Vec::new() };
    }
    let children = sampler
        .sample(graph, ego, focal, k, rng)
        .into_iter()
        .map(|child| build_roi(graph, child, focal, sampler, hops - 1, k, rng))
        .collect();
    RoiNode { id: ego, children }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::{FocalBiasedSampler, UniformSampler};
    use zoomer_graph::{EdgeType, GraphBuilder, NodeType};
    use zoomer_tensor::seeded_rng;

    /// Binary-ish tree graph: every node links to a few successors.
    fn mesh(n: usize) -> HeteroGraph {
        let mut b = GraphBuilder::new(2);
        for i in 0..n {
            let angle = i as f32;
            b.add_node(NodeType::Item, vec![], vec![], &[angle.cos(), angle.sin()]);
        }
        for i in 0..n {
            for d in 1..=4usize {
                let j = (i + d) % n;
                b.add_edge(i as NodeId, j as NodeId, EdgeType::Session, 1.0);
            }
        }
        b.finish()
    }

    #[test]
    fn zero_hops_is_just_ego() {
        let g = mesh(10);
        let ctx = FocalContext::from_nodes(&g, &[0]);
        let mut rng = seeded_rng(1);
        let roi = build_roi(&g, 0, &ctx, &UniformSampler, 0, 5, &mut rng);
        assert_eq!(roi.size(), 1);
        assert_eq!(roi.depth(), 0);
        assert_eq!(roi.id, 0);
    }

    #[test]
    fn tree_shape_respects_hops_and_k() {
        let g = mesh(50);
        let ctx = FocalContext::from_nodes(&g, &[0]);
        let mut rng = seeded_rng(2);
        let roi = build_roi(&g, 0, &ctx, &UniformSampler, 2, 3, &mut rng);
        assert_eq!(roi.depth(), 2);
        assert!(roi.children.len() <= 3);
        for c in &roi.children {
            assert!(c.children.len() <= 3);
            for gc in &c.children {
                assert!(gc.children.is_empty());
            }
        }
        // Size bounded by 1 + k + k².
        assert!(roi.size() <= 1 + 3 + 9);
        assert!(roi.size() > 1);
    }

    #[test]
    fn focal_roi_is_deterministic() {
        let g = mesh(50);
        let ctx = FocalContext::from_nodes(&g, &[7]);
        let mut r1 = seeded_rng(3);
        let mut r2 = seeded_rng(4); // focal sampler ignores rng
        let a = build_roi(&g, 7, &ctx, &FocalBiasedSampler::default(), 2, 4, &mut r1);
        let b = build_roi(&g, 7, &ctx, &FocalBiasedSampler::default(), 2, 4, &mut r2);
        assert_eq!(a.node_ids(), b.node_ids());
    }

    #[test]
    fn node_ids_dedups_repeats() {
        // Dense ring: 2-hop expansion revisits nodes; node_ids must dedup.
        let g = mesh(6);
        let ctx = FocalContext::from_nodes(&g, &[0]);
        let mut rng = seeded_rng(5);
        let roi = build_roi(&g, 0, &ctx, &UniformSampler, 2, 4, &mut rng);
        let ids = roi.node_ids();
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(ids, sorted);
        assert!(ids.len() <= 6);
    }
}
