//! Metapath-constrained random-walk sampling.
//!
//! MultiSage (§III-C: "Multisage samples neighbors out of products'
//! property") and the broader heterogeneous-GNN literature sample neighbors
//! along *metapaths* — type patterns like User→Query→Item — so that each
//! sampled context carries one semantic relation instead of an arbitrary
//! type mix. This sampler walks the graph under a repeating node-type
//! pattern and keeps the most-visited terminal nodes.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zoomer_graph::{HeteroGraph, NodeId, NodeType};

use crate::context::FocalContext;
use crate::samplers::{all_neighbors, NeighborSampler};

/// Walks that follow a node-type pattern, e.g. `[Query, Item]` starting from
/// a user means U→Q→I→Q→I→…; terminal visits are counted and the top-k
/// most-visited nodes are returned.
#[derive(Clone, Debug)]
pub struct MetapathSampler {
    /// The repeating type pattern the walk must follow after the ego node.
    pub pattern: Vec<NodeType>,
    pub num_walks: usize,
    /// Pattern repetitions per walk.
    pub repeats: usize,
}

impl MetapathSampler {
    /// The canonical retrieval metapath: ego → Query → Item (repeated).
    pub fn user_query_item() -> Self {
        Self { pattern: vec![NodeType::Query, NodeType::Item], num_walks: 24, repeats: 2 }
    }

    /// Ego → Item → Item co-click paths.
    pub fn item_item() -> Self {
        Self { pattern: vec![NodeType::Item], num_walks: 24, repeats: 3 }
    }
}

impl NeighborSampler for MetapathSampler {
    fn name(&self) -> &'static str {
        "metapath-walk"
    }

    fn sample(
        &self,
        graph: &HeteroGraph,
        node: NodeId,
        _focal: &FocalContext,
        k: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<NodeId> {
        assert!(!self.pattern.is_empty(), "metapath pattern must be non-empty");
        let mut visits: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
        for _ in 0..self.num_walks {
            let mut cur = node;
            'walk: for step in 0..self.pattern.len() * self.repeats {
                let want = self.pattern[step % self.pattern.len()];
                let candidates: Vec<NodeId> = all_neighbors(graph, cur)
                    .into_iter()
                    .filter(|&(n, _, _)| graph.node_type(n) == want)
                    .map(|(n, _, _)| n)
                    .collect();
                if candidates.is_empty() {
                    break 'walk;
                }
                cur = candidates[rng.gen_range(0..candidates.len())];
                if cur != node {
                    *visits.entry(cur).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(NodeId, u32)> = visits.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked.into_iter().map(|(n, _)| n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_graph::{EdgeType, GraphBuilder};
    use zoomer_tensor::seeded_rng;

    /// u — q1 — {i1, i2}, u — i3 (direct click edge), i1 — i2 (session).
    fn graph() -> HeteroGraph {
        let mut b = GraphBuilder::new(1);
        let u = b.add_node(NodeType::User, vec![], vec![], &[0.0]);
        let q1 = b.add_node(NodeType::Query, vec![], vec![], &[0.0]);
        let i1 = b.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        let i2 = b.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        let i3 = b.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        b.add_undirected_edge(u, q1, EdgeType::Click, 1.0);
        b.add_undirected_edge(q1, i1, EdgeType::Click, 1.0);
        b.add_undirected_edge(q1, i2, EdgeType::Click, 1.0);
        b.add_undirected_edge(u, i3, EdgeType::Click, 1.0);
        b.add_undirected_edge(i1, i2, EdgeType::Session, 1.0);
        b.finish()
    }

    #[test]
    fn walks_respect_the_type_pattern() {
        let g = graph();
        let ctx = FocalContext::from_nodes(&g, &[0]);
        let mut rng = seeded_rng(1);
        // U → Q → I pattern from the user: reachable = q1, then i1/i2.
        // i3 (reached only via a direct U→I edge) must NOT appear at the
        // first (query) step.
        let s = MetapathSampler::user_query_item();
        let picked = s.sample(&g, 0, &ctx, 10, &mut rng);
        assert!(picked.contains(&1), "query q1 must be visited");
        assert!(picked.contains(&2) || picked.contains(&3), "items under q1 must be reachable");
        assert!(!picked.contains(&4), "i3 violates the U→Q→I metapath: {picked:?}");
    }

    #[test]
    fn item_item_pattern_stays_on_items() {
        let g = graph();
        let ctx = FocalContext::from_nodes(&g, &[2]);
        let mut rng = seeded_rng(2);
        let s = MetapathSampler::item_item();
        let picked = s.sample(&g, 2, &ctx, 10, &mut rng);
        for &n in &picked {
            assert_eq!(g.node_type(n), NodeType::Item, "non-item in item-item walk");
        }
        assert!(picked.contains(&3), "session neighbor i2 reachable");
    }

    #[test]
    fn respects_k_and_handles_dead_ends() {
        let g = graph();
        let ctx = FocalContext::from_nodes(&g, &[0]);
        let mut rng = seeded_rng(3);
        let s = MetapathSampler::user_query_item();
        let picked = s.sample(&g, 0, &ctx, 1, &mut rng);
        assert!(picked.len() <= 1);
        // A node with no pattern-matching neighbors yields nothing.
        let s2 = MetapathSampler { pattern: vec![NodeType::Movie], num_walks: 4, repeats: 1 };
        assert!(s2.sample(&g, 0, &ctx, 5, &mut rng).is_empty());
    }
}
