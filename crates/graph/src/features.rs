//! Compact typed feature storage.
//!
//! §VI: "We use compact data structures to store different types of features
//! in heterogeneous graphs with high memory utilization." Each node carries
//! (a) a small list of categorical field ids (Table I: e.g. items have ID /
//! Category / Title-terms / Brand / Shop) feeding the model's embedding
//! tables and feature-level attention, (b) a variable-length term set for
//! MinHash similarity, and (c) a fixed-width dense content vector used by the
//! samplers' relevance scoring. All three live in flat arrays with per-node
//! offsets — no per-node heap allocations.

use crate::error::GraphError;
use crate::types::NodeId;

/// Flat, offset-indexed feature storage for all nodes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FeatureStore {
    dense_dim: usize,
    dense: Vec<f32>,
    field_offsets: Vec<u32>,
    fields: Vec<u32>,
    term_offsets: Vec<u32>,
    terms: Vec<u32>,
}

impl FeatureStore {
    /// Create an empty store producing `dense_dim`-wide content vectors.
    pub fn new(dense_dim: usize) -> Self {
        Self {
            dense_dim,
            dense: Vec::new(),
            field_offsets: vec![0],
            fields: Vec::new(),
            term_offsets: vec![0],
            terms: Vec::new(),
        }
    }

    pub fn dense_dim(&self) -> usize {
        self.dense_dim
    }

    /// Number of nodes stored.
    pub fn len(&self) -> usize {
        self.field_offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a node's features; returns its id. Must be called in node-id
    /// order by the builder.
    pub fn push(&mut self, fields: &[u32], terms: &[u32], dense: &[f32]) -> NodeId {
        assert_eq!(dense.len(), self.dense_dim, "dense feature width mismatch");
        let id = self.len() as NodeId;
        self.fields.extend_from_slice(fields);
        self.field_offsets.push(self.fields.len() as u32);
        self.terms.extend_from_slice(terms);
        self.term_offsets.push(self.terms.len() as u32);
        self.dense.extend_from_slice(dense);
        id
    }

    /// Categorical field ids of node `n`.
    #[inline]
    pub fn fields(&self, n: NodeId) -> &[u32] {
        let lo = self.field_offsets[n as usize] as usize;
        let hi = self.field_offsets[n as usize + 1] as usize;
        &self.fields[lo..hi]
    }

    /// Title-term set of node `n` (for MinHash).
    #[inline]
    pub fn terms(&self, n: NodeId) -> &[u32] {
        let lo = self.term_offsets[n as usize] as usize;
        let hi = self.term_offsets[n as usize + 1] as usize;
        &self.terms[lo..hi]
    }

    /// Dense content vector of node `n`.
    #[inline]
    pub fn dense(&self, n: NodeId) -> &[f32] {
        let lo = n as usize * self.dense_dim;
        &self.dense[lo..lo + self.dense_dim]
    }

    /// Approximate resident bytes.
    pub fn approx_bytes(&self) -> usize {
        self.dense.len() * 4
            + self.fields.len() * 4
            + self.terms.len() * 4
            + (self.field_offsets.len() + self.term_offsets.len()) * 4
    }

    /// Raw parts for serialization.
    #[allow(clippy::type_complexity)]
    pub(crate) fn raw_parts(&self) -> (usize, &[f32], &[u32], &[u32], &[u32], &[u32]) {
        (
            self.dense_dim,
            &self.dense,
            &self.field_offsets,
            &self.fields,
            &self.term_offsets,
            &self.terms,
        )
    }

    /// Rebuild from raw (untrusted, e.g. snapshot-decoded) parts; every
    /// structural invariant is validated.
    pub(crate) fn from_raw_parts(
        dense_dim: usize,
        dense: Vec<f32>,
        field_offsets: Vec<u32>,
        fields: Vec<u32>,
        term_offsets: Vec<u32>,
        terms: Vec<u32>,
    ) -> Result<Self, GraphError> {
        let (Some(&last_field), Some(&last_term)) = (field_offsets.last(), term_offsets.last())
        else {
            return Err(GraphError::CorruptFeatures("offset arrays must be non-empty"));
        };
        if field_offsets.len() != term_offsets.len() {
            return Err(GraphError::CorruptFeatures("field/term offset lengths differ"));
        }
        let n = field_offsets.len() - 1;
        if dense.len() != n * dense_dim {
            return Err(GraphError::CorruptFeatures("dense length mismatch"));
        }
        if last_field as usize != fields.len() || last_term as usize != terms.len() {
            return Err(GraphError::CorruptFeatures("last offset must cover the payload"));
        }
        if field_offsets.windows(2).any(|w| w[0] > w[1])
            || term_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(GraphError::CorruptFeatures("offsets must be monotone non-decreasing"));
        }
        Ok(Self { dense_dim, dense, field_offsets, fields, term_offsets, terms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut fs = FeatureStore::new(3);
        let a = fs.push(&[1, 2], &[10, 11, 12], &[0.1, 0.2, 0.3]);
        let b = fs.push(&[5], &[], &[1.0, 1.0, 1.0]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.fields(0), &[1, 2]);
        assert_eq!(fs.fields(1), &[5]);
        assert_eq!(fs.terms(0), &[10, 11, 12]);
        assert_eq!(fs.terms(1), &[] as &[u32]);
        assert_eq!(fs.dense(1), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn variable_field_counts_per_node() {
        let mut fs = FeatureStore::new(1);
        fs.push(&[1, 2, 3, 4, 5], &[], &[0.0]);
        fs.push(&[], &[], &[0.0]);
        fs.push(&[9], &[], &[0.0]);
        assert_eq!(fs.fields(0).len(), 5);
        assert_eq!(fs.fields(1).len(), 0);
        assert_eq!(fs.fields(2), &[9]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_dense_width_panics() {
        let mut fs = FeatureStore::new(4);
        fs.push(&[], &[], &[1.0]);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let mut fs = FeatureStore::new(2);
        fs.push(&[1], &[2, 3], &[0.5, 0.6]);
        fs.push(&[4, 5], &[6], &[0.7, 0.8]);
        let (dd, dense, fo, f, to, t) = fs.raw_parts();
        let rebuilt = FeatureStore::from_raw_parts(
            dd,
            dense.to_vec(),
            fo.to_vec(),
            f.to_vec(),
            to.to_vec(),
            t.to_vec(),
        )
        .expect("valid parts");
        assert_eq!(rebuilt, fs);
        // Structural defects are typed errors, not panics.
        let bad = FeatureStore::from_raw_parts(
            2,
            vec![0.5],
            fo.to_vec(),
            f.to_vec(),
            to.to_vec(),
            t.to_vec(),
        );
        assert!(matches!(bad, Err(GraphError::CorruptFeatures(_))));
        let bad = FeatureStore::from_raw_parts(
            dd,
            dense.to_vec(),
            vec![],
            f.to_vec(),
            vec![],
            t.to_vec(),
        );
        assert!(matches!(bad, Err(GraphError::CorruptFeatures(_))));
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let mut fs = FeatureStore::new(8);
        let before = fs.approx_bytes();
        fs.push(&[1, 2, 3], &[4, 5], &[0.0; 8]);
        assert!(fs.approx_bytes() > before);
    }
}
