//! Walker's alias method for O(1) sampling from a discrete distribution.
//!
//! The paper (§VI): "We use an Alias Table to implement the adjacency list to
//! achieve constant-time graph sampling independent of the graph size."

use rand::Rng;

/// An alias table over `n` outcomes with arbitrary non-negative weights.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability of the primary outcome in each bucket.
    prob: Vec<f32>,
    /// Fallback outcome per bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights. All-zero weights degrade to uniform.
    /// Panics on empty input.
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "AliasTable::new: empty weights");
        let n = weights.len();
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
                w as f64
            })
            .sum();

        if total <= 0.0 {
            // Uniform fallback.
            return Self { prob: vec![1.0; n], alias: (0..n as u32).collect() };
        }

        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w as f64 * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![1.0f32; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s] = scaled[s] as f32;
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (numerical slack) keep prob = 1.
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index in O(1).
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f32>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_tensor::seeded_rng;

    fn empirical(weights: &[f32], draws: usize) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = seeded_rng(99);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_distribution_simple() {
        let freq = empirical(&[1.0, 2.0, 3.0], 60_000);
        assert!((freq[0] - 1.0 / 6.0).abs() < 0.01, "{freq:?}");
        assert!((freq[1] - 2.0 / 6.0).abs() < 0.01, "{freq:?}");
        assert!((freq[2] - 3.0 / 6.0).abs() < 0.01, "{freq:?}");
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let freq = empirical(&[0.0, 1.0, 0.0, 1.0], 20_000);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
        assert!((freq[1] - 0.5).abs() < 0.02);
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        let freq = empirical(&[0.0, 0.0, 0.0], 30_000);
        for f in freq {
            assert!((f - 1.0 / 3.0).abs() < 0.02, "{f}");
        }
    }

    #[test]
    fn single_outcome_always_drawn() {
        let table = AliasTable::new(&[0.5]);
        let mut rng = seeded_rng(1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn skewed_distribution() {
        let freq = empirical(&[1000.0, 1.0], 50_000);
        assert!(freq[0] > 0.99);
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn empty_panics() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_panics() {
        let _ = AliasTable::new(&[f32::NAN]);
    }
}
