//! Compact binary graph snapshots.
//!
//! §VI: graphs are stored as "compact binary-format files" handed from the
//! graph generator to the graph engine. This module implements a versioned
//! little-endian format with `bytes` for zero-fuss framing:
//!
//! ```text
//! magic "ZOOMGRPH" | u32 version | u32 num_nodes | node types (u8 each)
//! | features block | u32 num_edge_types | per type: u8 tag + CSR block
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::csr::Csr;
use crate::error::GraphError;
use crate::features::FeatureStore;
use crate::types::{EdgeType, HeteroGraph, NodeType};

const MAGIC: &[u8; 8] = b"ZOOMGRPH";
const VERSION: u32 = 1;

fn put_u32_slice(buf: &mut BytesMut, s: &[u32]) {
    buf.put_u64_le(s.len() as u64);
    for &v in s {
        buf.put_u32_le(v);
    }
}

fn put_u64_slice(buf: &mut BytesMut, s: &[u64]) {
    buf.put_u64_le(s.len() as u64);
    for &v in s {
        buf.put_u64_le(v);
    }
}

fn put_f32_slice(buf: &mut BytesMut, s: &[f32]) {
    buf.put_u64_le(s.len() as u64);
    for &v in s {
        buf.put_f32_le(v);
    }
}

fn bad(msg: &'static str) -> GraphError {
    GraphError::Snapshot(msg)
}

fn take_len(buf: &mut Bytes, elem: usize) -> Result<usize, GraphError> {
    if buf.remaining() < 8 {
        return Err(bad("truncated length"));
    }
    let len = buf.get_u64_le() as usize;
    if buf.remaining() < len.checked_mul(elem).ok_or(GraphError::Snapshot("length overflow"))? {
        return Err(bad("truncated payload"));
    }
    Ok(len)
}

fn get_u32_slice(buf: &mut Bytes) -> Result<Vec<u32>, GraphError> {
    let len = take_len(buf, 4)?;
    Ok((0..len).map(|_| buf.get_u32_le()).collect())
}

fn get_u64_slice(buf: &mut Bytes) -> Result<Vec<u64>, GraphError> {
    let len = take_len(buf, 8)?;
    Ok((0..len).map(|_| buf.get_u64_le()).collect())
}

fn get_f32_slice(buf: &mut Bytes) -> Result<Vec<f32>, GraphError> {
    let len = take_len(buf, 4)?;
    Ok((0..len).map(|_| buf.get_f32_le()).collect())
}

/// Serialize a graph into a compact binary snapshot.
pub fn write_snapshot(graph: &HeteroGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + graph.num_nodes() * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(graph.num_nodes() as u32);
    for n in 0..graph.num_nodes() {
        buf.put_u8(graph.node_type(n as u32).as_u8());
    }
    // Features.
    let (dense_dim, dense, fo, fields, to, terms) = graph.features().raw_parts();
    buf.put_u32_le(dense_dim as u32);
    put_f32_slice(&mut buf, dense);
    put_u32_slice(&mut buf, fo);
    put_u32_slice(&mut buf, fields);
    put_u32_slice(&mut buf, to);
    put_u32_slice(&mut buf, terms);
    // Edges.
    let edge_types: Vec<(EdgeType, &Csr)> =
        graph.edge_types().filter_map(|et| graph.csr(et).map(|c| (et, c))).collect();
    buf.put_u32_le(edge_types.len() as u32);
    for (et, csr) in edge_types {
        buf.put_u8(et.as_u8());
        let (offsets, targets, weights) = csr.raw_parts();
        put_u64_slice(&mut buf, offsets);
        put_u32_slice(&mut buf, targets);
        put_f32_slice(&mut buf, weights);
    }
    buf.freeze()
}

/// Deserialize a snapshot produced by [`write_snapshot`].
pub fn read_snapshot(mut buf: Bytes) -> Result<HeteroGraph, GraphError> {
    if buf.remaining() < 8 || &buf.copy_to_bytes(8)[..] != MAGIC {
        return Err(bad("bad magic"));
    }
    if buf.remaining() < 8 {
        return Err(bad("truncated header"));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(bad("unsupported snapshot version"));
    }
    let num_nodes = buf.get_u32_le() as usize;
    if buf.remaining() < num_nodes {
        return Err(bad("truncated node types"));
    }
    let mut node_types = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        node_types
            .push(NodeType::from_u8(buf.get_u8()).ok_or(GraphError::Snapshot("bad node type"))?);
    }
    if buf.remaining() < 4 {
        return Err(bad("truncated feature header"));
    }
    let dense_dim = buf.get_u32_le() as usize;
    let dense = get_f32_slice(&mut buf)?;
    let fo = get_u32_slice(&mut buf)?;
    let fields = get_u32_slice(&mut buf)?;
    let to = get_u32_slice(&mut buf)?;
    let terms = get_u32_slice(&mut buf)?;
    if fo.len() != num_nodes + 1 || to.len() != num_nodes + 1 {
        return Err(bad("feature offsets inconsistent with node count"));
    }
    let features = FeatureStore::from_raw_parts(dense_dim, dense, fo, fields, to, terms)?;

    if buf.remaining() < 4 {
        return Err(bad("truncated edge header"));
    }
    let num_edge_types = buf.get_u32_le() as usize;
    let mut edges = std::collections::BTreeMap::new();
    for _ in 0..num_edge_types {
        if buf.remaining() < 1 {
            return Err(bad("truncated edge type tag"));
        }
        let et = EdgeType::from_u8(buf.get_u8()).ok_or(GraphError::Snapshot("bad edge type"))?;
        let offsets = get_u64_slice(&mut buf)?;
        let targets = get_u32_slice(&mut buf)?;
        let weights = get_f32_slice(&mut buf)?;
        if offsets.len() != num_nodes + 1 {
            return Err(bad("CSR offsets inconsistent with node count"));
        }
        edges.insert(et, Csr::from_raw_parts(offsets, targets, weights)?);
    }
    Ok(HeteroGraph::new(node_types, features, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample_graph() -> HeteroGraph {
        let mut b = GraphBuilder::new(3);
        let u = b.add_node(NodeType::User, vec![1, 2, 3], vec![], &[0.1, 0.2, 0.3]);
        let q = b.add_node(NodeType::Query, vec![4], vec![10, 11], &[0.4, 0.5, 0.6]);
        let i = b.add_node(NodeType::Item, vec![5, 6, 7, 8, 9], vec![10], &[0.7, 0.8, 0.9]);
        b.add_search_session(u, q, &[i]);
        b.add_similarity_edge(q, i, 0.5);
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_graph();
        let bytes = write_snapshot(&g);
        let g2 = read_snapshot(bytes).expect("roundtrip");
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for n in 0..g.num_nodes() as u32 {
            assert_eq!(g2.node_type(n), g.node_type(n));
            assert_eq!(g2.fields(n), g.fields(n));
            assert_eq!(g2.dense_feature(n), g.dense_feature(n));
            assert_eq!(g2.features().terms(n), g.features().terms(n));
            for et in EdgeType::ALL {
                assert_eq!(g2.neighbors(n, et), g.neighbors(n, et));
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_snapshot(Bytes::from_static(b"NOTAGRPH_and_more_bytes")).unwrap_err();
        assert_eq!(err, GraphError::Snapshot("bad magic"));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let g = sample_graph();
        let full = write_snapshot(&g);
        // Chop at a spread of prefix lengths; every one must error, not panic.
        for cut in [0usize, 4, 8, 12, 20, full.len() / 2, full.len() - 1] {
            let sliced = full.slice(0..cut);
            assert!(read_snapshot(sliced).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let g = sample_graph();
        let full = write_snapshot(&g);
        let mut raw = full.to_vec();
        raw[8] = 99; // version byte
        assert!(read_snapshot(Bytes::from(raw)).is_err());
    }

    #[test]
    fn snapshot_is_compact() {
        // Sanity: the 3-node sample should serialize to well under a KiB.
        let g = sample_graph();
        assert!(write_snapshot(&g).len() < 1024);
    }
}
