//! Compact binary graph snapshots.
//!
//! §VI: graphs are stored as "compact binary-format files" handed from the
//! graph generator to the graph engine. Two on-disk versions exist:
//!
//! **v1** — the original stream format, decoded element by element:
//!
//! ```text
//! magic "ZOOMGRPH" | u32 version=1 | u32 num_nodes | node types (u8 each)
//! | features block | u32 num_edge_types | per type: u8 tag + CSR block
//! ```
//!
//! **v2** (the current write format) — a zero-copy, section-table layout
//! sized for the billion tier, where per-element decode of the bulk arrays
//! (CSR offsets/targets, dense features, int8 embedding codes and their
//! scales) would dominate load time:
//!
//! ```text
//! magic "ZOOMGRPH" | u32 version=2 | u32 num_nodes | u32 dense_dim
//! | u32 num_sections
//! | section table: num_sections × { u32 kind | u32 elem | u32 arg | u32 pad
//!                                 | u64 offset | u64 count }
//! | payload: each section's raw little-endian array at `offset`
//! ```
//!
//! Alignment invariants (checked on read, upheld by the writer):
//! - every section `offset` is a multiple of [`SECTION_ALIGN`] (64) bytes,
//!   measured from the start of the snapshot;
//! - the reader copies the snapshot **once**, in bulk, into a 64-byte-aligned
//!   buffer ([`AlignedBytes`]), after which every section access is a
//!   validated reference-cast (`&[u8] → &[u32]/&[u64]/&[f32]/&[i8]`) — no
//!   per-element decode of any bulk segment;
//! - `elem` must equal the byte width of the section kind's element type and
//!   `offset + count × elem` must lie inside the snapshot.
//!
//! The payload is stored native little-endian and reference-cast on read, so
//! the format (like the rest of the workspace) assumes a little-endian host.
//!
//! v1 snapshots remain readable: [`read_snapshot`] dispatches on the version
//! field. v2 snapshots may additionally carry an optional int8-quantized
//! embedding pool ([`QuantPool`]: ids, codes, per-vector scales/zero-points/
//! code-sums) so the serving tier can load a prequantized item store without
//! re-encoding it.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::csr::Csr;
use crate::error::GraphError;
use crate::features::FeatureStore;
use crate::types::{EdgeType, HeteroGraph, NodeType};

const MAGIC: &[u8; 8] = b"ZOOMGRPH";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

/// Section payloads start at multiples of this many bytes from the start of
/// the snapshot — a cache line, and a multiple of every element alignment
/// the format stores (≤ 8), so an aligned base buffer makes every section
/// reference-castable.
pub const SECTION_ALIGN: usize = 64;

/// v2 header: magic (8) + version + num_nodes + dense_dim + num_sections.
const HEADER_BYTES: usize = 24;
/// One section-table entry: kind + elem + arg + pad + offset (u64) + count (u64).
const SECTION_ENTRY_BYTES: usize = 32;
/// Sanity bound on the section count (a graph needs ~6 + 3 per edge type).
const MAX_SECTIONS: usize = 4096;

/// Section kinds. `arg` carries the edge-type tag for CSR sections and the
/// embedding dimension for quantized-pool code sections; 0 otherwise.
mod kind {
    pub const NODE_TYPES: u32 = 1;
    pub const DENSE: u32 = 2;
    pub const FIELD_OFFSETS: u32 = 3;
    pub const FIELDS: u32 = 4;
    pub const TERM_OFFSETS: u32 = 5;
    pub const TERMS: u32 = 6;
    pub const CSR_OFFSETS: u32 = 7;
    pub const CSR_TARGETS: u32 = 8;
    pub const CSR_WEIGHTS: u32 = 9;
    pub const QUANT_IDS: u32 = 10;
    pub const QUANT_CODES: u32 = 11;
    pub const QUANT_SCALES: u32 = 12;
    pub const QUANT_ZERO_POINTS: u32 = 13;
    pub const QUANT_CODE_SUMS: u32 = 14;
}

fn bad(msg: &'static str) -> GraphError {
    GraphError::Snapshot(msg)
}

// ---------------------------------------------------------------------------
// Zero-copy plumbing: aligned buffer + validated reference casts.
// ---------------------------------------------------------------------------

/// A 64-byte-aligned cell; `AlignedBytes` is a `Vec` of these so its data
/// pointer is 64-byte aligned without any allocator tricks.
#[derive(Clone, Copy)]
#[repr(C, align(64))]
struct Align64([u8; SECTION_ALIGN]);

/// An owned byte buffer whose data pointer is [`SECTION_ALIGN`]-aligned.
/// Filled by one bulk copy from the source snapshot; all section reads then
/// borrow straight out of it.
struct AlignedBytes {
    blocks: Vec<Align64>,
    len: usize,
}

impl AlignedBytes {
    fn from_slice(src: &[u8]) -> Self {
        let mut blocks = vec![Align64([0u8; SECTION_ALIGN]); src.len().div_ceil(SECTION_ALIGN)];
        for (dst, chunk) in blocks.iter_mut().zip(src.chunks(SECTION_ALIGN)) {
            dst.0[..chunk.len()].copy_from_slice(chunk);
        }
        Self { blocks, len: src.len() }
    }

    fn as_slice(&self) -> &[u8] {
        // `blocks` is one contiguous Vec allocation of `Align64` cells —
        // `#[repr(C, align(64))]` wrappers over `[u8; 64]` whose size equals
        // their alignment, so consecutive cells sit exactly 64 bytes apart
        // with no padding and every byte is initialized. By construction
        // `len <= blocks.len() * 64`.
        // SAFETY: the first `len` bytes of the `blocks` allocation are
        // initialized and in bounds (above); the returned slice borrows `self`.
        unsafe { std::slice::from_raw_parts(self.blocks.as_ptr().cast::<u8>(), self.len) }
    }
}

mod sealed {
    pub trait Sealed {}
}

/// Plain-old-data element types the reader may reference-cast section bytes
/// into. Sealed to primitive scalars: no padding, no niches, every bit
/// pattern valid, alignment ≤ [`SECTION_ALIGN`].
trait Pod: Copy + sealed::Sealed {}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl sealed::Sealed for $t {}
        impl Pod for $t {}
    )*};
}
impl_pod!(u8, i8, u32, i32, u64, f32);

/// Reinterpret `bytes` as a slice of `T` after validating length divisibility
/// and pointer alignment. This is the only cast site in the reader.
fn cast_slice<T: Pod>(bytes: &[u8]) -> Result<&[T], GraphError> {
    let elem = std::mem::size_of::<T>();
    if !bytes.len().is_multiple_of(elem) {
        return Err(bad("section byte length not a multiple of element size"));
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(bad("misaligned section payload"));
    }
    // `T: Pod` is sealed to primitive scalars: no padding, no niches, every
    // bit pattern a valid value. The returned slice borrows the same
    // allocation with the same lifetime as `bytes`.
    // SAFETY: the pointer was checked aligned for `T` just above, and
    // `bytes.len() / elem` elements span exactly `bytes.len()` in-bounds bytes.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / elem) })
}

// ---------------------------------------------------------------------------
// v1: per-element stream codec (kept for old snapshots on disk).
// ---------------------------------------------------------------------------

fn put_u32_slice(buf: &mut BytesMut, s: &[u32]) {
    buf.put_u64_le(s.len() as u64);
    for &v in s {
        buf.put_u32_le(v);
    }
}

fn put_u64_slice(buf: &mut BytesMut, s: &[u64]) {
    buf.put_u64_le(s.len() as u64);
    for &v in s {
        buf.put_u64_le(v);
    }
}

fn put_f32_slice(buf: &mut BytesMut, s: &[f32]) {
    buf.put_u64_le(s.len() as u64);
    for &v in s {
        buf.put_f32_le(v);
    }
}

fn take_len(buf: &mut Bytes, elem: usize) -> Result<usize, GraphError> {
    if buf.remaining() < 8 {
        return Err(bad("truncated length"));
    }
    let len = buf.get_u64_le() as usize;
    if buf.remaining() < len.checked_mul(elem).ok_or(GraphError::Snapshot("length overflow"))? {
        return Err(bad("truncated payload"));
    }
    Ok(len)
}

fn get_u32_slice(buf: &mut Bytes) -> Result<Vec<u32>, GraphError> {
    let len = take_len(buf, 4)?;
    Ok((0..len).map(|_| buf.get_u32_le()).collect())
}

fn get_u64_slice(buf: &mut Bytes) -> Result<Vec<u64>, GraphError> {
    let len = take_len(buf, 8)?;
    Ok((0..len).map(|_| buf.get_u64_le()).collect())
}

fn get_f32_slice(buf: &mut Bytes) -> Result<Vec<f32>, GraphError> {
    let len = take_len(buf, 4)?;
    Ok((0..len).map(|_| buf.get_f32_le()).collect())
}

/// Serialize a graph into the legacy v1 stream format. New snapshots should
/// use [`write_snapshot`] (v2); this writer exists so the v1 read path stays
/// covered and old fixtures can be regenerated.
pub fn write_snapshot_v1(graph: &HeteroGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + graph.num_nodes() * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V1);
    buf.put_u32_le(graph.num_nodes() as u32);
    for n in 0..graph.num_nodes() {
        buf.put_u8(graph.node_type(n as u32).as_u8());
    }
    // Features.
    let (dense_dim, dense, fo, fields, to, terms) = graph.features().raw_parts();
    buf.put_u32_le(dense_dim as u32);
    put_f32_slice(&mut buf, dense);
    put_u32_slice(&mut buf, fo);
    put_u32_slice(&mut buf, fields);
    put_u32_slice(&mut buf, to);
    put_u32_slice(&mut buf, terms);
    // Edges.
    let edge_types: Vec<(EdgeType, &Csr)> =
        graph.edge_types().filter_map(|et| graph.csr(et).map(|c| (et, c))).collect();
    buf.put_u32_le(edge_types.len() as u32);
    for (et, csr) in edge_types {
        buf.put_u8(et.as_u8());
        let (offsets, targets, weights) = csr.raw_parts();
        put_u64_slice(&mut buf, offsets);
        put_u32_slice(&mut buf, targets);
        put_f32_slice(&mut buf, weights);
    }
    buf.freeze()
}

/// Deserialize a v1 snapshot; `buf` starts at the magic.
fn read_snapshot_v1(mut buf: Bytes) -> Result<HeteroGraph, GraphError> {
    // Magic and version were validated by the dispatcher; skip them.
    buf.advance(12);
    if buf.remaining() < 4 {
        return Err(bad("truncated header"));
    }
    let num_nodes = buf.get_u32_le() as usize;
    if buf.remaining() < num_nodes {
        return Err(bad("truncated node types"));
    }
    let mut node_types = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        node_types
            .push(NodeType::from_u8(buf.get_u8()).ok_or(GraphError::Snapshot("bad node type"))?);
    }
    if buf.remaining() < 4 {
        return Err(bad("truncated feature header"));
    }
    let dense_dim = buf.get_u32_le() as usize;
    let dense = get_f32_slice(&mut buf)?;
    let fo = get_u32_slice(&mut buf)?;
    let fields = get_u32_slice(&mut buf)?;
    let to = get_u32_slice(&mut buf)?;
    let terms = get_u32_slice(&mut buf)?;
    if fo.len() != num_nodes + 1 || to.len() != num_nodes + 1 {
        return Err(bad("feature offsets inconsistent with node count"));
    }
    let features = FeatureStore::from_raw_parts(dense_dim, dense, fo, fields, to, terms)?;

    if buf.remaining() < 4 {
        return Err(bad("truncated edge header"));
    }
    let num_edge_types = buf.get_u32_le() as usize;
    let mut edges = BTreeMap::new();
    for _ in 0..num_edge_types {
        if buf.remaining() < 1 {
            return Err(bad("truncated edge type tag"));
        }
        let et = EdgeType::from_u8(buf.get_u8()).ok_or(GraphError::Snapshot("bad edge type"))?;
        let offsets = get_u64_slice(&mut buf)?;
        let targets = get_u32_slice(&mut buf)?;
        let weights = get_f32_slice(&mut buf)?;
        if offsets.len() != num_nodes + 1 {
            return Err(bad("CSR offsets inconsistent with node count"));
        }
        edges.insert(et, Csr::from_raw_parts(offsets, targets, weights)?);
    }
    Ok(HeteroGraph::new(node_types, features, edges))
}

// ---------------------------------------------------------------------------
// v2: section-table writer.
// ---------------------------------------------------------------------------

/// An optional int8-quantized embedding pool carried alongside the graph in
/// a v2 snapshot: `ids[i]`'s codes are `codes[i*dim .. (i+1)*dim]`, with the
/// affine parameters `x̂ = zero_point + scale · code` and the precomputed
/// per-vector code sum the factored quantized dot needs.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantPool {
    pub dim: usize,
    pub ids: Vec<u64>,
    pub codes: Vec<i8>,
    pub scales: Vec<f32>,
    pub zero_points: Vec<f32>,
    pub code_sums: Vec<i32>,
}

impl QuantPool {
    fn validate(&self) -> Result<(), GraphError> {
        let n = self.ids.len();
        if self.dim == 0 && !self.codes.is_empty() {
            return Err(bad("quantized pool has codes but dim 0"));
        }
        if self.codes.len() != n * self.dim {
            return Err(bad("quantized pool codes length != ids × dim"));
        }
        if self.scales.len() != n || self.zero_points.len() != n || self.code_sums.len() != n {
            return Err(bad("quantized pool parameter arrays must match ids length"));
        }
        Ok(())
    }
}

/// One section staged for writing: raw little-endian payload plus the table
/// fields that describe it.
struct SectionSpec {
    kind: u32,
    elem: u32,
    arg: u32,
    bytes: Vec<u8>,
}

fn spec_u8(kind: u32, arg: u32, s: &[u8]) -> SectionSpec {
    SectionSpec { kind, elem: 1, arg, bytes: s.to_vec() }
}

fn spec_i8(kind: u32, arg: u32, s: &[i8]) -> SectionSpec {
    SectionSpec { kind, elem: 1, arg, bytes: s.iter().map(|&v| v as u8).collect() }
}

fn spec_u32(kind: u32, arg: u32, s: &[u32]) -> SectionSpec {
    SectionSpec { kind, elem: 4, arg, bytes: s.iter().flat_map(|v| v.to_le_bytes()).collect() }
}

fn spec_i32(kind: u32, arg: u32, s: &[i32]) -> SectionSpec {
    SectionSpec { kind, elem: 4, arg, bytes: s.iter().flat_map(|v| v.to_le_bytes()).collect() }
}

fn spec_u64(kind: u32, arg: u32, s: &[u64]) -> SectionSpec {
    SectionSpec { kind, elem: 8, arg, bytes: s.iter().flat_map(|v| v.to_le_bytes()).collect() }
}

fn spec_f32(kind: u32, arg: u32, s: &[f32]) -> SectionSpec {
    SectionSpec { kind, elem: 4, arg, bytes: s.iter().flat_map(|v| v.to_le_bytes()).collect() }
}

fn assemble_v2(num_nodes: u32, dense_dim: u32, sections: &[SectionSpec]) -> Bytes {
    let table_end = HEADER_BYTES + sections.len() * SECTION_ENTRY_BYTES;
    let mut offsets = Vec::with_capacity(sections.len());
    let mut end = table_end;
    let mut cursor = table_end.next_multiple_of(SECTION_ALIGN);
    for s in sections {
        offsets.push(cursor);
        end = cursor + s.bytes.len();
        cursor = end.next_multiple_of(SECTION_ALIGN);
    }
    let mut out = vec![0u8; end];
    out[..8].copy_from_slice(MAGIC);
    out[8..12].copy_from_slice(&VERSION_V2.to_le_bytes());
    out[12..16].copy_from_slice(&num_nodes.to_le_bytes());
    out[16..20].copy_from_slice(&dense_dim.to_le_bytes());
    out[20..24].copy_from_slice(&(sections.len() as u32).to_le_bytes());
    for (i, (s, &off)) in sections.iter().zip(&offsets).enumerate() {
        let e = HEADER_BYTES + i * SECTION_ENTRY_BYTES;
        out[e..e + 4].copy_from_slice(&s.kind.to_le_bytes());
        out[e + 4..e + 8].copy_from_slice(&s.elem.to_le_bytes());
        out[e + 8..e + 12].copy_from_slice(&s.arg.to_le_bytes());
        // 4 bytes of zero padding at e+12.
        out[e + 16..e + 24].copy_from_slice(&(off as u64).to_le_bytes());
        out[e + 24..e + 32]
            .copy_from_slice(&((s.bytes.len() / s.elem as usize) as u64).to_le_bytes());
        out[off..off + s.bytes.len()].copy_from_slice(&s.bytes);
    }
    Bytes::from(out)
}

fn graph_sections(graph: &HeteroGraph) -> Vec<SectionSpec> {
    let node_types: Vec<u8> =
        (0..graph.num_nodes()).map(|n| graph.node_type(n as u32).as_u8()).collect();
    let (_, dense, fo, fields, to, terms) = graph.features().raw_parts();
    let mut sections = vec![
        spec_u8(kind::NODE_TYPES, 0, &node_types),
        spec_f32(kind::DENSE, 0, dense),
        spec_u32(kind::FIELD_OFFSETS, 0, fo),
        spec_u32(kind::FIELDS, 0, fields),
        spec_u32(kind::TERM_OFFSETS, 0, to),
        spec_u32(kind::TERMS, 0, terms),
    ];
    for (et, csr) in graph.edge_types().filter_map(|et| graph.csr(et).map(|c| (et, c))) {
        let tag = et.as_u8() as u32;
        let (offsets, targets, weights) = csr.raw_parts();
        sections.push(spec_u64(kind::CSR_OFFSETS, tag, offsets));
        sections.push(spec_u32(kind::CSR_TARGETS, tag, targets));
        sections.push(spec_f32(kind::CSR_WEIGHTS, tag, weights));
    }
    sections
}

/// Serialize a graph into the current (v2, zero-copy) snapshot format.
pub fn write_snapshot(graph: &HeteroGraph) -> Bytes {
    let (dense_dim, ..) = graph.features().raw_parts();
    assemble_v2(graph.num_nodes() as u32, dense_dim as u32, &graph_sections(graph))
}

/// Serialize a graph plus an int8-quantized embedding pool into a v2
/// snapshot. The pool's shape is validated here so a malformed pool fails at
/// write time instead of producing an unreadable snapshot.
pub fn write_snapshot_with_pool(
    graph: &HeteroGraph,
    pool: &QuantPool,
) -> Result<Bytes, GraphError> {
    pool.validate()?;
    let mut sections = graph_sections(graph);
    sections.push(spec_u64(kind::QUANT_IDS, 0, &pool.ids));
    sections.push(spec_i8(kind::QUANT_CODES, pool.dim as u32, &pool.codes));
    sections.push(spec_f32(kind::QUANT_SCALES, 0, &pool.scales));
    sections.push(spec_f32(kind::QUANT_ZERO_POINTS, 0, &pool.zero_points));
    sections.push(spec_i32(kind::QUANT_CODE_SUMS, 0, &pool.code_sums));
    let (dense_dim, ..) = graph.features().raw_parts();
    Ok(assemble_v2(graph.num_nodes() as u32, dense_dim as u32, &sections))
}

// ---------------------------------------------------------------------------
// v2: zero-copy reader.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Section {
    kind: u32,
    elem: u32,
    arg: u32,
    offset: usize,
    count: usize,
}

fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// One edge type's CSR arrays as borrowed from a v2 snapshot:
/// `(offsets, targets, weights)`.
pub type CsrParts<'a> = (&'a [u64], &'a [u32], &'a [f32]);

/// A parsed v2 snapshot holding one aligned copy of the payload. Section
/// accessors borrow straight out of that buffer (reference-cast, validated
/// at parse time); [`SnapshotV2::graph`] materializes a [`HeteroGraph`] from
/// them with bulk copies only.
pub struct SnapshotV2 {
    data: AlignedBytes,
    sections: Vec<Section>,
    num_nodes: usize,
    dense_dim: usize,
}

impl SnapshotV2 {
    /// Validate the header and section table and take the single aligned
    /// copy of `raw`. All structural invariants (alignment, bounds, element
    /// widths) are checked here; accessors after a successful parse cannot
    /// fail on geometry.
    pub fn parse(raw: &[u8]) -> Result<Self, GraphError> {
        if raw.len() < 12 || &raw[..8] != MAGIC {
            return Err(bad("bad magic"));
        }
        if le_u32(&raw[8..]) != VERSION_V2 {
            return Err(bad("unsupported snapshot version"));
        }
        if raw.len() < HEADER_BYTES {
            return Err(bad("truncated snapshot header"));
        }
        let num_nodes = le_u32(&raw[12..]) as usize;
        let dense_dim = le_u32(&raw[16..]) as usize;
        let num_sections = le_u32(&raw[20..]) as usize;
        if num_sections > MAX_SECTIONS {
            return Err(bad("section table too large"));
        }
        let table_end = HEADER_BYTES + num_sections * SECTION_ENTRY_BYTES;
        if raw.len() < table_end {
            return Err(bad("truncated section table"));
        }
        let mut sections = Vec::with_capacity(num_sections);
        for entry in raw[HEADER_BYTES..table_end].chunks_exact(SECTION_ENTRY_BYTES) {
            let elem = le_u32(&entry[4..]);
            if !matches!(elem, 1 | 4 | 8) {
                return Err(bad("bad section element size"));
            }
            let offset = le_u64(&entry[16..]) as usize;
            let count = le_u64(&entry[24..]) as usize;
            if !offset.is_multiple_of(SECTION_ALIGN) {
                return Err(bad("misaligned section offset"));
            }
            if offset < table_end {
                return Err(bad("section overlaps header"));
            }
            let len =
                count.checked_mul(elem as usize).ok_or(GraphError::Snapshot("length overflow"))?;
            if offset.checked_add(len).ok_or(GraphError::Snapshot("length overflow"))? > raw.len() {
                return Err(bad("section out of bounds"));
            }
            sections.push(Section {
                kind: le_u32(entry),
                elem,
                arg: le_u32(&entry[8..]),
                offset,
                count,
            });
        }
        Ok(Self { data: AlignedBytes::from_slice(raw), sections, num_nodes, dense_dim })
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    pub fn dense_dim(&self) -> usize {
        self.dense_dim
    }

    /// The aligned payload buffer every section accessor borrows from.
    /// Exposed so tests can assert the zero-copy property: a section slice's
    /// address range must lie inside this buffer.
    pub fn as_bytes(&self) -> &[u8] {
        self.data.as_slice()
    }

    fn find(&self, kind: u32, arg: u32) -> Option<Section> {
        self.sections.iter().copied().find(|s| s.kind == kind && s.arg == arg)
    }

    /// Reference-cast one section's bytes. Geometry was validated at parse
    /// time; the element-width check here guards against a table entry whose
    /// `elem` disagrees with the kind's expected type.
    fn slice<T: Pod>(&self, s: Section) -> Result<&[T], GraphError> {
        if s.elem as usize != std::mem::size_of::<T>() {
            return Err(bad("section element size mismatch"));
        }
        let bytes = &self.data.as_slice()[s.offset..s.offset + s.count * s.elem as usize];
        cast_slice(bytes)
    }

    fn required<T: Pod>(&self, kind: u32, arg: u32) -> Result<&[T], GraphError> {
        let s = self.find(kind, arg).ok_or(GraphError::Snapshot("missing required section"))?;
        self.slice(s)
    }

    /// Raw node-type tags (`u8` per node), zero-copy.
    pub fn node_type_tags(&self) -> Result<&[u8], GraphError> {
        self.required::<u8>(kind::NODE_TYPES, 0)
    }

    /// The dense feature matrix (`num_nodes × dense_dim`, row-major), zero-copy.
    pub fn dense(&self) -> Result<&[f32], GraphError> {
        self.required::<f32>(kind::DENSE, 0)
    }

    /// One edge type's CSR arrays `(offsets, targets, weights)`, zero-copy.
    pub fn csr_parts(&self, et: EdgeType) -> Result<Option<CsrParts<'_>>, GraphError> {
        let tag = et.as_u8() as u32;
        let Some(off) = self.find(kind::CSR_OFFSETS, tag) else {
            return Ok(None);
        };
        let targets =
            self.find(kind::CSR_TARGETS, tag).ok_or(GraphError::Snapshot("CSR missing targets"))?;
        let weights =
            self.find(kind::CSR_WEIGHTS, tag).ok_or(GraphError::Snapshot("CSR missing weights"))?;
        Ok(Some((self.slice(off)?, self.slice(targets)?, self.slice(weights)?)))
    }

    /// The quantized embedding codes (`ids × dim`, row-major `i8`), zero-copy;
    /// `None` when the snapshot carries no pool.
    pub fn quant_codes(&self) -> Result<Option<(usize, &[i8])>, GraphError> {
        match self.sections.iter().copied().find(|s| s.kind == kind::QUANT_CODES) {
            Some(s) => Ok(Some((s.arg as usize, self.slice(s)?))),
            None => Ok(None),
        }
    }

    /// The per-vector quantization scales, zero-copy; `None` without a pool.
    pub fn quant_scales(&self) -> Result<Option<&[f32]>, GraphError> {
        match self.find(kind::QUANT_SCALES, 0) {
            Some(s) => Ok(Some(self.slice(s)?)),
            None => Ok(None),
        }
    }

    /// Materialize the optional quantized embedding pool (bulk copies of the
    /// zero-copy sections), validating its cross-section shape.
    pub fn quant_pool(&self) -> Result<Option<QuantPool>, GraphError> {
        let Some((dim, codes)) = self.quant_codes()? else {
            return Ok(None);
        };
        let pool = QuantPool {
            dim,
            ids: self.required::<u64>(kind::QUANT_IDS, 0)?.to_vec(),
            codes: codes.to_vec(),
            scales: self.required::<f32>(kind::QUANT_SCALES, 0)?.to_vec(),
            zero_points: self.required::<f32>(kind::QUANT_ZERO_POINTS, 0)?.to_vec(),
            code_sums: self.required::<i32>(kind::QUANT_CODE_SUMS, 0)?.to_vec(),
        };
        pool.validate()?;
        Ok(Some(pool))
    }

    /// Materialize the full [`HeteroGraph`]. The only per-element work is
    /// node-type tag validation (`u8 → enum`); every bulk array (dense
    /// features, feature offsets, CSR arrays) is a reference-cast followed by
    /// one `memcpy`-shaped `to_vec`.
    pub fn graph(&self) -> Result<HeteroGraph, GraphError> {
        let tags = self.node_type_tags()?;
        if tags.len() != self.num_nodes {
            return Err(bad("node type section inconsistent with node count"));
        }
        let node_types = tags
            .iter()
            .map(|&b| NodeType::from_u8(b).ok_or(GraphError::Snapshot("bad node type")))
            .collect::<Result<Vec<_>, _>>()?;
        let fo = self.required::<u32>(kind::FIELD_OFFSETS, 0)?;
        let to = self.required::<u32>(kind::TERM_OFFSETS, 0)?;
        if fo.len() != self.num_nodes + 1 || to.len() != self.num_nodes + 1 {
            return Err(bad("feature offsets inconsistent with node count"));
        }
        let features = FeatureStore::from_raw_parts(
            self.dense_dim,
            self.dense()?.to_vec(),
            fo.to_vec(),
            self.required::<u32>(kind::FIELDS, 0)?.to_vec(),
            to.to_vec(),
            self.required::<u32>(kind::TERMS, 0)?.to_vec(),
        )?;
        let mut edges = BTreeMap::new();
        for et in EdgeType::ALL {
            if let Some((offsets, targets, weights)) = self.csr_parts(et)? {
                if offsets.len() != self.num_nodes + 1 {
                    return Err(bad("CSR offsets inconsistent with node count"));
                }
                edges.insert(
                    et,
                    Csr::from_raw_parts(offsets.to_vec(), targets.to_vec(), weights.to_vec())?,
                );
            }
        }
        Ok(HeteroGraph::new(node_types, features, edges))
    }
}

/// Deserialize a snapshot produced by [`write_snapshot`] (v2) or the legacy
/// [`write_snapshot_v1`], dispatching on the version field.
pub fn read_snapshot(buf: Bytes) -> Result<HeteroGraph, GraphError> {
    if buf.len() < 12 || &buf[..8] != MAGIC {
        return Err(bad("bad magic"));
    }
    match le_u32(&buf[8..]) {
        VERSION_V1 => read_snapshot_v1(buf),
        VERSION_V2 => SnapshotV2::parse(&buf)?.graph(),
        _ => Err(bad("unsupported snapshot version")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample_graph() -> HeteroGraph {
        let mut b = GraphBuilder::new(3);
        let u = b.add_node(NodeType::User, vec![1, 2, 3], vec![], &[0.1, 0.2, 0.3]);
        let q = b.add_node(NodeType::Query, vec![4], vec![10, 11], &[0.4, 0.5, 0.6]);
        let i = b.add_node(NodeType::Item, vec![5, 6, 7, 8, 9], vec![10], &[0.7, 0.8, 0.9]);
        b.add_search_session(u, q, &[i]);
        b.add_similarity_edge(q, i, 0.5);
        b.finish()
    }

    fn sample_pool() -> QuantPool {
        QuantPool {
            dim: 4,
            ids: vec![7, 11],
            codes: vec![1, -2, 3, -4, 127, -127, 0, 64],
            scales: vec![0.5, 0.25],
            zero_points: vec![0.1, -0.2],
            code_sums: vec![-2, 64],
        }
    }

    fn assert_graphs_equal(g: &HeteroGraph, g2: &HeteroGraph) {
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for n in 0..g.num_nodes() as u32 {
            assert_eq!(g2.node_type(n), g.node_type(n));
            assert_eq!(g2.fields(n), g.fields(n));
            assert_eq!(g2.dense_feature(n), g.dense_feature(n));
            assert_eq!(g2.features().terms(n), g.features().terms(n));
            for et in EdgeType::ALL {
                assert_eq!(g2.neighbors(n, et), g.neighbors(n, et));
            }
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_graph();
        let bytes = write_snapshot(&g);
        let g2 = read_snapshot(bytes).expect("roundtrip");
        assert_graphs_equal(&g, &g2);
    }

    #[test]
    fn v1_snapshots_still_load() {
        let g = sample_graph();
        let bytes = write_snapshot_v1(&g);
        assert_eq!(bytes[8], 1, "v1 writer must stamp version 1");
        let g2 = read_snapshot(bytes).expect("v1 read");
        assert_graphs_equal(&g, &g2);
    }

    #[test]
    fn v2_sections_are_reference_casts_into_the_aligned_buffer() {
        let g = sample_graph();
        let bytes = write_snapshot(&g);
        let snap = SnapshotV2::parse(&bytes).expect("parse");
        let buf = snap.as_bytes().as_ptr_range();
        let in_buf = |ptr: *const u8, len_bytes: usize| {
            // SAFETY-free arithmetic on raw addresses only.
            let addr = ptr as usize;
            addr >= buf.start as usize && addr + len_bytes <= buf.end as usize
        };
        let dense = snap.dense().expect("dense");
        assert!(!dense.is_empty());
        assert!(in_buf(dense.as_ptr().cast(), std::mem::size_of_val(dense)));
        assert_eq!(dense.as_ptr() as usize % SECTION_ALIGN, 0, "dense must be 64B aligned");
        let tags = snap.node_type_tags().expect("tags");
        assert!(in_buf(tags.as_ptr(), tags.len()));
        let mut saw_csr = false;
        for et in EdgeType::ALL {
            if let Some((o, t, w)) = snap.csr_parts(et).expect("csr") {
                saw_csr = true;
                assert!(in_buf(o.as_ptr().cast(), std::mem::size_of_val(o)));
                assert!(in_buf(t.as_ptr().cast(), std::mem::size_of_val(t)));
                assert!(in_buf(w.as_ptr().cast(), std::mem::size_of_val(w)));
                assert_eq!(o.as_ptr() as usize % SECTION_ALIGN, 0);
            }
        }
        assert!(saw_csr, "sample graph must have at least one CSR section");
    }

    #[test]
    fn quant_pool_roundtrips_and_is_zero_copy() {
        let g = sample_graph();
        let pool = sample_pool();
        let bytes = write_snapshot_with_pool(&g, &pool).expect("write with pool");
        let snap = SnapshotV2::parse(&bytes).expect("parse");
        let (dim, codes) = snap.quant_codes().expect("codes").expect("pool present");
        assert_eq!(dim, pool.dim);
        assert_eq!(codes, &pool.codes[..]);
        let buf = snap.as_bytes().as_ptr_range();
        let addr = codes.as_ptr() as usize;
        assert!(addr >= buf.start as usize && addr + codes.len() <= buf.end as usize);
        assert_eq!(snap.quant_pool().expect("pool").expect("present"), pool);
        // The graph part is unaffected by the extra sections.
        assert_graphs_equal(&g, &snap.graph().expect("graph"));
        // And a pool-less snapshot reports no pool.
        let plain = SnapshotV2::parse(&write_snapshot(&g)).expect("parse");
        assert!(plain.quant_pool().expect("no pool").is_none());
    }

    #[test]
    fn rejects_malformed_pool_at_write_time() {
        let g = sample_graph();
        let mut pool = sample_pool();
        pool.scales.pop();
        assert!(write_snapshot_with_pool(&g, &pool).is_err());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_snapshot(Bytes::from_static(b"NOTAGRPH_and_more_bytes")).unwrap_err();
        assert_eq!(err, GraphError::Snapshot("bad magic"));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let g = sample_graph();
        for full in [write_snapshot(&g), write_snapshot_v1(&g)] {
            // Chop at a spread of prefix lengths; every one must error, not
            // panic.
            for cut in [0usize, 4, 8, 12, 20, full.len() / 2, full.len() - 1] {
                let sliced = full.slice(0..cut);
                assert!(read_snapshot(sliced).is_err(), "cut at {cut} should fail");
            }
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let g = sample_graph();
        let full = write_snapshot(&g);
        let mut raw = full.to_vec();
        raw[8] = 99; // version byte
        assert!(read_snapshot(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_misaligned_section_offset() {
        let g = sample_graph();
        let mut raw = write_snapshot(&g).to_vec();
        // Nudge the first section's offset off the 64-byte grid.
        let off_pos = HEADER_BYTES + 16;
        raw[off_pos] = raw[off_pos].wrapping_add(1);
        match SnapshotV2::parse(&raw) {
            Err(err) => assert_eq!(err, GraphError::Snapshot("misaligned section offset")),
            Ok(_) => panic!("misaligned offset must be rejected"),
        }
    }

    #[test]
    fn rejects_out_of_bounds_section() {
        let g = sample_graph();
        let mut raw = write_snapshot(&g).to_vec();
        // Inflate the first section's count far past the buffer.
        let count_pos = HEADER_BYTES + 24;
        raw[count_pos..count_pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(SnapshotV2::parse(&raw).is_err());
    }

    #[test]
    fn rejects_element_size_lies() {
        let g = sample_graph();
        let mut raw = write_snapshot(&g).to_vec();
        // Claim the node-type section (elem 1) holds 8-byte elements. Parse
        // may accept the geometry if it still fits, but typed access must
        // refuse the cast.
        let elem_pos = HEADER_BYTES + 4;
        raw[elem_pos] = 8;
        // Parse itself may fail (count × 8 can overflow the payload); if the
        // geometry still fits, typed access must refuse the cast.
        if let Ok(snap) = SnapshotV2::parse(&raw) {
            assert_eq!(
                snap.node_type_tags().unwrap_err(),
                GraphError::Snapshot("section element size mismatch")
            );
        }
    }

    #[test]
    fn snapshot_is_compact() {
        // Sanity: the 3-node sample should stay small. v2 pads every section
        // start to a 64-byte boundary, so the floor is ~num_sections × 64
        // plus the header/table — still well under 2 KiB for 3 nodes.
        let g = sample_graph();
        assert!(write_snapshot(&g).len() < 2048);
        assert!(write_snapshot_v1(&g).len() < 1024);
    }
}
