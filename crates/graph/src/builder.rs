//! Graph builder — the Rust counterpart of the paper's ODPS "graph generator"
//! (§VI), which parses behavior logs into heterogeneous graphs.
//!
//! The builder accepts nodes with typed features and edges of the §II
//! categories, including the session rule: "Given a click sequence
//! s = (i₁,…,iₘ) under a user u's searched query q, we build interaction
//! edges between u and the searched query q, two adjacently clicked items
//! cᵢ and cᵢ₊₁, and between each clicked node cᵢ and the query q."

use std::collections::BTreeMap;

use crate::csr::Csr;
use crate::features::FeatureStore;
use crate::types::{EdgeType, HeteroGraph, NodeId, NodeType};

/// Incremental builder for a [`HeteroGraph`].
pub struct GraphBuilder {
    node_types: Vec<NodeType>,
    features: FeatureStore,
    edges: BTreeMap<EdgeType, Vec<(NodeId, NodeId, f32)>>,
}

impl GraphBuilder {
    /// `dense_dim` is the width of every node's dense content vector.
    pub fn new(dense_dim: usize) -> Self {
        Self {
            node_types: Vec::new(),
            features: FeatureStore::new(dense_dim),
            edges: BTreeMap::new(),
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of directed edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// Add a node; returns its dense id.
    pub fn add_node(
        &mut self,
        ty: NodeType,
        fields: Vec<u32>,
        terms: Vec<u32>,
        dense: &[f32],
    ) -> NodeId {
        let id = self.features.push(&fields, &terms, dense);
        self.node_types.push(ty);
        debug_assert_eq!(self.node_types.len() - 1, id as usize);
        id
    }

    /// Add one directed edge.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, et: EdgeType, weight: f32) {
        debug_assert!((src as usize) < self.node_types.len(), "src out of range");
        debug_assert!((dst as usize) < self.node_types.len(), "dst out of range");
        self.edges.entry(et).or_default().push((src, dst, weight));
    }

    /// Add an undirected edge (stored as two directed edges).
    pub fn add_undirected_edge(&mut self, a: NodeId, b: NodeId, et: EdgeType, weight: f32) {
        self.add_edge(a, b, et, weight);
        self.add_edge(b, a, et, weight);
    }

    /// Apply the paper's session construction rule for one search session:
    /// user `u` posed query `q` and clicked `items` in order. Adds
    /// - `u ↔ q` (click),
    /// - `u ↔ iₖ` for every clicked item (click — the user's local graph of
    ///   clicked items, which the paper's Fig 4(c) measurement and the ROI
    ///   sampler both walk),
    /// - `q ↔ iₖ` for every clicked item (click),
    /// - `iₖ ↔ iₖ₊₁` for adjacent clicks (session).
    pub fn add_search_session(&mut self, u: NodeId, q: NodeId, items: &[NodeId]) {
        self.add_undirected_edge(u, q, EdgeType::Click, 1.0);
        for &item in items {
            self.add_undirected_edge(u, item, EdgeType::Click, 1.0);
            self.add_undirected_edge(q, item, EdgeType::Click, 1.0);
        }
        for pair in items.windows(2) {
            self.add_undirected_edge(pair[0], pair[1], EdgeType::Session, 1.0);
        }
    }

    /// Add a similarity edge weighted by (estimated) Jaccard similarity.
    pub fn add_similarity_edge(&mut self, a: NodeId, b: NodeId, jaccard: f32) {
        self.add_undirected_edge(a, b, EdgeType::Similarity, jaccard);
    }

    /// Read access to features during construction (used by the similarity
    /// edge builder to reach term sets).
    pub fn features(&self) -> &FeatureStore {
        &self.features
    }

    pub fn node_type(&self, n: NodeId) -> NodeType {
        self.node_types[n as usize]
    }

    /// All node ids of a given type, in id order.
    pub fn nodes_of_type(&self, ty: NodeType) -> Vec<NodeId> {
        self.node_types
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == ty)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// Deduplicate parallel edges of the same type by summing their weights.
    /// Click graphs from logs naturally contain repeats (the same user
    /// clicking the same item many times); folding them keeps degree bounded
    /// while preserving total interaction mass.
    pub fn dedup_edges(&mut self) {
        for list in self.edges.values_mut() {
            let mut merged: BTreeMap<(NodeId, NodeId), f32> = BTreeMap::new();
            for &(s, d, w) in list.iter() {
                *merged.entry((s, d)).or_insert(0.0) += w;
            }
            *list = merged.into_iter().map(|((s, d), w)| (s, d, w)).collect();
        }
    }

    /// Finalize into an immutable graph with alias tables built.
    pub fn finish(self) -> HeteroGraph {
        let n = self.node_types.len();
        let mut csrs = BTreeMap::new();
        for (et, list) in self.edges {
            csrs.insert(et, Csr::from_edges(n, &list));
        }
        HeteroGraph::new(self.node_types, self.features, csrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(b: &mut GraphBuilder, ty: NodeType) -> NodeId {
        b.add_node(ty, vec![], vec![], &[0.0, 0.0])
    }

    #[test]
    fn session_rule_builds_paper_edges() {
        let mut b = GraphBuilder::new(2);
        let u = node(&mut b, NodeType::User);
        let q = node(&mut b, NodeType::Query);
        let i1 = node(&mut b, NodeType::Item);
        let i2 = node(&mut b, NodeType::Item);
        let i3 = node(&mut b, NodeType::Item);
        b.add_search_session(u, q, &[i1, i2, i3]);
        let g = b.finish();

        // u↔q, u↔i{1,2,3}, q↔i{1,2,3} → 14 directed click edges.
        assert_eq!(g.num_edges_of(EdgeType::Click), 14);
        // i1↔i2, i2↔i3 → 4 directed session edges.
        assert_eq!(g.num_edges_of(EdgeType::Session), 4);
        let (session_nbrs, _) = g.neighbors(i2, EdgeType::Session);
        assert!(session_nbrs.contains(&i1) && session_nbrs.contains(&i3));
        // No session edge between i1 and i3 (not adjacent).
        let (n1, _) = g.neighbors(i1, EdgeType::Session);
        assert!(!n1.contains(&i3));
    }

    #[test]
    fn empty_session_adds_only_user_query_edge() {
        let mut b = GraphBuilder::new(2);
        let u = node(&mut b, NodeType::User);
        let q = node(&mut b, NodeType::Query);
        b.add_search_session(u, q, &[]);
        let g = b.finish();
        assert_eq!(g.num_edges_of(EdgeType::Click), 2);
        assert_eq!(g.num_edges_of(EdgeType::Session), 0);
    }

    #[test]
    fn dedup_sums_weights() {
        let mut b = GraphBuilder::new(2);
        let a = node(&mut b, NodeType::Item);
        let c = node(&mut b, NodeType::Item);
        b.add_edge(a, c, EdgeType::Click, 1.0);
        b.add_edge(a, c, EdgeType::Click, 2.5);
        b.dedup_edges();
        let g = b.finish();
        let (t, w) = g.neighbors(a, EdgeType::Click);
        assert_eq!(t, &[c]);
        assert_eq!(w, &[3.5]);
    }

    #[test]
    fn similarity_edges_carry_jaccard_weight() {
        let mut b = GraphBuilder::new(2);
        let a = node(&mut b, NodeType::Query);
        let c = node(&mut b, NodeType::Item);
        b.add_similarity_edge(a, c, 0.42);
        let g = b.finish();
        let (t, w) = g.neighbors(c, EdgeType::Similarity);
        assert_eq!(t, &[a]);
        assert!((w[0] - 0.42).abs() < 1e-7);
    }

    #[test]
    fn nodes_of_type_during_build() {
        let mut b = GraphBuilder::new(2);
        let u = node(&mut b, NodeType::User);
        let i = node(&mut b, NodeType::Item);
        let u2 = node(&mut b, NodeType::User);
        assert_eq!(b.nodes_of_type(NodeType::User), vec![u, u2]);
        assert_eq!(b.nodes_of_type(NodeType::Item), vec![i]);
        assert_eq!(b.node_type(u), NodeType::User);
    }
}
