//! Sharded, replicated graph store — the distributed-deployment simulation.
//!
//! §VI: "a graph is partitioned into multiple shards for higher storage
//! capacity, and each shard is replicated onto multiple servers for higher
//! aggregate throughput." Here a shard is a node-id partition of one shared
//! immutable [`HeteroGraph`] behind an `Arc`; replicas are logical servers
//! that track per-replica request counts so load-balancing behaviour can be
//! observed in tests and benches. Sampling requests are routed by node id to
//! a shard, then to its least-loaded replica.
//!
//! Concurrency contract (enforced by zoomer-lint's cross-file pass): the
//! routing path is lock-free. Shard lookup is pure arithmetic over an
//! immutable `Arc<HeteroGraph>`, and replica selection is a relaxed scan
//! of per-replica `AtomicU64` counters — no `Mutex`/`RwLock` anywhere in
//! this module, so L006 (lock ordering) and L007 (blocking under a guard)
//! have nothing to latch onto. Keep it that way: once `ShardedServer`
//! multiplies this surface across N shards, any lock added here becomes
//! N-way scatter-gather lock traffic on the request path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::types::{EdgeType, HeteroGraph, NodeId};

/// Sharding parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShardingConfig {
    pub num_shards: usize,
    pub replicas_per_shard: usize,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        Self { num_shards: 4, replicas_per_shard: 2 }
    }
}

impl ShardingConfig {
    /// Degenerate single-shard, single-replica layout — what a process that
    /// has not opted into sharding runs with.
    pub fn single() -> Self {
        Self { num_shards: 1, replicas_per_shard: 1 }
    }
}

/// Shard owning node `n` under an `num_shards`-way hash partition.
///
/// Fibonacci hashing spreads consecutive ids across shards. This is the one
/// routing function the whole system shares: [`ShardedGraph::shard_of`]
/// delegates here, and the serving-side `ShardedServer` partitions its item
/// pool with the same arithmetic so graph storage and retrieval agree on
/// ownership.
#[inline]
pub fn shard_of_node(n: NodeId, num_shards: usize) -> usize {
    ((n as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize % num_shards
}

struct Replica {
    served: AtomicU64,
}

struct Shard {
    replicas: Vec<Replica>,
}

/// A sharded view over an immutable heterogeneous graph.
///
/// Cloning is cheap (`Arc`); all methods are `&self` and thread-safe, which
/// is what lets the trainer's worker pool and the serving router hit the
/// "cluster" concurrently.
pub struct ShardedGraph {
    graph: Arc<HeteroGraph>,
    shards: Arc<Vec<Shard>>,
    config: ShardingConfig,
}

impl Clone for ShardedGraph {
    fn clone(&self) -> Self {
        Self {
            graph: Arc::clone(&self.graph),
            shards: Arc::clone(&self.shards),
            config: self.config,
        }
    }
}

impl ShardedGraph {
    pub fn new(graph: HeteroGraph, config: ShardingConfig) -> Self {
        assert!(config.num_shards > 0, "need at least one shard");
        assert!(config.replicas_per_shard > 0, "need at least one replica");
        let shards = (0..config.num_shards)
            .map(|_| Shard {
                replicas: (0..config.replicas_per_shard)
                    .map(|_| Replica { served: AtomicU64::new(0) })
                    .collect(),
            })
            .collect();
        Self { graph: Arc::new(graph), shards: Arc::new(shards), config }
    }

    /// The underlying graph (single-machine escape hatch; samplers use it
    /// directly when distribution is irrelevant to the experiment).
    pub fn graph(&self) -> &HeteroGraph {
        &self.graph
    }

    pub fn config(&self) -> ShardingConfig {
        self.config
    }

    /// Shard owning node `n` (hash routing, as a real deployment would).
    pub fn shard_of(&self, n: NodeId) -> usize {
        shard_of_node(n, self.config.num_shards)
    }

    fn pick_replica(&self, shard: usize) -> usize {
        // Least-loaded replica; ties broken by index.
        let replicas = &self.shards[shard].replicas;
        let mut best = 0usize;
        let mut best_load = u64::MAX;
        for (i, r) in replicas.iter().enumerate() {
            let load = r.served.load(Ordering::Relaxed);
            if load < best_load {
                best_load = load;
                best = i;
            }
        }
        best
    }

    /// Routed neighbor fetch: accounts the request to a replica of the
    /// owning shard and returns the neighbor view.
    pub fn neighbors(&self, n: NodeId, et: EdgeType) -> (&[NodeId], &[f32]) {
        let shard = self.shard_of(n);
        let replica = self.pick_replica(shard);
        self.shards[shard].replicas[replica].served.fetch_add(1, Ordering::Relaxed);
        self.graph.neighbors(n, et)
    }

    /// Routed O(1) weighted neighbor sample.
    pub fn sample_neighbor(
        &self,
        n: NodeId,
        et: EdgeType,
        rng: &mut impl rand::Rng,
    ) -> Option<NodeId> {
        let shard = self.shard_of(n);
        let replica = self.pick_replica(shard);
        self.shards[shard].replicas[replica].served.fetch_add(1, Ordering::Relaxed);
        self.graph.sample_neighbor(n, et, rng)
    }

    /// Requests served per replica, indexed `[shard][replica]`.
    pub fn load_report(&self) -> Vec<Vec<u64>> {
        self.shards
            .iter()
            .map(|s| s.replicas.iter().map(|r| r.served.load(Ordering::Relaxed)).collect())
            .collect()
    }

    /// Total requests served across the cluster.
    pub fn total_served(&self) -> u64 {
        self.load_report().iter().flatten().sum()
    }

    /// Number of nodes owned by each shard (storage balance check).
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.config.num_shards];
        for n in 0..self.graph.num_nodes() {
            sizes[self.shard_of(n as NodeId)] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::types::NodeType;

    fn chain_graph(n: usize) -> HeteroGraph {
        let mut b = GraphBuilder::new(2);
        for _ in 0..n {
            b.add_node(NodeType::Item, vec![], vec![], &[0.0, 0.0]);
        }
        for i in 0..n.saturating_sub(1) {
            b.add_undirected_edge(i as NodeId, (i + 1) as NodeId, EdgeType::Session, 1.0);
        }
        b.finish()
    }

    #[test]
    fn routing_is_stable() {
        let sg = ShardedGraph::new(chain_graph(100), ShardingConfig::default());
        for n in 0..100 {
            assert_eq!(sg.shard_of(n), sg.shard_of(n));
            assert!(sg.shard_of(n) < 4);
        }
    }

    #[test]
    fn shards_are_roughly_balanced() {
        let sg = ShardedGraph::new(
            chain_graph(10_000),
            ShardingConfig { num_shards: 8, replicas_per_shard: 1 },
        );
        let sizes = sg.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10_000);
        for &s in &sizes {
            // Each shard should hold 1250 ± 30%.
            assert!((875..=1625).contains(&s), "unbalanced shards: {sizes:?}");
        }
    }

    #[test]
    fn replicas_share_load() {
        let sg = ShardedGraph::new(
            chain_graph(64),
            ShardingConfig { num_shards: 1, replicas_per_shard: 3 },
        );
        for _ in 0..999 {
            let _ = sg.neighbors(5, EdgeType::Session);
        }
        let loads = &sg.load_report()[0];
        assert_eq!(loads.iter().sum::<u64>(), 999);
        for &l in loads {
            assert!((300..=340).contains(&l), "replica loads {loads:?}");
        }
    }

    #[test]
    fn routed_results_match_direct_access() {
        let sg = ShardedGraph::new(chain_graph(10), ShardingConfig::default());
        let (routed, _) = sg.neighbors(4, EdgeType::Session);
        let (direct, _) = sg.graph().neighbors(4, EdgeType::Session);
        assert_eq!(routed, direct);
    }

    #[test]
    fn free_function_matches_method_routing() {
        let sg = ShardedGraph::new(chain_graph(64), ShardingConfig::default());
        for n in 0..64 {
            assert_eq!(sg.shard_of(n), shard_of_node(n, sg.config().num_shards));
        }
        // num_shards = 1 degenerates to shard 0 for every node.
        for n in [0u32, 1, 17, u32::MAX] {
            assert_eq!(shard_of_node(n, 1), 0);
        }
    }

    /// Pins least-loaded replica selection under *concurrent* relaxed
    /// counter updates. Relaxed loads may observe stale counts, so two
    /// threads can momentarily pick the same replica — that is the accepted
    /// slack of the lock-free design, not an error. What must hold even
    /// under that slack: every request lands on some replica (none lost),
    /// and no replica is starved or hot-spotted beyond the bound a
    /// stale-by-one-scan selector can produce. A mutex-guarded selector
    /// would make the split exact; this test documents (and bounds) the
    /// imprecision we trade for keeping the routing path lock-free.
    #[test]
    fn concurrent_least_loaded_routing_stays_balanced() {
        let sg = ShardedGraph::new(
            chain_graph(64),
            ShardingConfig { num_shards: 1, replicas_per_shard: 4 },
        );
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let sg = sg.clone();
                scope.spawn(move || {
                    for n in 0..PER_THREAD {
                        let _ = sg.neighbors((n % 64) as NodeId, EdgeType::Session);
                    }
                });
            }
        });
        let loads = sg.load_report()[0].clone();
        let total: u64 = loads.iter().sum();
        assert_eq!(total, THREADS * PER_THREAD, "requests lost under concurrency: {loads:?}");
        // Least-loaded selection with stale relaxed reads still converges:
        // each replica sees fair share ± the worst-case staleness window
        // (every thread mid-scan on the same stale minimum). Fair share is
        // 4000; allow ±25%.
        let fair = total / loads.len() as u64;
        for &l in &loads {
            assert!(
                l >= fair * 3 / 4 && l <= fair * 5 / 4,
                "replica starved or hot-spotted beyond lock-free slack: {loads:?}"
            );
        }
    }

    #[test]
    fn concurrent_access_counts_every_request() {
        let sg = ShardedGraph::new(chain_graph(100), ShardingConfig::default());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sg = sg.clone();
                scope.spawn(move || {
                    for n in 0..100u32 {
                        let _ = sg.neighbors(n, EdgeType::Session);
                    }
                });
            }
        });
        assert_eq!(sg.total_served(), 400);
    }
}
