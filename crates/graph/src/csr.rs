//! Compressed sparse row adjacency with per-edge weights.

use crate::error::GraphError;
use crate::types::NodeId;

/// CSR adjacency for one edge type: `offsets[n]..offsets[n+1]` indexes the
/// neighbor and weight arrays for node `n`.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<NodeId>,
    weights: Vec<f32>,
}

impl Csr {
    /// Build from an edge list `(src, dst, weight)` over `num_nodes` nodes.
    /// Edges are directed; callers wanting undirected graphs insert both
    /// directions. Neighbor order within a node follows insertion order
    /// (counting sort keeps it stable), which the builder exploits to keep
    /// session adjacency ordered by time.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId, f32)]) -> Self {
        let mut degree = vec![0u64; num_nodes];
        for &(src, _, _) in edges {
            assert!((src as usize) < num_nodes, "src {src} out of range");
            degree[src as usize] += 1;
        }
        let mut offsets = vec![0u64; num_nodes + 1];
        for n in 0..num_nodes {
            offsets[n + 1] = offsets[n] + degree[n];
        }
        let total = offsets[num_nodes] as usize;
        let mut targets = vec![0 as NodeId; total];
        let mut weights = vec![0.0f32; total];
        let mut cursor = offsets.clone();
        for &(src, dst, w) in edges {
            assert!((dst as usize) < num_nodes, "dst {dst} out of range");
            assert!(w.is_finite() && w >= 0.0, "edge weight must be finite and >= 0, got {w}");
            let pos = cursor[src as usize] as usize;
            targets[pos] = dst;
            weights[pos] = w;
            cursor[src as usize] += 1;
        }
        let csr = Self { offsets, targets, weights };
        // The construction above guarantees the invariants; the sanitized
        // debug profile re-verifies what the lint cannot see.
        debug_assert!(csr.check_invariants().is_ok(), "from_edges broke CSR invariants");
        csr
    }

    /// Structural invariants every CSR must uphold: offsets start at 0, are
    /// monotone non-decreasing, cover exactly the target array, and every
    /// neighbor id is in bounds. `from_edges` guarantees these by
    /// construction (re-checked under `debug_assert!`); untrusted raw parts
    /// are always checked.
    fn check_invariants(&self) -> Result<(), GraphError> {
        let Some((&first, rest)) = self.offsets.split_first() else {
            return Err(GraphError::CorruptCsr("offsets must have at least one entry"));
        };
        if first != 0 {
            return Err(GraphError::CorruptCsr("offsets must start at 0"));
        }
        let mut prev = first;
        for &o in rest {
            if o < prev {
                return Err(GraphError::CorruptCsr("offsets must be monotone non-decreasing"));
            }
            prev = o;
        }
        if prev as usize != self.targets.len() {
            return Err(GraphError::CorruptCsr("last offset must equal the number of targets"));
        }
        if self.targets.len() != self.weights.len() {
            return Err(GraphError::CorruptCsr("targets and weights must have equal length"));
        }
        let num_nodes = (self.offsets.len() - 1) as u64;
        if self.targets.iter().any(|&t| u64::from(t) >= num_nodes) {
            return Err(GraphError::CorruptCsr("neighbor id out of bounds"));
        }
        Ok(())
    }

    /// Number of nodes this CSR is sized for.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbor targets and weights of node `n`.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> (&[NodeId], &[f32]) {
        let lo = self.offsets[n as usize] as usize;
        let hi = self.offsets[n as usize + 1] as usize;
        debug_assert!(lo <= hi && hi <= self.targets.len(), "CSR offsets out of order");
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Out-degree of node `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        (self.offsets[n as usize + 1] - self.offsets[n as usize]) as usize
    }

    /// Iterate all `(src, dst, weight)` triples.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.num_nodes()).flat_map(move |n| {
            let (t, w) = self.neighbors(n as NodeId);
            t.iter().zip(w.iter()).map(move |(&dst, &wt)| (n as NodeId, dst, wt))
        })
    }

    /// Raw parts for serialization.
    pub(crate) fn raw_parts(&self) -> (&[u64], &[NodeId], &[f32]) {
        (&self.offsets, &self.targets, &self.weights)
    }

    /// Rebuild from raw (untrusted, e.g. snapshot-decoded) parts; every
    /// structural invariant is validated.
    pub(crate) fn from_raw_parts(
        offsets: Vec<u64>,
        targets: Vec<NodeId>,
        weights: Vec<f32>,
    ) -> Result<Self, GraphError> {
        let csr = Self { offsets, targets, weights };
        csr.check_invariants()?;
        Ok(csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_groups_by_source() {
        let csr = Csr::from_edges(4, &[(0, 1, 1.0), (2, 3, 2.0), (0, 2, 0.5)]);
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_edges(), 3);
        let (t, w) = csr.neighbors(0);
        assert_eq!(t, &[1, 2]);
        assert_eq!(w, &[1.0, 0.5]);
        assert_eq!(csr.neighbors(1).0.len(), 0);
        assert_eq!(csr.neighbors(2).0, &[3]);
    }

    #[test]
    fn insertion_order_is_preserved_per_source() {
        let csr = Csr::from_edges(2, &[(0, 1, 1.0), (0, 0, 2.0), (0, 1, 3.0)]);
        let (t, w) = csr.neighbors(0);
        assert_eq!(t, &[1, 0, 1]);
        assert_eq!(w, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn degree_matches_neighbor_len() {
        let csr = Csr::from_edges(3, &[(1, 0, 1.0), (1, 2, 1.0)]);
        assert_eq!(csr.degree(1), 2);
        assert_eq!(csr.degree(0), 0);
    }

    #[test]
    fn iter_edges_roundtrip() {
        let edges = vec![(0u32, 1u32, 1.0f32), (1, 0, 2.0), (2, 2, 3.0)];
        let csr = Csr::from_edges(3, &edges);
        let mut collected: Vec<_> = csr.iter_edges().collect();
        collected.sort_by_key(|a| (a.0, a.1));
        let mut expected = edges.clone();
        expected.sort_by_key(|a| (a.0, a.1));
        assert_eq!(collected, expected);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_src_panics() {
        let _ = Csr::from_edges(1, &[(5, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        let _ = Csr::from_edges(2, &[(0, 1, -1.0)]);
    }

    #[test]
    fn raw_parts_roundtrip_and_rejection() {
        let csr = Csr::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
        let (o, t, w) = csr.raw_parts();
        let rebuilt = Csr::from_raw_parts(o.to_vec(), t.to_vec(), w.to_vec()).expect("valid parts");
        assert_eq!(rebuilt, csr);
        // Every structural defect is a typed error, not a panic.
        let bad = [
            Csr::from_raw_parts(vec![], vec![], vec![]),
            Csr::from_raw_parts(vec![1, 1], vec![0], vec![1.0]),
            Csr::from_raw_parts(vec![0, 2, 1], vec![0, 0], vec![1.0, 1.0]),
            Csr::from_raw_parts(vec![0, 1], vec![0], vec![]),
            Csr::from_raw_parts(vec![0, 2], vec![0], vec![1.0]),
            Csr::from_raw_parts(vec![0, 1], vec![7], vec![1.0]),
        ];
        for (i, b) in bad.into_iter().enumerate() {
            assert!(matches!(b, Err(GraphError::CorruptCsr(_))), "case {i} accepted bad parts");
        }
    }
}
