//! Graph statistics: type counts, per-type edge counts, degree distribution.
//!
//! The experiment harnesses use these to print dataset tables mirroring the
//! paper's §VII-A dataset-statistics description.

use std::collections::BTreeMap;

use crate::types::{EdgeType, HeteroGraph, NodeType};

/// Summary statistics of a heterogeneous graph.
#[derive(Clone, Debug)]
pub struct GraphStats {
    pub num_nodes: usize,
    pub num_edges: usize,
    pub nodes_per_type: BTreeMap<NodeType, usize>,
    pub edges_per_type: BTreeMap<EdgeType, usize>,
    pub max_degree: usize,
    pub mean_degree: f64,
    /// Degree histogram in power-of-two buckets: bucket `k` counts nodes with
    /// total degree in `[2^k, 2^(k+1))`; bucket 0 additionally holds degree-0
    /// and degree-1 nodes.
    pub degree_histogram: Vec<usize>,
}

impl GraphStats {
    pub fn compute(g: &HeteroGraph) -> Self {
        let mut edges_per_type = BTreeMap::new();
        for et in EdgeType::ALL {
            let c = g.num_edges_of(et);
            if c > 0 {
                edges_per_type.insert(et, c);
            }
        }
        let mut max_degree = 0usize;
        let mut total_degree = 0usize;
        let mut histogram = vec![0usize; 1];
        for n in 0..g.num_nodes() {
            let d = g.total_degree(n as u32);
            max_degree = max_degree.max(d);
            total_degree += d;
            let bucket = if d <= 1 { 0 } else { (usize::BITS - (d.leading_zeros() + 1)) as usize };
            if bucket >= histogram.len() {
                histogram.resize(bucket + 1, 0);
            }
            histogram[bucket] += 1;
        }
        Self {
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            nodes_per_type: g.type_counts(),
            edges_per_type,
            max_degree,
            mean_degree: if g.num_nodes() == 0 {
                0.0
            } else {
                total_degree as f64 / g.num_nodes() as f64
            },
            degree_histogram: histogram,
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let types: Vec<String> =
            self.nodes_per_type.iter().map(|(t, c)| format!("{}={c}", t.name())).collect();
        let edges: Vec<String> =
            self.edges_per_type.iter().map(|(t, c)| format!("{}={c}", t.name())).collect();
        format!(
            "{} nodes ({}), {} directed edges ({}), mean degree {:.2}, max degree {}",
            self.num_nodes,
            types.join(" "),
            self.num_edges,
            edges.join(" "),
            self.mean_degree,
            self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_on_small_graph() {
        let mut b = GraphBuilder::new(1);
        let u = b.add_node(NodeType::User, vec![], vec![], &[0.0]);
        let q = b.add_node(NodeType::Query, vec![], vec![], &[0.0]);
        let i1 = b.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        let i2 = b.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        b.add_search_session(u, q, &[i1, i2]);
        let g = b.finish();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.nodes_per_type[&NodeType::Item], 2);
        assert_eq!(s.edges_per_type[&EdgeType::Click], 10); // u↔q, u↔i×2, q↔i×2
        assert_eq!(s.edges_per_type[&EdgeType::Session], 2);
        assert!(s.mean_degree > 0.0);
        assert!(s.max_degree >= 3); // query and user connect to 3 nodes each
        assert_eq!(s.degree_histogram.iter().sum::<usize>(), 4);
        let text = s.summary();
        assert!(text.contains("4 nodes"));
        assert!(text.contains("item=2"));
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = GraphBuilder::new(1).finish();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn degree_histogram_buckets() {
        // A star: hub with 8 leaves → hub degree 8 (bucket 3), leaves degree 1
        // (bucket 0).
        let mut b = GraphBuilder::new(1);
        let hub = b.add_node(NodeType::Item, vec![], vec![], &[0.0]);
        for _ in 0..8 {
            let leaf = b.add_node(NodeType::Item, vec![], vec![], &[0.0]);
            b.add_undirected_edge(hub, leaf, EdgeType::Session, 1.0);
        }
        let s = GraphStats::compute(&b.finish());
        assert_eq!(s.degree_histogram[0], 8);
        assert_eq!(s.degree_histogram[3], 1);
        assert_eq!(s.max_degree, 8);
    }
}
