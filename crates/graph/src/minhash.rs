//! MinHash signatures and LSH-banded similarity-edge construction.
//!
//! §II: "we employ minHash to calculate Jaccard similarities between queries
//! and items and use the Jaccard similarities as weights to establish
//! similarity-based edges." To avoid the O(n²) all-pairs comparison on large
//! graphs, candidate pairs are generated with standard LSH banding over the
//! signatures, then scored by signature agreement.

use std::collections::HashMap;

use crate::builder::GraphBuilder;
use crate::types::{NodeId, NodeType};

/// MinHash signature generator with `k` hash functions.
#[derive(Clone, Debug)]
pub struct MinHasher {
    seeds: Vec<(u64, u64)>,
}

impl MinHasher {
    /// `k` independent hash functions derived from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash function");
        // SplitMix to derive (multiplier, offset) pairs; multipliers odd.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let seeds = (0..k).map(|_| (next() | 1, next())).collect();
        Self { seeds }
    }

    pub fn num_hashes(&self) -> usize {
        self.seeds.len()
    }

    /// Signature of a term set: per hash function, the minimum hash over the
    /// set. Empty sets get an all-`u64::MAX` sentinel signature.
    pub fn signature(&self, terms: &[u32]) -> Vec<u64> {
        self.seeds
            .iter()
            .map(|&(mul, add)| {
                terms
                    .iter()
                    .map(|&t| {
                        let mut h = (t as u64).wrapping_mul(mul).wrapping_add(add);
                        h ^= h >> 33;
                        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
                        h ^ (h >> 33)
                    })
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect()
    }

    /// Estimate Jaccard similarity as the fraction of agreeing signature
    /// positions. Two empty sets estimate 0 (their sentinel signatures agree,
    /// but empty sets carry no similarity evidence).
    pub fn estimate_jaccard(sig_a: &[u64], sig_b: &[u64]) -> f64 {
        assert_eq!(sig_a.len(), sig_b.len(), "signature length mismatch");
        if sig_a.iter().all(|&x| x == u64::MAX) || sig_b.iter().all(|&x| x == u64::MAX) {
            return 0.0;
        }
        let agree = sig_a.iter().zip(sig_b.iter()).filter(|(a, b)| a == b).count();
        agree as f64 / sig_a.len() as f64
    }
}

/// Configuration for LSH-banded similarity-edge construction.
#[derive(Clone, Copy, Debug)]
pub struct SimilarityConfig {
    /// Number of MinHash functions (must be `bands * rows_per_band`).
    pub num_hashes: usize,
    /// LSH bands; pairs colliding in any band become candidates.
    pub bands: usize,
    /// Minimum estimated Jaccard to emit an edge.
    pub threshold: f64,
    /// Cap on edges emitted per node (keeps hubs bounded).
    pub max_edges_per_node: usize,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        Self { num_hashes: 32, bands: 8, threshold: 0.3, max_edges_per_node: 10 }
    }
}

/// Builds similarity edges between nodes of the given types using MinHash +
/// LSH banding over their term sets.
pub struct SimilarityEdgeBuilder {
    config: SimilarityConfig,
    hasher: MinHasher,
}

impl SimilarityEdgeBuilder {
    pub fn new(config: SimilarityConfig, seed: u64) -> Self {
        assert_eq!(config.num_hashes % config.bands, 0, "num_hashes must be divisible by bands");
        let hasher = MinHasher::new(config.num_hashes, seed);
        Self { config, hasher }
    }

    /// Compute candidate pairs among `node_types` nodes and add similarity
    /// edges to the builder. Returns the number of undirected edges added.
    pub fn add_edges(&self, builder: &mut GraphBuilder, node_types: &[NodeType]) -> usize {
        let nodes: Vec<NodeId> =
            node_types.iter().flat_map(|&t| builder.nodes_of_type(t)).collect();
        let sigs: Vec<Vec<u64>> =
            nodes.iter().map(|&n| self.hasher.signature(builder.features().terms(n))).collect();

        let rows = self.config.num_hashes / self.config.bands;
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for band in 0..self.config.bands {
            let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
            for (idx, sig) in sigs.iter().enumerate() {
                let slice = &sig[band * rows..(band + 1) * rows];
                if slice.iter().all(|&x| x == u64::MAX) {
                    continue; // empty term set
                }
                // Hash the band slice.
                let mut h: u64 = 0xcbf29ce484222325;
                for &v in slice {
                    h ^= v;
                    h = h.wrapping_mul(0x100000001b3);
                }
                buckets.entry(h).or_default().push(idx);
            }
            for bucket in buckets.values() {
                if bucket.len() < 2 || bucket.len() > 64 {
                    continue; // skip degenerate mega-buckets
                }
                for i in 0..bucket.len() {
                    for j in i + 1..bucket.len() {
                        candidates.push((bucket[i], bucket[j]));
                    }
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        let mut per_node = vec![0usize; nodes.len()];
        let mut added = 0usize;
        for (i, j) in candidates {
            if per_node[i] >= self.config.max_edges_per_node
                || per_node[j] >= self.config.max_edges_per_node
            {
                continue;
            }
            let est = MinHasher::estimate_jaccard(&sigs[i], &sigs[j]);
            if est >= self.config.threshold {
                builder.add_similarity_edge(nodes[i], nodes[j], est as f32);
                per_node[i] += 1;
                per_node[j] += 1;
                added += 1;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_tensor::similarity::jaccard_exact;

    #[test]
    fn identical_sets_estimate_one() {
        let h = MinHasher::new(64, 7);
        let s = h.signature(&[1, 2, 3, 4, 5]);
        assert_eq!(MinHasher::estimate_jaccard(&s, &s), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(128, 7);
        let a = h.signature(&[1, 2, 3, 4, 5]);
        let b = h.signature(&[100, 200, 300, 400, 500]);
        assert!(MinHasher::estimate_jaccard(&a, &b) < 0.1);
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        let h = MinHasher::new(256, 11);
        // |A∩B| = 5, |A∪B| = 15 → J = 1/3.
        let a: Vec<u32> = (0..10).collect();
        let b: Vec<u32> = (5..15).collect();
        let exact = jaccard_exact(
            &a.iter().map(|&x| x as u64).collect::<Vec<_>>(),
            &b.iter().map(|&x| x as u64).collect::<Vec<_>>(),
        );
        let est = MinHasher::estimate_jaccard(&h.signature(&a), &h.signature(&b));
        assert!((est - exact).abs() < 0.1, "est {est} vs exact {exact}");
    }

    #[test]
    fn empty_sets_estimate_zero() {
        let h = MinHasher::new(16, 3);
        let e = h.signature(&[]);
        let f = h.signature(&[1, 2]);
        assert_eq!(MinHasher::estimate_jaccard(&e, &e), 0.0);
        assert_eq!(MinHasher::estimate_jaccard(&e, &f), 0.0);
    }

    #[test]
    fn signatures_deterministic_across_instances() {
        let a = MinHasher::new(32, 5).signature(&[9, 8, 7]);
        let b = MinHasher::new(32, 5).signature(&[9, 8, 7]);
        assert_eq!(a, b);
        let c = MinHasher::new(32, 6).signature(&[9, 8, 7]);
        assert_ne!(a, c);
    }

    #[test]
    fn lsh_builder_links_similar_term_sets() {
        use crate::types::EdgeType;
        let mut b = GraphBuilder::new(2);
        // Two near-identical items, one unrelated.
        let terms_a: Vec<u32> = (0..20).collect();
        let mut terms_b = terms_a.clone();
        terms_b[0] = 99; // 19/21 overlap
        let terms_c: Vec<u32> = (1000..1020).collect();
        let a = b.add_node(NodeType::Item, vec![], terms_a, &[0.0, 0.0]);
        let c = b.add_node(NodeType::Item, vec![], terms_b, &[0.0, 0.0]);
        let d = b.add_node(NodeType::Item, vec![], terms_c, &[0.0, 0.0]);
        let sim = SimilarityEdgeBuilder::new(SimilarityConfig::default(), 17);
        let added = sim.add_edges(&mut b, &[NodeType::Item]);
        assert!(added >= 1, "similar pair should be linked");
        let g = b.finish();
        let (nbrs, w) = g.neighbors(a, EdgeType::Similarity);
        assert!(nbrs.contains(&c));
        assert!(w.iter().all(|&x| x >= 0.3));
        // The unrelated item must not link to a.
        assert!(!nbrs.contains(&d));
    }
}
