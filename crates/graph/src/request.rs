//! Typed retrieval request/response structs — the one vocabulary every
//! layer speaks.
//!
//! Before this module, a retrieval request travelled the stack as a bare
//! `(NodeId, NodeId)` tuple: eval built pairs, the server consumed pairs,
//! the load harness queued pairs. Tuples carry no room for the metadata a
//! real front door needs — which tenant sent this, how many items it wants
//! back — so the wire protocol, per-tenant fair admission, and per-request
//! top-k all stalled on the same missing type. [`Query`] and [`Retrieval`]
//! are that type, defined here in the graph crate (alongside [`NodeId`])
//! so the model, training, and serving crates can all name them without a
//! dependency cycle.

use crate::types::NodeId;

/// One retrieval request: "for this user in the context of this query node,
/// return the top items".
///
/// `tenant` and `top_k` are serving-plane metadata; the embedding path only
/// reads `user`/`query`. `top_k == 0` means "use the server's configured
/// default" — the value tuple-era callers implicitly asked for — so
/// [`Query::new`] produces requests bit-identical to the old pair path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    /// Focal user node.
    pub user: NodeId,
    /// Focal query node (search term / trigger item).
    pub query: NodeId,
    /// Tenant the request is accounted to at the front door (0 = default
    /// tenant; single-tenant callers never set it).
    pub tenant: u32,
    /// Items requested; 0 = the server's configured `top_k`.
    pub top_k: u32,
}

impl Query {
    /// A default-tenant query for the server's configured top-k — the exact
    /// semantics of the old `(user, query)` tuple.
    pub fn new(user: NodeId, query: NodeId) -> Self {
        Self { user, query, tenant: 0, top_k: 0 }
    }

    /// Builder-style tenant tag.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Builder-style per-request top-k override (0 = server default).
    pub fn with_top_k(mut self, top_k: u32) -> Self {
        self.top_k = top_k;
        self
    }

    /// The focal pair the embedding path consumes.
    pub fn pair(&self) -> (NodeId, NodeId) {
        (self.user, self.query)
    }
}

impl From<(NodeId, NodeId)> for Query {
    fn from((user, query): (NodeId, NodeId)) -> Self {
        Query::new(user, query)
    }
}

/// Convert a tuple-era request slice (one allocation; the shims and
/// migration call sites share it).
pub fn queries_from_pairs(pairs: &[(NodeId, NodeId)]) -> Vec<Query> {
    pairs.iter().map(|&p| Query::from(p)).collect()
}

/// One retrieval response: ranked item node ids, best first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Retrieval {
    /// Item node ids, descending relevance.
    pub items: Vec<NodeId>,
    /// True when the server answered off the degraded ladder (budget-capped
    /// probe or inverted-index fallback) instead of the full ANN path.
    pub degraded: bool,
}

impl Retrieval {
    pub fn new(items: Vec<NodeId>) -> Self {
        Self { items, degraded: false }
    }

    pub fn degraded(items: Vec<NodeId>) -> Self {
        Self { items, degraded: true }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_matches_tuple_semantics() {
        let q = Query::new(3, 9);
        assert_eq!(q, Query::from((3, 9)));
        assert_eq!(q.pair(), (3, 9));
        assert_eq!(q.tenant, 0);
        assert_eq!(q.top_k, 0);
    }

    #[test]
    fn builder_tags_compose() {
        let q = Query::new(1, 2).with_tenant(7).with_top_k(50);
        assert_eq!((q.user, q.query, q.tenant, q.top_k), (1, 2, 7, 50));
    }

    #[test]
    fn pairs_convert_in_order() {
        let qs = queries_from_pairs(&[(1, 2), (3, 4)]);
        assert_eq!(qs, vec![Query::new(1, 2), Query::new(3, 4)]);
    }

    #[test]
    fn retrieval_constructors_set_degraded() {
        assert!(!Retrieval::new(vec![1]).degraded);
        assert!(Retrieval::degraded(vec![1]).degraded);
        assert_eq!(Retrieval::new(vec![1, 2]).len(), 2);
        assert!(Retrieval::new(vec![]).is_empty());
    }
}
