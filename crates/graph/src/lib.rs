//! Heterogeneous graph engine for the Zoomer reproduction.
//!
//! This crate is the Rust counterpart of the paper's Euler-based distributed
//! graph engine (§VI): typed nodes (user / query / item), typed weighted
//! edges (click, session, similarity, …) stored per-type in CSR form, alias
//! tables for O(1) weighted neighbor sampling, MinHash-based similarity-edge
//! construction, a sharded + replicated partitioned store that simulates the
//! distributed deployment, compact binary snapshots (the paper's
//! "compact binary-format files" handed from ODPS to HDFS), and graph
//! statistics.

// Hot-path crate: zoomer-lint L001 forbids panicking calls in non-test code
// here; clippy's disallowed_methods list (clippy.toml) backs it up.
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

pub mod alias;
pub mod builder;
pub mod csr;
pub mod error;
pub mod features;
pub mod minhash;
pub mod partition;
pub mod request;
pub mod snapshot;
pub mod stats;
pub mod subgraph;
pub mod types;

pub use alias::AliasTable;
pub use builder::GraphBuilder;
pub use csr::Csr;
pub use error::GraphError;
pub use features::FeatureStore;
pub use minhash::{MinHasher, SimilarityEdgeBuilder};
pub use partition::{shard_of_node, ShardedGraph, ShardingConfig};
pub use request::{queries_from_pairs, Query, Retrieval};
pub use snapshot::{
    read_snapshot, write_snapshot, write_snapshot_v1, write_snapshot_with_pool, QuantPool,
    SnapshotV2, SECTION_ALIGN,
};
pub use stats::GraphStats;
pub use subgraph::{induced_subgraph, Subgraph};
pub use types::{EdgeType, HeteroGraph, NodeId, NodeType};
