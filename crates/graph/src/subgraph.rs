//! Induced-subgraph extraction.
//!
//! Materializes the subgraph induced by a node set — used to turn a sampled
//! ROI into a standalone graph (for inspection, serialization, or handing a
//! worker exactly the slice it needs), and by tests to cross-check sampler
//! output against ground truth.

use std::collections::HashMap;

use crate::builder::GraphBuilder;
use crate::types::{EdgeType, HeteroGraph, NodeId};

/// The induced subgraph plus the mapping from new ids to original ids.
pub struct Subgraph {
    pub graph: HeteroGraph,
    /// `original_ids[new_id] = old_id`.
    pub original_ids: Vec<NodeId>,
}

impl Subgraph {
    /// Map an original node id to its id in the subgraph, if present.
    pub fn local_id(&self, original: NodeId) -> Option<NodeId> {
        self.original_ids.iter().position(|&o| o == original).map(|i| i as NodeId)
    }
}

/// Extract the subgraph induced by `nodes` (deduplicated, order-preserving):
/// all selected nodes with their features, and every edge of `graph` whose
/// two endpoints are both selected.
pub fn induced_subgraph(graph: &HeteroGraph, nodes: &[NodeId]) -> Subgraph {
    let mut original_ids: Vec<NodeId> = Vec::with_capacity(nodes.len());
    let mut remap: HashMap<NodeId, NodeId> = HashMap::with_capacity(nodes.len());
    for &n in nodes {
        if let std::collections::hash_map::Entry::Vacant(e) = remap.entry(n) {
            e.insert(original_ids.len() as NodeId);
            original_ids.push(n);
        }
    }
    let mut b = GraphBuilder::new(graph.features().dense_dim());
    for &old in &original_ids {
        b.add_node(
            graph.node_type(old),
            graph.fields(old).to_vec(),
            graph.features().terms(old).to_vec(),
            graph.dense_feature(old),
        );
    }
    for &old in &original_ids {
        let src_new = remap[&old];
        for et in EdgeType::ALL {
            let (targets, weights) = graph.neighbors(old, et);
            for (&dst, &w) in targets.iter().zip(weights) {
                if let Some(&dst_new) = remap.get(&dst) {
                    b.add_edge(src_new, dst_new, et, w);
                }
            }
        }
    }
    Subgraph { graph: b.finish(), original_ids }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeType;

    fn chain() -> HeteroGraph {
        let mut b = GraphBuilder::new(2);
        for i in 0..5 {
            b.add_node(NodeType::Item, vec![i as u32], vec![i as u32 * 10], &[i as f32, 0.0]);
        }
        for i in 0..4u32 {
            b.add_undirected_edge(i, i + 1, EdgeType::Session, 1.0 + i as f32);
        }
        b.finish()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = chain();
        let sub = induced_subgraph(&g, &[1, 2, 4]);
        assert_eq!(sub.graph.num_nodes(), 3);
        // Only the 1–2 edge is internal (2–3 and 3–4 cross the boundary).
        assert_eq!(sub.graph.num_edges_of(EdgeType::Session), 2); // both directions
        let n1 = sub.local_id(1).expect("node 1 present");
        let n2 = sub.local_id(2).expect("node 2 present");
        let (nbrs, w) = sub.graph.neighbors(n1, EdgeType::Session);
        assert_eq!(nbrs, &[n2]);
        assert_eq!(w, &[2.0]); // weight of edge 1–2 preserved
        let n4 = sub.local_id(4).expect("node 4 present");
        assert!(sub.graph.neighbors(n4, EdgeType::Session).0.is_empty());
    }

    #[test]
    fn features_carry_over() {
        let g = chain();
        let sub = induced_subgraph(&g, &[3]);
        assert_eq!(sub.graph.fields(0), &[3]);
        assert_eq!(sub.graph.features().terms(0), &[30]);
        assert_eq!(sub.graph.dense_feature(0), &[3.0, 0.0]);
        assert_eq!(sub.original_ids, vec![3]);
    }

    #[test]
    fn duplicates_in_selection_are_ignored() {
        let g = chain();
        let sub = induced_subgraph(&g, &[2, 2, 1, 2]);
        assert_eq!(sub.graph.num_nodes(), 2);
        assert_eq!(sub.original_ids, vec![2, 1]);
    }

    #[test]
    fn empty_selection_gives_empty_graph() {
        let g = chain();
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.graph.num_nodes(), 0);
        assert!(sub.local_id(0).is_none());
    }
}
