//! Typed errors for the graph engine.
//!
//! The graph crate sits on the serving hot path, so nothing in it may
//! panic on malformed input (zoomer-lint rule L001). Anything that decodes
//! untrusted bytes — snapshots, raw CSR/feature parts — reports a
//! [`GraphError`] instead; structural invariants of trusted in-process
//! construction are checked with `debug_assert!` so the sanitized debug
//! profile still verifies them.

/// Why a graph operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// Snapshot bytes failed validation while decoding.
    Snapshot(&'static str),
    /// CSR adjacency structural invariant broken: non-monotone offsets,
    /// out-of-bounds neighbor ids, or mismatched array lengths.
    CorruptCsr(&'static str),
    /// Feature store structural invariant broken.
    CorruptFeatures(&'static str),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Snapshot(msg) => write!(f, "bad graph snapshot: {msg}"),
            GraphError::CorruptCsr(msg) => write!(f, "corrupt CSR adjacency: {msg}"),
            GraphError::CorruptFeatures(msg) => write!(f, "corrupt feature store: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}
