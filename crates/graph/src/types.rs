//! Core graph types: node/edge types and the assembled [`HeteroGraph`].

use std::collections::BTreeMap;

use crate::alias::AliasTable;
use crate::csr::Csr;
use crate::features::FeatureStore;

/// Dense node identifier, assigned consecutively by the builder.
pub type NodeId = u32;

/// The node types of the Taobao retrieval graph (§II, Table I).
///
/// `Tag` and `Movie` cover the MovieLens construction of §VII-A, which reuses
/// the same engine with three node types (user / tag / movie); `Movie` is
/// stored as `Item` and `Tag` as `Query` would also work, but keeping them
/// distinct keeps experiment code honest about which schema it runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeType {
    User,
    Query,
    Item,
    /// MovieLens tag node (plays the "query" role there).
    Tag,
    /// MovieLens movie node (plays the "item" role there).
    Movie,
}

impl NodeType {
    pub const ALL: [NodeType; 5] =
        [NodeType::User, NodeType::Query, NodeType::Item, NodeType::Tag, NodeType::Movie];

    pub fn as_u8(self) -> u8 {
        match self {
            NodeType::User => 0,
            NodeType::Query => 1,
            NodeType::Item => 2,
            NodeType::Tag => 3,
            NodeType::Movie => 4,
        }
    }

    pub fn from_u8(v: u8) -> Option<NodeType> {
        Some(match v {
            0 => NodeType::User,
            1 => NodeType::Query,
            2 => NodeType::Item,
            3 => NodeType::Tag,
            4 => NodeType::Movie,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            NodeType::User => "user",
            NodeType::Query => "query",
            NodeType::Item => "item",
            NodeType::Tag => "tag",
            NodeType::Movie => "movie",
        }
    }
}

/// Edge categories from §II: interaction edges (clicks, session adjacency)
/// and similarity-based edges (MinHash Jaccard).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeType {
    /// User→query (search), query→item and user→item (click).
    Click,
    /// Adjacent clicks in the same session (item↔item), plus co-occurrence.
    Session,
    /// Content-similarity edges weighted by (estimated) Jaccard similarity.
    Similarity,
}

impl EdgeType {
    pub const ALL: [EdgeType; 3] = [EdgeType::Click, EdgeType::Session, EdgeType::Similarity];

    pub fn as_u8(self) -> u8 {
        match self {
            EdgeType::Click => 0,
            EdgeType::Session => 1,
            EdgeType::Similarity => 2,
        }
    }

    pub fn from_u8(v: u8) -> Option<EdgeType> {
        Some(match v {
            0 => EdgeType::Click,
            1 => EdgeType::Session,
            2 => EdgeType::Similarity,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            EdgeType::Click => "click",
            EdgeType::Session => "session",
            EdgeType::Similarity => "similarity",
        }
    }
}

/// An immutable heterogeneous graph: per-node type tags, typed features, and
/// one CSR adjacency per edge type, each with pre-built per-node alias tables
/// for O(1) weighted neighbor sampling (§VI, "Alias Table … constant-time
/// graph sampling independent of the graph size").
pub struct HeteroGraph {
    node_types: Vec<NodeType>,
    features: FeatureStore,
    edges: BTreeMap<EdgeType, Csr>,
    /// Per edge type: per node, an alias table over its neighbor weights.
    /// `None` for nodes with no neighbors of that type.
    alias: BTreeMap<EdgeType, Vec<Option<AliasTable>>>,
}

impl std::fmt::Debug for HeteroGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HeteroGraph({} nodes, {} edges)", self.num_nodes(), self.num_edges())
    }
}

impl HeteroGraph {
    pub(crate) fn new(
        node_types: Vec<NodeType>,
        features: FeatureStore,
        edges: BTreeMap<EdgeType, Csr>,
    ) -> Self {
        let mut alias = BTreeMap::new();
        for (&et, csr) in &edges {
            let tables: Vec<Option<AliasTable>> = (0..node_types.len())
                .map(|n| {
                    let (_, weights) = csr.neighbors(n as NodeId);
                    if weights.is_empty() {
                        None
                    } else {
                        Some(AliasTable::new(weights))
                    }
                })
                .collect();
            alias.insert(et, tables);
        }
        Self { node_types, features, edges, alias }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Total number of directed edges across all types.
    pub fn num_edges(&self) -> usize {
        self.edges.values().map(Csr::num_edges).sum()
    }

    /// Edges of one type.
    pub fn num_edges_of(&self, et: EdgeType) -> usize {
        self.edges.get(&et).map_or(0, Csr::num_edges)
    }

    pub fn node_type(&self, n: NodeId) -> NodeType {
        self.node_types[n as usize]
    }

    /// All node ids of a given type, in id order.
    pub fn nodes_of_type(&self, ty: NodeType) -> Vec<NodeId> {
        self.node_types
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == ty)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    pub fn features(&self) -> &FeatureStore {
        &self.features
    }

    /// Dense content vector of a node (drives eq. (5) relevance scoring).
    pub fn dense_feature(&self, n: NodeId) -> &[f32] {
        self.features.dense(n)
    }

    /// Categorical feature field ids of a node (drive the embedding tables
    /// and feature-level attention).
    pub fn fields(&self, n: NodeId) -> &[u32] {
        self.features.fields(n)
    }

    /// Neighbors (`targets`, `weights`) of `n` under edge type `et`.
    pub fn neighbors(&self, n: NodeId, et: EdgeType) -> (&[NodeId], &[f32]) {
        match self.edges.get(&et) {
            Some(csr) => csr.neighbors(n),
            None => (&[], &[]),
        }
    }

    /// Degree of `n` under edge type `et`.
    pub fn degree(&self, n: NodeId, et: EdgeType) -> usize {
        self.neighbors(n, et).0.len()
    }

    /// Total degree over all edge types.
    pub fn total_degree(&self, n: NodeId) -> usize {
        EdgeType::ALL.iter().map(|&et| self.degree(n, et)).sum()
    }

    /// Edge types present in the graph.
    pub fn edge_types(&self) -> impl Iterator<Item = EdgeType> + '_ {
        self.edges.keys().copied()
    }

    /// O(1) weighted neighbor sample of `n` under `et`. Returns `None` for
    /// isolated nodes.
    pub fn sample_neighbor(
        &self,
        n: NodeId,
        et: EdgeType,
        rng: &mut impl rand::Rng,
    ) -> Option<NodeId> {
        let table = self.alias.get(&et)?.get(n as usize)?.as_ref()?;
        let (targets, _) = self.neighbors(n, et);
        Some(targets[table.sample(rng)])
    }

    /// Raw CSR for an edge type (used by snapshots and stats).
    pub fn csr(&self, et: EdgeType) -> Option<&Csr> {
        self.edges.get(&et)
    }

    /// Count nodes per type.
    pub fn type_counts(&self) -> BTreeMap<NodeType, usize> {
        let mut counts = BTreeMap::new();
        for &t in &self.node_types {
            *counts.entry(t).or_insert(0) += 1;
        }
        counts
    }

    /// Approximate resident memory of the graph structure in bytes
    /// (adjacency + weights + alias tables + dense features). Used by the
    /// Fig 4(a) motivation harness.
    pub fn approx_bytes(&self) -> usize {
        let adjacency: usize = self
            .edges
            .values()
            .map(|c| c.num_edges() * (std::mem::size_of::<NodeId>() + 4) + (c.num_nodes() + 1) * 8)
            .sum();
        let alias: usize = self
            .alias
            .values()
            .flat_map(|v| v.iter())
            .map(|t| t.as_ref().map_or(0, |a| a.len() * 8))
            .sum();
        adjacency + alias + self.features.approx_bytes() + self.node_types.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tiny_graph() -> HeteroGraph {
        // u0 —click— q1 —click— i2 —session— i3
        let mut b = GraphBuilder::new(4);
        let u = b.add_node(NodeType::User, vec![1, 0, 2], vec![], &[1.0, 0.0, 0.0, 0.0]);
        let q = b.add_node(NodeType::Query, vec![7], vec![101, 102], &[0.0, 1.0, 0.0, 0.0]);
        let i1 = b.add_node(NodeType::Item, vec![3, 7, 9, 4, 5], vec![101], &[0.0, 0.0, 1.0, 0.0]);
        let i2 = b.add_node(NodeType::Item, vec![4, 7, 9, 4, 5], vec![102], &[0.0, 0.0, 0.0, 1.0]);
        b.add_undirected_edge(u, q, EdgeType::Click, 1.0);
        b.add_undirected_edge(q, i1, EdgeType::Click, 2.0);
        b.add_undirected_edge(i1, i2, EdgeType::Session, 1.0);
        b.finish()
    }

    #[test]
    fn node_and_edge_counts() {
        let g = tiny_graph();
        assert_eq!(g.num_nodes(), 4);
        // Undirected edges stored both ways.
        assert_eq!(g.num_edges_of(EdgeType::Click), 4);
        assert_eq!(g.num_edges_of(EdgeType::Session), 2);
        assert_eq!(g.num_edges_of(EdgeType::Similarity), 0);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn typed_neighbors() {
        let g = tiny_graph();
        let (qs, w) = g.neighbors(0, EdgeType::Click);
        assert_eq!(qs, &[1]);
        assert_eq!(w, &[1.0]);
        let (items, _) = g.neighbors(1, EdgeType::Click);
        assert!(items.contains(&0) && items.contains(&2));
        assert_eq!(g.neighbors(0, EdgeType::Session).0.len(), 0);
    }

    #[test]
    fn node_types_and_lists() {
        let g = tiny_graph();
        assert_eq!(g.node_type(0), NodeType::User);
        assert_eq!(g.node_type(1), NodeType::Query);
        assert_eq!(g.nodes_of_type(NodeType::Item), vec![2, 3]);
        let counts = g.type_counts();
        assert_eq!(counts[&NodeType::Item], 2);
        assert_eq!(counts[&NodeType::User], 1);
    }

    #[test]
    fn degrees() {
        let g = tiny_graph();
        assert_eq!(g.degree(1, EdgeType::Click), 2);
        assert_eq!(g.total_degree(2), 2); // one click + one session
    }

    #[test]
    fn sampling_respects_isolation() {
        let g = tiny_graph();
        let mut rng = zoomer_tensor::seeded_rng(1);
        assert!(g.sample_neighbor(0, EdgeType::Session, &mut rng).is_none());
        let s = g.sample_neighbor(0, EdgeType::Click, &mut rng);
        assert_eq!(s, Some(1));
    }

    #[test]
    fn weighted_sampling_biases_toward_heavy_edges() {
        let g = tiny_graph();
        let mut rng = zoomer_tensor::seeded_rng(2);
        // Query 1 has neighbors: user 0 (w=1.0) and item 2 (w=2.0).
        let mut item_hits = 0;
        let n = 6000;
        for _ in 0..n {
            if g.sample_neighbor(1, EdgeType::Click, &mut rng) == Some(2) {
                item_hits += 1;
            }
        }
        let frac = item_hits as f64 / n as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.04, "frac = {frac}");
    }

    #[test]
    fn type_roundtrip_u8() {
        for t in NodeType::ALL {
            assert_eq!(NodeType::from_u8(t.as_u8()), Some(t));
        }
        for e in EdgeType::ALL {
            assert_eq!(EdgeType::from_u8(e.as_u8()), Some(e));
        }
        assert_eq!(NodeType::from_u8(99), None);
        assert_eq!(EdgeType::from_u8(99), None);
    }

    #[test]
    fn approx_bytes_positive_and_monotone() {
        let g = tiny_graph();
        assert!(g.approx_bytes() > 0);
    }
}
